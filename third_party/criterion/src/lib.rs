//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `criterion` to this vendored mini-implementation (see `[patch.crates-io]`
//! in the root manifest). It covers the builder/group/`Bencher` subset the
//! workspace benches use. Instead of criterion's adaptive statistics it runs
//! each benchmark a small, bounded number of iterations and prints the mean
//! wall-clock time — enough to compare implementations by eye, cheap enough
//! to run in CI.

use std::time::{Duration, Instant};

/// Opaque value barrier: stops the optimizer from deleting benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver (builder subset).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget (accepted for API compatibility; one untimed
    /// iteration serves as warm-up here).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        }
    }

    /// A standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
    }
}

/// Identifier `function_name/parameter` shown in bench output.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build the id from a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A named group of benchmarks sharing a configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl std::fmt::Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
    }

    /// Run a benchmark without a separate input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, collecting up to `sample_size` samples within the
    /// measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        // The closure set up state but never called `iter`.
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    println!(
        "{label:<48} mean {mean:>12?}  min {min:>12?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        let input = 17u64;
        group.bench_with_input(BenchmarkId::new("square", input), &input, |b, n| {
            b.iter(|| n * n)
        });
        group.bench_function("add", |b| b.iter(|| black_box(1u32) + 1));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2u32) * 2));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 1024).to_string(), "fft/1024");
    }
}
