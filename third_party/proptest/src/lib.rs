//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `proptest` to this vendored mini-implementation (see `[patch.crates-io]`
//! in the root manifest). It keeps the same surface the workspace's property
//! tests use — the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros, range strategies, [`any`](arbitrary::any),
//! [`sample::select`] and [`collection::vec`] — but runs each property as a
//! fixed number of *deterministic* pseudo-random cases (seeded from the test
//! name), so failures reproduce exactly across runs and machines.

pub mod test_runner {
    //! Case execution: config, RNG and failure plumbing.

    /// Per-property configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of deterministic cases to run.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
        /// `true` when the case was rejected by `prop_assume!` rather than
        /// failed by an assertion.
        pub rejected: bool,
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                rejected: false,
            }
        }

        /// An assumption rejection (the case is skipped, not failed).
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                rejected: true,
            }
        }
    }

    /// Result of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one property, seeded from the property name
        /// and the case index.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy always yielding one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    // Bias one case in four toward the boundaries, where the
                    // interesting bugs live.
                    match rng.next_u64() % 8 {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => {
                            let span = (self.end as i128 - self.start as i128) as u128;
                            let off = (rng.next_u64() as u128) % span;
                            (self.start as i128 + off as i128) as $t
                        }
                    }
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy on empty range");
                    match rng.next_u64() % 8 {
                        0 => lo,
                        1 => hi,
                        _ => {
                            let span = (hi as i128 - lo as i128) as u128 + 1;
                            let off = (rng.next_u64() as u128) % span;
                            (lo as i128 + off as i128) as $t
                        }
                    }
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + (self.end - self.start) * unit
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// A `&str` is a regex-shaped pattern strategy producing matching
    /// strings. The supported subset is what character-class patterns need:
    /// `[a-z...]{lo,hi}` with literal characters and ranges inside the
    /// class, and `\PC{lo,hi}` (any non-control character). Unsupported
    /// patterns panic with a clear message rather than silently generating
    /// the wrong distribution.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_pattern(self);
            let len = if lo == hi {
                lo
            } else {
                // Boundary lengths (empty in particular) stress parsers most.
                match rng.next_u64() % 8 {
                    0 => lo,
                    1 => hi,
                    _ => lo + (rng.next_u64() as usize) % (hi - lo + 1),
                }
            };
            (0..len)
                .map(|_| chars[(rng.next_u64() as usize) % chars.len()])
                .collect()
        }
    }

    /// Parse a supported pattern into (alphabet, min_len, max_len).
    fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        fn unsupported(pattern: &str) -> ! {
            panic!("unsupported string pattern {pattern:?} in proptest stand-in")
        }
        let (class, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
            // Any non-control character; sample printable ASCII plus a few
            // multi-byte characters so UTF-8 handling gets exercised.
            let mut chars: Vec<char> = (' '..='~').collect();
            chars.extend(['é', 'π', '→', '雪']);
            (chars, rest)
        } else if let Some(body) = pattern.strip_prefix('[') {
            let Some(end) = body.find(']') else {
                unsupported(pattern);
            };
            let mut chars = Vec::new();
            let class: Vec<char> = body[..end].chars().collect();
            let mut i = 0;
            while i < class.len() {
                if i + 2 < class.len() && class[i + 1] == '-' {
                    let (a, b) = (class[i], class[i + 2]);
                    chars.extend((a..=b).filter(|c| *c as u32 >= a as u32));
                    i += 3;
                } else {
                    chars.push(class[i]);
                    i += 1;
                }
            }
            if chars.is_empty() {
                unsupported(pattern);
            }
            (chars, &body[end + 1..])
        } else {
            unsupported(pattern);
        };
        if rest.is_empty() {
            return (class, 1, 1);
        }
        let Some(rep) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
            unsupported(pattern);
        };
        let (lo, hi) = match rep.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok(), hi.trim().parse().ok()),
            None => (rep.trim().parse().ok(), rep.trim().parse().ok()),
        };
        match (lo, hi) {
            (Some(lo), Some(hi)) if lo <= hi => (class, lo, hi),
            _ => unsupported(pattern),
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix boundary values in: they break naive arithmetic.
                    match rng.next_u64() % 8 {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() % 2 == 0
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.next_u64() % 8 {
                0 => 0.0,
                1 => -1.0,
                2 => 1.0,
                _ => {
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    (unit - 0.5) * 2e6
                }
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod sample {
    //! Uniform selection out of a fixed set.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing one element of a vector.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() as usize) % self.0.len()].clone()
        }
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select on empty options");
        Select(options)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing a `Vec` whose elements come from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.len, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Everything a property-test module needs, mirroring
    //! `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run the named property functions as deterministic sampled test cases.
#[macro_export]
macro_rules! proptest {
    // Internal: config threaded through, one expansion per test fn.
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($args:tt)*) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut __prop_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let result: $crate::test_runner::TestCaseResult =
                        $crate::__prop_bindings!(__prop_rng; $body; $($args)*);
                    match result {
                        Ok(()) => {}
                        Err(e) if e.rejected => {}
                        Err(e) => panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            e.message
                        ),
                    }
                }
            }
        )*
    };
    // Entry with a block-level config.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Entry with the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Internal helper: bind `pat in strategy` arguments, then run the body as a
/// [`TestCaseResult`](test_runner::TestCaseResult).
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bindings {
    ($rng:ident; $body:block;) => {
        (|| -> $crate::test_runner::TestCaseResult {
            $body
            Ok(())
        })()
    };
    ($rng:ident; $body:block; $pat:pat in $strat:expr) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__prop_bindings!($rng; $body;)
    }};
    ($rng:ident; $body:block; $pat:pat in $strat:expr, $($rest:tt)*) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__prop_bindings!($rng; $body; $($rest)*)
    }};
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fallible inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Reject (skip) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(a in 3i32..9, b in 0usize..4, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Doc comments on properties parse.
        #[test]
        fn select_and_vec(
            pick in prop::sample::select(vec![1, 2, 3]),
            xs in prop::collection::vec(-5i64..5, 1..6),
        ) {
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|x| (-5..5).contains(x)));
        }

        #[test]
        fn any_and_assume(x in any::<i32>()) {
            prop_assume!(x != i32::MIN);
            prop_assert_eq!(x.abs(), x.wrapping_abs());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..20 {
            assert_eq!((0i64..1000).sample(&mut a), (0i64..1000).sample(&mut b));
        }
    }
}
