//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace patches
//! `rand` to this vendored mini-implementation (see `[patch.crates-io]` in
//! the root manifest). It provides exactly the surface the workspace uses —
//! `StdRng::seed_from_u64` plus `Rng::gen_range` over integer and float
//! ranges — with a deterministic splitmix64 generator, so seeded runs stay
//! reproducible across machines.

/// Sampling a uniform value of `T` from a range type `R`.
pub trait SampleRange<T> {
    /// Draw one value from `self` using `next` as the entropy source.
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(&self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (next() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(&self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (next() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(&self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // 53 uniform mantissa bits scaled into [0, 1).
                let unit = (next() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&i));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn values_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }
}
