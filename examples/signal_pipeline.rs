//! A realistic signal-processing pipeline: window → FFT on a streaming
//! input, with a low-pass pre-filter — the workload class the paper's
//! introduction motivates. Demonstrates Algorithm 1's adaptive
//! implementation choice at different input scales and the model-file
//! round trip.
//!
//! ```text
//! cargo run --example signal_pipeline
//! ```

use hcg::core::{CodeGenerator, HcgGen};
use hcg::isa::Arch;
use hcg::kernels::CodeLibrary;
use hcg::model::parser::{model_from_xml, model_to_xml};
use hcg::model::{library, DataType, SignalType, Tensor};
use hcg::vm::{Machine, Stmt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = HcgGen::new();
    let lib = CodeLibrary::new();

    // Algorithm 1 in action: the same FFT model at different input scales
    // selects different implementations.
    println!("=== Algorithm 1: implementation choice per input scale ===");
    for n in [8usize, 64, 500, 1000, 1024, 4096] {
        let model = library::fft_model(n);
        let program = generator.generate(&model, Arch::Neon128)?;
        let implementation = program
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::KernelCall { impl_name, .. } => Some(impl_name.clone()),
                _ => None,
            })
            .expect("FFT model contains a kernel call");
        println!("  n = {n:>5} -> {implementation}");
    }
    println!(
        "  selection history now holds {} entries (reused on re-synthesis)",
        generator.history_len()
    );

    // Stream samples through the low-pass model and watch it settle.
    println!("\n=== streaming through LowPass_64 ===");
    let model = library::lowpass_model(64);

    // Round-trip through the textual model format first (the paper's
    // step ①: model files are parsed into structured actors).
    let text = model_to_xml(&model);
    let reparsed = model_from_xml(&text)?;
    assert_eq!(reparsed, model);
    println!("model file round-trip OK ({} bytes of XML)", text.len());

    let program = generator.generate(&reparsed, Arch::Neon128)?;
    let mut machine = Machine::new(&program, &lib);
    let ty = SignalType::vector(DataType::F32, 64);
    for step in 0..8 {
        machine.set_input("x", &Tensor::from_f64(ty, vec![1.0; 64])?)?;
        machine.step()?;
        let y = machine.read_buffer("y")?;
        println!("  step {step}: y[0] = {:.4}", y.as_f64()[0]);
    }
    println!("(converging towards the unit input, alpha = 0.2)");
    Ok(())
}
