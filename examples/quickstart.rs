//! Quickstart: build a model, generate code with HCG, inspect the C-like
//! source, execute it on the VM, and compare against both baselines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{emit::to_c_source, CodeGenerator, HcgGen};
use hcg::isa::Arch;
use hcg::kernels::CodeLibrary;
use hcg::model::{ActorKind, DataType, ModelBuilder, SignalType, Tensor};
use hcg::vm::{Compiler, CostModel, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small signal chain: y = (a - b) + (a - b) * c on i32 x 16.
    let ty = SignalType::vector(DataType::I32, 16);
    let mut b = ModelBuilder::new("quickstart");
    let a_in = b.inport("a", ty);
    let b_in = b.inport("b", ty);
    let c_in = b.inport("c", ty);
    let sub = b.add_actor("diff", ActorKind::Sub);
    let mul = b.add_actor("prod", ActorKind::Mul);
    let add = b.add_actor("mac", ActorKind::Add);
    let y = b.outport("y");
    b.connect(a_in, 0, sub, 0);
    b.connect(b_in, 0, sub, 1);
    b.connect(sub, 0, mul, 0);
    b.connect(c_in, 0, mul, 1);
    b.connect(sub, 0, add, 0);
    b.connect(mul, 0, add, 1);
    b.connect(add, 0, y, 0);
    let model = b.build()?;

    // Generate ARM NEON code with HCG: the Mul+Add fuses into vmlaq_s32.
    let hcg = HcgGen::new();
    let program = hcg.generate(&model, Arch::Neon128)?;
    println!("=== HCG-generated code (NEON) ===");
    println!("{}", to_c_source(&program));

    // Execute it.
    let lib = CodeLibrary::new();
    let mut machine = Machine::new(&program, &lib);
    let av: Vec<i64> = (0..16).collect();
    let bv: Vec<i64> = (0..16).map(|v| v / 2).collect();
    let cv: Vec<i64> = vec![3; 16];
    machine.set_input("a", &Tensor::from_i64(ty, av.clone())?)?;
    machine.set_input("b", &Tensor::from_i64(ty, bv.clone())?)?;
    machine.set_input("c", &Tensor::from_i64(ty, cv.clone())?)?;
    machine.step()?;
    let result = machine.read_buffer("y")?;
    println!("y = {:?}", result.as_i64());

    // Compare the cost of all three generators on an ARM+GCC-like platform.
    let platform = CostModel::new(Arch::Neon128, Compiler::GccLike);
    println!("\n=== cycles per model step (ARM + gcc-like) ===");
    for generator in [
        &SimulinkCoderGen::new() as &dyn CodeGenerator,
        &DfSynthGen::new(),
        &hcg,
    ] {
        let p = generator.generate(&model, platform.arch)?;
        println!(
            "{:>16}: {:>6} cycles",
            generator.name(),
            platform.cycles(&p, &lib)
        );
    }
    Ok(())
}
