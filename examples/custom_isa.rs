//! Cross-architecture portability (paper §3.3): instruction sets are
//! external data, so supporting a new target means writing a text file,
//! not code. This example defines a tiny fictional DSP instruction set in
//! the paper's `Graph: …; Code: …;` format, plugs it into HCG, and shows
//! how the selected instructions change.
//!
//! ```text
//! cargo run --example custom_isa
//! ```

use hcg::core::{emit::to_c_source, CodeGenerator, HcgGen, HcgOptions};
use hcg::isa::parse::instr_set_from_text;
use hcg::isa::Arch;
use hcg::model::library;
use hcg::vm::Stmt;

/// A fictional DSP whose only fused instruction is a multiply-subtract.
/// (It reuses the NEON register model, so `arch neon128`.)
const TINY_DSP: &str = "\
# tiny fictional DSP, 128-bit vectors
set tinydsp arch neon128
Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = dsp_add(I1, I2);
Graph: Sub, i32, 4, I1, I2, O1 ; Code: O1 = dsp_sub(I1, I2);
Graph: Mul, i32, 4, I1, I2, O1 ; Code: O1 = dsp_mul(I1, I2); ; Cost: 2
Graph: Shr, i32, 4, I1, O1 ; Code: O1 = dsp_asr(I1, #A);
Graph: Sub(I1, Mul(I2, I3)), i32, 4, O1 ; Code: O1 = dsp_msub(I1, I2, I3); ; Cost: 2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = instr_set_from_text(TINY_DSP)?;
    println!(
        "loaded instruction set {:?} with {} instructions",
        set.name,
        set.len()
    );

    let generator = HcgGen::with_options(HcgOptions {
        instr_set: Some(set),
        ..HcgOptions::default()
    });

    // The Fig. 4 model on the fictional DSP: no vhadd and no vmla exist, so
    // the mapping differs from NEON — Sub/Mul/Add/Shr map individually.
    let model = library::fig4_model();
    let program = generator.generate(&model, Arch::Neon128)?;
    println!("\nselected instructions:");
    for stmt in &program.body {
        if let Stmt::VOp { instr, .. } = stmt {
            println!("  {instr}");
        }
    }
    println!("\n=== full generated source ===");
    println!("{}", to_c_source(&program));

    // Compare with the built-in NEON mapping.
    let neon = HcgGen::new().generate(&model, Arch::Neon128)?;
    let neon_instrs: Vec<_> = neon
        .body
        .iter()
        .filter_map(|s| match s {
            Stmt::VOp { instr, .. } => Some(instr.as_str()),
            _ => None,
        })
        .collect();
    println!("NEON would have used: {neon_instrs:?}");
    Ok(())
}
