//! Generator shootout: run all six paper benchmarks through all three
//! generators on all four paper platforms, verify result consistency, and
//! print the full execution-time matrix — a condensed Table 2 + Figure 5.
//!
//! ```text
//! cargo run --release --example generator_shootout
//! ```

use hcg::baselines::{DfSynthGen, SimulinkCoderGen};
use hcg::core::{CodeGenerator, HcgGen, Reference};
use hcg::kernels::CodeLibrary;
use hcg::model::{library, ActorKind, Tensor};
use hcg::vm::{paper_platforms, Machine};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CodeLibrary::new();
    let generators: Vec<Box<dyn CodeGenerator>> = vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(HcgGen::new()),
    ];

    for platform in paper_platforms() {
        println!("\n=== {} + {} ===", platform.arch, platform.compiler);
        println!(
            "{:>12} {:>16} {:>12} {:>12}",
            "model", "simulink-coder", "dfsynth", "hcg"
        );
        for model in library::paper_benchmarks() {
            print!("{:>12}", model.name.split('_').next().unwrap_or("?"));
            for g in &generators {
                let p = g.generate(&model, platform.arch)?;
                print!("{:>16}", platform.cycles(&p, &lib));
                // Narrow columns after the first.
                if g.name() == "simulink-coder" {
                    continue;
                }
            }
            println!();
        }
    }

    // Consistency spot-check on one model: every generator must match the
    // golden reference.
    println!("\n=== consistency spot check (FIR, ARM) ===");
    let model = library::fir_model(64, 4);
    let types = model.infer_types()?;
    let mut inputs = BTreeMap::new();
    for a in &model.actors {
        if a.kind == ActorKind::Inport {
            let ty = types.output(a.id, 0);
            let vals: Vec<i64> = (0..ty.len() as i64).map(|i| i % 17 - 8).collect();
            inputs.insert(a.name.clone(), Tensor::from_i64(ty, vals)?);
        }
    }
    let mut reference = Reference::new(&model)?;
    let want = reference.step(&inputs)?;
    for g in &generators {
        let p = g.generate(&model, hcg::isa::Arch::Neon128)?;
        let mut m = Machine::new(&p, &lib);
        for (n, v) in &inputs {
            m.set_input(n, v)?;
        }
        m.step()?;
        for (name, expected) in &want {
            let got = m.read_buffer(name)?;
            assert_eq!(got.as_i64(), expected.as_i64(), "{}", g.name());
        }
        println!("  {:>16}: results identical to reference", g.name());
    }
    Ok(())
}
