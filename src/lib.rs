//! # hcg — optimized embedded code generation with SIMD instruction synthesis
//!
//! A from-scratch Rust reproduction of *HCG: Optimizing Embedded Code
//! Generation of Simulink with SIMD Instruction Synthesis* (DAC 2022).
//!
//! This facade crate re-exports the whole system:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`obs`] | `hcg-obs` | Observability layer: span tracing (Chrome trace JSON), unified metrics registry |
//! | [`model`] | `hcg-model` | Simulink-like models: actors, typed signals, XML model files, scheduling, benchmark library |
//! | [`graph`] | `hcg-graph` | Dataflow graphs, subgraph extension, instruction matching |
//! | [`isa`] | `hcg-isa` | SIMD instruction sets (NEON/SSE/AVX) with computing graphs, loadable from text files |
//! | [`kernels`] | `hcg-kernels` | Intensive-actor code library (FFT/DCT/Conv/Matrix families) + Algorithm 1 autotuning |
//! | [`vm`] | `hcg-vm` | Executable program IR, interpreter, per-platform cost models |
//! | [`core`] | `hcg-core` | The HCG generator: actor dispatch, Algorithms 1 & 2, C-source emission |
//! | [`exec`] | `hcg-exec` | Work-stealing thread pool for fanning compile jobs across workers |
//! | [`baselines`] | `hcg-baselines` | Simulink-Coder-like and DFSynth-like reference generators |
//! | [`analysis`] | `hcg-analysis` | Multi-pass static analyzer: model lints and generated-program lints |
//! | [`verify`] | `hcg-verify` | Static translation validation: symbolic equivalence proofs, effect analysis, value-range lints |
//! | [`fuzz`] | `hcg-fuzz` | Differential model fuzzer: random models, cross-generator oracle, delta-debugging shrinker |
//!
//! # Quick start
//!
//! ```
//! use hcg::core::{emit::to_c_source, CodeGenerator, HcgGen};
//! use hcg::isa::Arch;
//! use hcg::model::library;
//!
//! # fn main() -> Result<(), hcg::core::GenError> {
//! // The paper's Figure 4 sample model: five batch actors on i32x4.
//! let model = library::fig4_model();
//!
//! // Generate NEON code: Algorithm 2 maps the dataflow graph onto three
//! // SIMD instructions (the paper's Listing 1).
//! let generator = HcgGen::new();
//! let program = generator.generate(&model, Arch::Neon128)?;
//! assert_eq!(program.stmt_stats().vops, 3);
//!
//! println!("{}", to_c_source(&program));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use hcg_analysis as analysis;
pub use hcg_baselines as baselines;
pub use hcg_core as core;
pub use hcg_exec as exec;
pub use hcg_fuzz as fuzz;
pub use hcg_graph as graph;
pub use hcg_isa as isa;
pub use hcg_kernels as kernels;
pub use hcg_model as model;
pub use hcg_obs as obs;
pub use hcg_verify as verify;
pub use hcg_vm as vm;
