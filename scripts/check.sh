#!/usr/bin/env bash
# Full offline-safe verification: build, test, clippy (warnings are errors),
# and the static analyzer over every example model. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lint example models"
cargo run -q --release -p hcg-bench --bin lint -- examples/models/*.xml

echo "==> fleet smoke run (parallel vs sequential byte-identity + bench JSON)"
cargo run -q --release -p hcg-bench --bin repro -- fleet --threads 2 \
    --json BENCH_fleet.json --out target/repro_fleet.txt

echo "OK: all checks passed"
