#!/usr/bin/env bash
# Full offline-safe verification: build, test, clippy (warnings are errors),
# and the static analyzer over every example model. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lint example models"
cargo run -q --release -p hcg-bench --bin lint -- examples/models/*.xml

echo "==> static verification gate (prove the fleet, write BENCH_verify.json)"
cargo run -q --release -p hcg-bench --bin repro -- verify \
    --json BENCH_verify.json --out target/repro_verify.txt
grep -q '"all_equivalent": true' BENCH_verify.json

echo "==> fleet smoke run (parallel vs sequential byte-identity + bench JSON)"
cargo run -q --release -p hcg-bench --bin repro -- fleet --threads 2 \
    --json BENCH_fleet.json --out target/repro_fleet.txt

echo "==> incremental smoke run (edit-replay byte-identity + bench JSON)"
cargo run -q --release -p hcg-bench --bin repro -- incremental --seed 0 --edits 50 \
    --json BENCH_incremental.json --out target/repro_incremental.txt
grep -q '"identical_outputs": true' BENCH_incremental.json

echo "==> incremental identity gate (1,000 random edit sequences, release)"
cargo test -q --release --test incremental_identity

echo "==> search smoke run (calibrated beam vs greedy + verified gate, bench JSON)"
cargo run -q --release -p hcg-bench --bin repro -- search --beam 4 --calibrate \
    --iters 200 --json BENCH_search.json --out target/repro_search.txt
grep -q '"beam_strictly_better"' BENCH_search.json
grep -q '"all_proved": true' BENCH_search.json

echo "==> fuzz smoke run (fixed seed, zero divergences expected)"
cargo run -q --release -p hcg-bench --bin repro -- fuzz --seed 0 --iters 50 \
    --json target/fuzz/smoke.json --out target/repro_fuzz.txt

echo "==> fuzz smoke run under beam mapping (oracle parity with search enabled)"
cargo run -q --release -p hcg-bench --bin repro -- fuzz --seed 0 --iters 50 --beam 4 \
    --json target/fuzz/smoke_beam.json --out target/repro_fuzz_beam.txt

echo "==> edit-oracle smoke (metamorphic edits, release)"
cargo test -q --release -p hcg-fuzz edits

echo "==> corpus replay (committed repros through the full oracle)"
cargo test -q --release -p hcg-fuzz --test corpus_replay

echo "==> compile-service smoke (ephemeral daemon; cache hits + prometheus scrape via bundled client)"
cargo run -q --release -p hcg-bench --bin repro -- serve-smoke \
    --out target/repro_serve_smoke.txt
grep -q "clean shutdown" target/repro_serve_smoke.txt
grep -q "prometheus scrape parses" target/repro_serve_smoke.txt

echo "==> compile-service bench smoke (Zipf replay, byte-identity gate)"
cargo run -q --release -p hcg-bench --bin repro -- serve-bench --requests 50 \
    --clients 4 --corpus-size 10 \
    --json target/serve_smoke.json --out target/repro_serve_bench.txt
grep -q '"identical_responses": true' target/serve_smoke.json

echo "==> observability overhead smoke (telemetry layers off/hist/log/trace; gate skipped on short runs)"
cargo run -q --release -p hcg-bench --bin repro -- obs-bench --requests 60 \
    --clients 4 --corpus-size 10 \
    --access-log target/obs-bench-access.jsonl \
    --json target/obs_smoke.json --out target/repro_obs_bench.txt
grep -q '"experiment": "obs-overhead"' target/obs_smoke.json
grep -q '"layer": "histograms+access-log+tracing"' target/obs_smoke.json

echo "==> profile smoke run (cycle attribution conserves, trace JSON parses)"
cargo run -q --release -p hcg-bench --bin repro -- profile --model FIR \
    --json target/profile_smoke.json --trace target/trace_smoke.json \
    --out target/repro_profile.txt
grep -q '"traceEvents"' target/trace_smoke.json
grep -q '"total_cycles"' target/profile_smoke.json

echo "OK: all checks passed"
