#!/usr/bin/env bash
# Full offline-safe verification: build, test, clippy (warnings are errors),
# and the static analyzer over every example model. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> lint example models"
cargo run -q --release -p hcg-bench --bin lint -- examples/models/*.xml

echo "OK: all checks passed"
