//! Property tests for the dataflow-graph engine: the Algorithm-2 selection
//! loop always terminates and covers every node exactly once; candidates
//! are convex, independent and single-sink; matching is sound.

use hcg_graph::extend::{extend_subgraphs, top_left_node, MapState};
use hcg_graph::matching::{find_instruction, match_pattern};
use hcg_graph::{Dfg, DfgInput, NodeId, ValTree};
use hcg_isa::{sets, Arch, Pattern};
use hcg_model::op::ElemOp;
use hcg_model::DataType;
use proptest::prelude::*;

/// Build a random i32 DFG from a seed: each node picks an op and operands
/// from earlier nodes or externals.
fn random_dfg(seed: u64, n_ext: usize, n_nodes: usize) -> Dfg {
    let mut g = Dfg::new(DataType::I32, 16, n_ext);
    let ops = [
        ElemOp::Add,
        ElemOp::Sub,
        ElemOp::Mul,
        ElemOp::Min,
        ElemOp::Max,
        ElemOp::Abd,
        ElemOp::Abs,
        ElemOp::Neg,
        ElemOp::Shr(1),
        ElemOp::BitAnd,
    ];
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..n_nodes {
        let op = ops[(next() as usize) % ops.len()];
        let pick = |r: u64, i: usize| -> DfgInput {
            let total = n_ext + i;
            let idx = (r as usize) % total;
            if idx < n_ext {
                DfgInput::External(idx)
            } else {
                DfgInput::Node(NodeId(idx - n_ext))
            }
        };
        let inputs: Vec<DfgInput> = (0..op.arity()).map(|_| pick(next(), i)).collect();
        g.add_node(op, inputs, format!("n{i}"))
            .expect("valid construction");
    }
    // Every sink (no consumers) is an output; plus one random internal.
    let node_count = g.len_nodes();
    for i in 0..node_count {
        if g.consumers(NodeId(i)).is_empty() {
            g.mark_output(NodeId(i));
        }
    }
    if node_count > 0 {
        g.mark_output(NodeId((next() as usize) % node_count));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The selection loop terminates and maps every node exactly once, for
    /// any graph and any instruction set.
    #[test]
    fn mapping_loop_total_coverage(seed in 1u64..3000, n_ext in 1usize..4, n_nodes in 1usize..14) {
        let g = random_dfg(seed, n_ext, n_nodes);
        let set = sets::builtin(Arch::Neon128);
        let mut state = MapState::new(&g);
        let mut covered = vec![0usize; g.len_nodes()];
        let mut rounds = 0;
        while let Some(start) = top_left_node(&g, &state) {
            rounds += 1;
            prop_assert!(rounds <= g.len_nodes(), "no progress");
            let cands = extend_subgraphs(&g, &state, start, 2, 2);
            prop_assert!(!cands.is_empty());
            // Pick the first matching candidate, like Algorithm 2 does.
            let chosen = cands
                .iter()
                .find(|c| find_instruction(&set, g.dtype, 4, &c.tree).is_some())
                .unwrap_or_else(|| cands.last().expect("nonempty"));
            for n in &chosen.nodes {
                covered[n.0] += 1;
            }
            state.mark_computed(&chosen.nodes);
        }
        prop_assert!(state.all_computed());
        prop_assert!(covered.iter().all(|&c| c == 1), "each node mapped exactly once: {covered:?}");
    }

    /// Candidate invariants: start node included, single sink, internal
    /// values dead outside, depth bounded, sorted by cost descending.
    #[test]
    fn candidate_invariants(seed in 1u64..3000, n_nodes in 1usize..14) {
        let g = random_dfg(seed, 2, n_nodes);
        let state = MapState::new(&g);
        let Some(start) = top_left_node(&g, &state) else { return Ok(()); };
        let cands = extend_subgraphs(&g, &state, start, 3, 3);
        for w in cands.windows(2) {
            prop_assert!(w[0].cost >= w[1].cost);
        }
        for c in &cands {
            prop_assert!(c.nodes.contains(&start));
            prop_assert!(c.nodes.contains(&c.sink));
            prop_assert!(c.tree.depth() <= 3);
            for &m in &c.nodes {
                if m == c.sink {
                    continue;
                }
                prop_assert!(!g.is_output(m), "internal node {m} is a region output");
                for consumer in g.consumers(m) {
                    prop_assert!(c.nodes.contains(&consumer),
                        "internal node {m} leaks to {consumer}");
                }
            }
        }
    }

    /// A successful instruction match re-evaluates to the candidate:
    /// matching is structurally sound (bindings have the pattern's arity
    /// and reference only leaves of the tree).
    #[test]
    fn match_bindings_are_leaves(seed in 1u64..2000, n_nodes in 1usize..10) {
        let g = random_dfg(seed, 3, n_nodes);
        let set = sets::builtin(Arch::Neon128);
        let state = MapState::new(&g);
        let Some(start) = top_left_node(&g, &state) else { return Ok(()); };
        for c in extend_subgraphs(&g, &state, start, 2, 2) {
            if let Some((instr, m)) = find_instruction(&set, g.dtype, 4, &c.tree) {
                prop_assert_eq!(m.bindings.len(), instr.pattern.input_count());
                let mut leaves = Vec::new();
                collect_leaves(&c.tree, &mut leaves);
                for b in &m.bindings {
                    prop_assert!(leaves.contains(b), "{b:?} not a leaf of {}", c.tree);
                }
            }
        }
    }

    /// Commutative matching never confuses non-commutative operands: a
    /// `Sub(I1, I2)` pattern always binds I1 to the tree's left operand.
    #[test]
    fn sub_matching_is_order_preserving(a in 0usize..3, b in 0usize..3) {
        let p: Pattern = "Sub(I1, I2)".parse().expect("parses");
        let t = ValTree::Op {
            op: ElemOp::Sub,
            args: vec![
                ValTree::Leaf(DfgInput::External(a)),
                ValTree::Leaf(DfgInput::External(b)),
            ],
        };
        let m = match_pattern(&p, &t).expect("matches");
        prop_assert_eq!(m.bindings[0], DfgInput::External(a));
        prop_assert_eq!(m.bindings[1], DfgInput::External(b));
    }
}

fn collect_leaves(tree: &ValTree, out: &mut Vec<DfgInput>) {
    match tree {
        ValTree::Leaf(v) => out.push(*v),
        ValTree::Op { args, .. } => {
            for a in args {
                collect_leaves(a, out);
            }
        }
    }
}
