//! Matching candidate subgraphs against instruction computing graphs
//! (paper Algorithm 2, line 17: `InsSet.getMatchInstruction(Subgraph)`).
//!
//! A match must respect operand structure: instruction input slots bind to
//! the candidate's leaf values, repeated slots must bind the same value, and
//! commutative operations may swap their operands. Shift patterns written
//! without an amount ([`SHIFT_ANY`]) match any constant amount and expose it
//! for the `#A` template placeholder.

use crate::dfg::DfgInput;
use crate::tree::ValTree;
use hcg_isa::{InstrIndex, InstrSet, Pattern, PatternArg, SimdInstr, SHIFT_ANY};
use hcg_model::op::ElemOp;
use hcg_model::DataType;
use std::collections::HashMap;

/// A successful instruction match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrMatch {
    /// The value bound to each instruction input slot, in slot order
    /// (`I1` first).
    pub bindings: Vec<DfgInput>,
    /// The shift amount captured by a [`SHIFT_ANY`] wildcard (0 when the
    /// pattern has none).
    pub shift_amount: u32,
}

/// Try to match one instruction pattern against a candidate tree.
pub fn match_pattern(pattern: &Pattern, tree: &ValTree) -> Option<InstrMatch> {
    let mut bindings: Vec<Option<DfgInput>> = Vec::new();
    let mut shift = 0u32;
    if match_node(pattern, tree, &mut bindings, &mut shift) {
        let bound: Option<Vec<DfgInput>> = bindings.into_iter().collect();
        Some(InstrMatch {
            // Slots are dense by Pattern construction; a hole means the
            // pattern referenced a slot it never constrained, which the
            // parser prevents.
            bindings: bound?,
            shift_amount: shift,
        })
    } else {
        None
    }
}

/// Do two operations match, and if the pattern side is a wildcard shift,
/// what amount was captured?
fn ops_match(pat: ElemOp, node: ElemOp) -> Option<Option<u32>> {
    match (pat, node) {
        (ElemOp::Shr(SHIFT_ANY), ElemOp::Shr(k)) | (ElemOp::Shl(SHIFT_ANY), ElemOp::Shl(k)) => {
            Some(Some(k))
        }
        (a, b) if a == b => Some(None),
        _ => None,
    }
}

fn match_node(
    pattern: &Pattern,
    tree: &ValTree,
    bindings: &mut Vec<Option<DfgInput>>,
    shift: &mut u32,
) -> bool {
    let ValTree::Op { op, args } = tree else {
        return false;
    };
    let Some(captured) = ops_match(pattern.op, *op) else {
        return false;
    };
    if let Some(k) = captured {
        *shift = k;
    }
    debug_assert_eq!(pattern.args.len(), args.len(), "arity agreed via op match");

    let orders: &[&[usize]] = if pattern.op.commutative() && pattern.args.len() == 2 {
        &[&[0, 1], &[1, 0]]
    } else {
        &[&[0, 1, 2][..pattern.args.len().min(3)]]
    };
    for order in orders {
        let snapshot = bindings.clone();
        let shift_snapshot = *shift;
        let ok = pattern
            .args
            .iter()
            .zip(order.iter().map(|&i| &args[i]))
            .all(|(p_arg, t_arg)| match_arg(p_arg, t_arg, bindings, shift));
        if ok {
            return true;
        }
        *bindings = snapshot;
        *shift = shift_snapshot;
    }
    false
}

fn match_arg(
    p_arg: &PatternArg,
    t_arg: &ValTree,
    bindings: &mut Vec<Option<DfgInput>>,
    shift: &mut u32,
) -> bool {
    match (p_arg, t_arg) {
        (PatternArg::Input(slot), ValTree::Leaf(v)) => {
            if bindings.len() <= *slot {
                bindings.resize(*slot + 1, None);
            }
            match &bindings[*slot] {
                Some(existing) => existing == v,
                None => {
                    bindings[*slot] = Some(*v);
                    true
                }
            }
        }
        (PatternArg::Node(p), t @ ValTree::Op { .. }) => match_node(p, t, bindings, shift),
        _ => false,
    }
}

/// Search an instruction set for the best match (Algorithm 2 line 17):
/// among matching candidates, the one with the lowest issue cost wins; ties
/// resolve to file order.
///
/// This is the reference linear scan; the synthesis hot path uses
/// [`find_instruction_indexed`], which returns the identical selection
/// without visiting instructions whose root op, dtype, or lanes cannot
/// match.
pub fn find_instruction<'a>(
    set: &'a InstrSet,
    dtype: DataType,
    lanes: usize,
    tree: &ValTree,
) -> Option<(&'a SimdInstr, InstrMatch)> {
    let mut best: Option<(&SimdInstr, InstrMatch)> = None;
    for instr in set.candidates(dtype, lanes) {
        if let Some(m) = match_pattern(&instr.pattern, tree) {
            let better = match &best {
                Some((b, _)) => instr.cost < b.cost,
                None => true,
            };
            if better {
                best = Some((instr, m));
            }
        }
    }
    best
}

/// [`find_instruction`] served by an [`InstrIndex`] built over `set`.
///
/// The index buckets by (root op, dtype, lanes) and pre-sorts each bucket
/// by (cost, file order), so the first pattern match in bucket order *is*
/// the linear scan's min-by-cost / first-by-file-order winner — the
/// selection is byte-identical, only the work is smaller.
pub fn find_instruction_indexed<'a>(
    set: &'a InstrSet,
    index: &InstrIndex,
    dtype: DataType,
    lanes: usize,
    tree: &ValTree,
) -> Option<(&'a SimdInstr, InstrMatch)> {
    find_indexed_pos(set, index, dtype, lanes, tree).map(|(pos, m)| (&set.instrs[pos as usize], m))
}

/// Bucket walk returning the matched instruction's position in
/// `set.instrs` (what [`MatchMemo`] caches).
fn find_indexed_pos(
    set: &InstrSet,
    index: &InstrIndex,
    dtype: DataType,
    lanes: usize,
    tree: &ValTree,
) -> Option<(u32, InstrMatch)> {
    let ValTree::Op { op, .. } = tree else {
        return None; // a bare leaf never matches any pattern
    };
    for &pos in index.candidate_positions(*op, dtype, lanes) {
        let instr = &set.instrs[pos as usize];
        if let Some(m) = match_pattern(&instr.pattern, tree) {
            return Some((pos, m));
        }
    }
    None
}

/// Every instruction in the tree's bucket that matches, cheapest first
/// (bucket order is (cost, file order)). The first element is exactly the
/// [`find_instruction_indexed`] winner; the tail is what a search over
/// alternative selections explores.
fn find_all_indexed_pos(
    set: &InstrSet,
    index: &InstrIndex,
    dtype: DataType,
    lanes: usize,
    tree: &ValTree,
) -> Vec<(u32, InstrMatch)> {
    let ValTree::Op { op, .. } = tree else {
        return Vec::new();
    };
    index
        .candidate_positions(*op, dtype, lanes)
        .iter()
        .filter_map(|&pos| match_pattern(&set.instrs[pos as usize].pattern, tree).map(|m| (pos, m)))
        .collect()
}

/// [`find_all_indexed_pos`] with the instructions resolved against `set`:
/// all matches for `tree`, cheapest first.
pub fn find_all_instructions_indexed<'a>(
    set: &'a InstrSet,
    index: &InstrIndex,
    dtype: DataType,
    lanes: usize,
    tree: &ValTree,
) -> Vec<(&'a SimdInstr, InstrMatch)> {
    find_all_indexed_pos(set, index, dtype, lanes, tree)
        .into_iter()
        .map(|(pos, m)| (&set.instrs[pos as usize], m))
        .collect()
}

/// Per-region memo over [`find_instruction_indexed`]: Algorithm 2's
/// iterative rounds re-extend overlapping candidate subgraphs, so the same
/// operand tree is matched repeatedly; the memo runs `match_pattern` once
/// per distinct tree. The memo is only valid for one (set, dtype, lanes)
/// triple — create one per region mapping.
#[derive(Debug, Default)]
pub struct MatchMemo {
    /// tree → matched (instruction position, bindings), or `None` when no
    /// instruction matches the tree.
    cache: HashMap<ValTree, Option<(u32, InstrMatch)>>,
    /// tree → *every* matching (position, bindings), cheapest first —
    /// the beam search's top-k enumeration cache.
    all_cache: HashMap<ValTree, Vec<(u32, InstrMatch)>>,
    hits: u64,
    misses: u64,
}

impl MatchMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoised [`find_instruction_indexed`].
    pub fn find<'a>(
        &mut self,
        set: &'a InstrSet,
        index: &InstrIndex,
        dtype: DataType,
        lanes: usize,
        tree: &ValTree,
    ) -> Option<(&'a SimdInstr, InstrMatch)> {
        if let Some(cached) = self.cache.get(tree) {
            self.hits += 1;
            return cached
                .as_ref()
                .map(|(pos, m)| (&set.instrs[*pos as usize], m.clone()));
        }
        self.misses += 1;
        let found = find_indexed_pos(set, index, dtype, lanes, tree);
        self.cache.insert(tree.clone(), found.clone());
        found.map(|(pos, m)| (&set.instrs[pos as usize], m))
    }

    /// Memoised [`find_all_instructions_indexed`]: every match for `tree`,
    /// cheapest first, with its own cache (shared hit/miss counters). Used
    /// by the beam search, which needs alternatives beyond the greedy
    /// winner.
    pub fn find_all<'a>(
        &mut self,
        set: &'a InstrSet,
        index: &InstrIndex,
        dtype: DataType,
        lanes: usize,
        tree: &ValTree,
    ) -> Vec<(&'a SimdInstr, InstrMatch)> {
        if let Some(cached) = self.all_cache.get(tree) {
            self.hits += 1;
            return cached
                .iter()
                .map(|(pos, m)| (&set.instrs[*pos as usize], m.clone()))
                .collect();
        }
        self.misses += 1;
        let found = find_all_indexed_pos(set, index, dtype, lanes, tree);
        let resolved = found
            .iter()
            .map(|(pos, m)| (&set.instrs[*pos as usize], m.clone()))
            .collect();
        self.all_cache.insert(tree.clone(), found);
        resolved
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the matcher.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::NodeId;
    use hcg_isa::{sets, Arch};

    fn leaf(e: usize) -> ValTree {
        ValTree::Leaf(DfgInput::External(e))
    }

    fn node_leaf(n: usize) -> ValTree {
        ValTree::Leaf(DfgInput::Node(NodeId(n)))
    }

    fn op(o: ElemOp, args: Vec<ValTree>) -> ValTree {
        ValTree::Op { op: o, args }
    }

    #[test]
    fn single_op_match_binds_in_order() {
        let p: Pattern = "Sub(I1, I2)".parse().unwrap();
        let t = op(ElemOp::Sub, vec![leaf(1), leaf(2)]);
        let m = match_pattern(&p, &t).unwrap();
        assert_eq!(
            m.bindings,
            vec![DfgInput::External(1), DfgInput::External(2)]
        );
    }

    #[test]
    fn non_commutative_order_is_strict() {
        // Sub(I1, I2) must not match with swapped operands: the tree is
        // already in source order, and Sub isn't commutative, so bindings
        // follow tree order exactly — verify by distinct leaves.
        let p: Pattern = "Sub(I1, I2)".parse().unwrap();
        let t = op(ElemOp::Sub, vec![leaf(9), leaf(3)]);
        let m = match_pattern(&p, &t).unwrap();
        assert_eq!(m.bindings[0], DfgInput::External(9));
    }

    #[test]
    fn mla_matches_either_operand_order() {
        let p: Pattern = "Add(I1, Mul(I2, I3))".parse().unwrap();
        // Mul subtree on the right.
        let t1 = op(
            ElemOp::Add,
            vec![node_leaf(0), op(ElemOp::Mul, vec![node_leaf(0), leaf(3)])],
        );
        let m1 = match_pattern(&p, &t1).unwrap();
        assert_eq!(m1.bindings[0], DfgInput::Node(NodeId(0)));
        // Mul subtree on the left — Add is commutative.
        let t2 = op(
            ElemOp::Add,
            vec![op(ElemOp::Mul, vec![node_leaf(0), leaf(3)]), node_leaf(0)],
        );
        let m2 = match_pattern(&p, &t2).unwrap();
        assert_eq!(m2.bindings, m1.bindings);
    }

    #[test]
    fn vhadd_wildcard_vs_exact_shift() {
        let exact: Pattern = "Shr[1](Add(I1, I2))".parse().unwrap();
        let t1 = op(
            ElemOp::Shr(1),
            vec![op(ElemOp::Add, vec![leaf(0), node_leaf(0)])],
        );
        assert!(match_pattern(&exact, &t1).is_some());
        let t2 = op(
            ElemOp::Shr(2),
            vec![op(ElemOp::Add, vec![leaf(0), node_leaf(0)])],
        );
        assert!(match_pattern(&exact, &t2).is_none());

        let wild: Pattern = "Shr(I1)".parse().unwrap();
        let t3 = op(ElemOp::Shr(5), vec![leaf(0)]);
        let m = match_pattern(&wild, &t3).unwrap();
        assert_eq!(m.shift_amount, 5);
    }

    #[test]
    fn repeated_slot_requires_same_value() {
        let p: Pattern = "Mul(I1, I1)".parse().unwrap();
        let same = op(ElemOp::Mul, vec![leaf(0), leaf(0)]);
        assert!(match_pattern(&p, &same).is_some());
        let diff = op(ElemOp::Mul, vec![leaf(0), leaf(1)]);
        assert!(match_pattern(&p, &diff).is_none());
    }

    #[test]
    fn leaf_where_pattern_expects_op_fails() {
        let p: Pattern = "Add(I1, Mul(I2, I3))".parse().unwrap();
        let t = op(ElemOp::Add, vec![leaf(0), leaf(1)]);
        assert!(match_pattern(&p, &t).is_none());
    }

    #[test]
    fn find_prefers_fused_over_sequence_and_cheapest_match() {
        let neon = sets::builtin(Arch::Neon128);
        // Add(x, Mul(y, z)) should select vmlaq_s32.
        let t = op(
            ElemOp::Add,
            vec![leaf(0), op(ElemOp::Mul, vec![leaf(1), leaf(2)])],
        );
        let (instr, m) = find_instruction(&neon, DataType::I32, 4, &t).unwrap();
        assert_eq!(instr.name, "vmlaq_s32");
        assert_eq!(m.bindings.len(), 3);
        // Plain Add selects vaddq_s32 (cost 1), not anything fused.
        let t2 = op(ElemOp::Add, vec![leaf(0), leaf(1)]);
        let (instr2, _) = find_instruction(&neon, DataType::I32, 4, &t2).unwrap();
        assert_eq!(instr2.name, "vaddq_s32");
    }

    #[test]
    fn find_respects_dtype_and_lanes() {
        let neon = sets::builtin(Arch::Neon128);
        let t = op(ElemOp::Add, vec![leaf(0), leaf(1)]);
        assert!(find_instruction(&neon, DataType::I32, 4, &t).is_some());
        assert!(find_instruction(&neon, DataType::I32, 8, &t).is_none());
        assert!(find_instruction(&neon, DataType::U64, 2, &t).is_none());
    }

    #[test]
    fn integer_div_has_no_instruction() {
        let neon = sets::builtin(Arch::Neon128);
        let t = op(ElemOp::Div, vec![leaf(0), leaf(1)]);
        assert!(find_instruction(&neon, DataType::I32, 4, &t).is_none());
        assert!(find_instruction(&neon, DataType::F32, 4, &t).is_some());
    }

    #[test]
    fn indexed_find_identical_to_linear_scan() {
        // Exhaustive equivalence over every builtin set and a zoo of trees
        // covering fused shapes, commutativity, wildcards and misses.
        let trees = [
            op(ElemOp::Add, vec![leaf(0), leaf(1)]),
            op(ElemOp::Sub, vec![leaf(0), leaf(1)]),
            op(ElemOp::Mul, vec![leaf(0), leaf(1)]),
            op(ElemOp::Div, vec![leaf(0), leaf(1)]),
            op(
                ElemOp::Add,
                vec![leaf(0), op(ElemOp::Mul, vec![leaf(1), leaf(2)])],
            ),
            op(
                ElemOp::Add,
                vec![op(ElemOp::Mul, vec![leaf(1), leaf(2)]), leaf(0)],
            ),
            op(
                ElemOp::Shr(1),
                vec![op(ElemOp::Add, vec![leaf(0), leaf(1)])],
            ),
            op(ElemOp::Shr(4), vec![leaf(0)]),
            op(ElemOp::Shl(2), vec![leaf(0)]),
            op(ElemOp::Min, vec![leaf(0), leaf(1)]),
            op(ElemOp::Abs, vec![leaf(0)]),
            op(
                ElemOp::Sub,
                vec![op(ElemOp::Add, vec![leaf(0), leaf(1)]), leaf(2)],
            ),
        ];
        for arch in [Arch::Neon128, Arch::Sse128, Arch::Avx256] {
            let set = sets::builtin(arch);
            let index = hcg_isa::InstrIndex::build(&set);
            for dtype in [DataType::I32, DataType::U8, DataType::F32, DataType::F64] {
                for lanes in [2, 4, 8, 16] {
                    for tree in &trees {
                        let linear = find_instruction(&set, dtype, lanes, tree);
                        let indexed = find_instruction_indexed(&set, &index, dtype, lanes, tree);
                        assert_eq!(
                            linear.as_ref().map(|(i, m)| (&i.name, m)),
                            indexed.as_ref().map(|(i, m)| (&i.name, m)),
                            "{arch} {dtype} x{lanes} on {tree}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn indexed_find_rejects_bare_leaf() {
        let set = sets::builtin(Arch::Neon128);
        let index = hcg_isa::InstrIndex::build(&set);
        assert!(find_instruction_indexed(&set, &index, DataType::I32, 4, &leaf(0)).is_none());
    }

    #[test]
    fn memo_caches_hits_and_misses() {
        let set = sets::builtin(Arch::Neon128);
        let index = hcg_isa::InstrIndex::build(&set);
        let mut memo = MatchMemo::new();
        let t = op(
            ElemOp::Add,
            vec![leaf(0), op(ElemOp::Mul, vec![leaf(1), leaf(2)])],
        );
        let miss_tree = op(ElemOp::Div, vec![leaf(0), leaf(1)]);

        let first = memo.find(&set, &index, DataType::I32, 4, &t).unwrap();
        assert_eq!(first.0.name, "vmlaq_s32");
        assert_eq!((memo.hits(), memo.misses()), (0, 1));

        // Repeat: served from cache, identical result.
        let again = memo.find(&set, &index, DataType::I32, 4, &t).unwrap();
        assert_eq!(again.0.name, first.0.name);
        assert_eq!(again.1, first.1);
        assert_eq!((memo.hits(), memo.misses()), (1, 1));

        // Negative results are cached too.
        assert!(memo
            .find(&set, &index, DataType::I32, 4, &miss_tree)
            .is_none());
        assert!(memo
            .find(&set, &index, DataType::I32, 4, &miss_tree)
            .is_none());
        assert_eq!((memo.hits(), memo.misses()), (2, 2));
    }

    #[test]
    fn find_all_is_cheapest_first_and_head_agrees_with_find() {
        for arch in [Arch::Neon128, Arch::Sse128, Arch::Avx256] {
            let set = sets::builtin(arch);
            let index = hcg_isa::InstrIndex::build(&set);
            let trees = [
                op(ElemOp::Add, vec![leaf(0), leaf(1)]),
                op(
                    ElemOp::Add,
                    vec![leaf(0), op(ElemOp::Mul, vec![leaf(1), leaf(2)])],
                ),
                op(ElemOp::Div, vec![leaf(0), leaf(1)]),
            ];
            for dtype in [DataType::I32, DataType::F32] {
                for lanes in [4, 8] {
                    for tree in &trees {
                        let all = find_all_instructions_indexed(&set, &index, dtype, lanes, tree);
                        // Cheapest first.
                        for w in all.windows(2) {
                            assert!(w[0].0.cost <= w[1].0.cost, "{arch} {dtype} x{lanes}");
                        }
                        // Head is the greedy winner (or both empty).
                        let first = find_instruction_indexed(&set, &index, dtype, lanes, tree);
                        assert_eq!(
                            all.first().map(|(i, m)| (&i.name, m)),
                            first.as_ref().map(|(i, m)| (&i.name, m)),
                            "{arch} {dtype} x{lanes} on {tree}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memo_find_all_caches_and_counts() {
        let set = sets::builtin(Arch::Neon128);
        let index = hcg_isa::InstrIndex::build(&set);
        let mut memo = MatchMemo::new();
        let t = op(
            ElemOp::Add,
            vec![leaf(0), op(ElemOp::Mul, vec![leaf(1), leaf(2)])],
        );
        let first = memo.find_all(&set, &index, DataType::I32, 4, &t);
        assert_eq!(first[0].0.name, "vmlaq_s32");
        assert_eq!((memo.hits(), memo.misses()), (0, 1));
        let again = memo.find_all(&set, &index, DataType::I32, 4, &t);
        assert_eq!(
            again.iter().map(|(i, _)| &i.name).collect::<Vec<_>>(),
            first.iter().map(|(i, _)| &i.name).collect::<Vec<_>>()
        );
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        // The single-result cache is separate storage but shares counters.
        memo.find(&set, &index, DataType::I32, 4, &t).unwrap();
        assert_eq!((memo.hits(), memo.misses()), (1, 2));
    }

    #[test]
    fn fig4_full_selection_sequence() {
        // End-to-end over the Fig. 4 graph: the selected instructions must
        // be exactly vsubq, vhaddq, vmlaq (paper Listing 1).
        use crate::dfg::Dfg;
        use crate::extend::{extend_subgraphs, top_left_node, MapState};

        let mut g = Dfg::new(DataType::I32, 4, 4);
        let s = g
            .add_node(
                ElemOp::Sub,
                vec![DfgInput::External(1), DfgInput::External(2)],
                "Sub",
            )
            .unwrap();
        let add_h = g
            .add_node(
                ElemOp::Add,
                vec![DfgInput::External(0), DfgInput::Node(s)],
                "AddH",
            )
            .unwrap();
        let shr = g
            .add_node(ElemOp::Shr(1), vec![DfgInput::Node(add_h)], "Shr")
            .unwrap();
        let mul = g
            .add_node(
                ElemOp::Mul,
                vec![DfgInput::Node(s), DfgInput::External(3)],
                "Mul",
            )
            .unwrap();
        let add_m = g
            .add_node(
                ElemOp::Add,
                vec![DfgInput::Node(s), DfgInput::Node(mul)],
                "AddM",
            )
            .unwrap();
        g.mark_output(shr);
        g.mark_output(add_m);

        let neon = sets::builtin(Arch::Neon128);
        let max_n = neon.max_nodes(DataType::I32, 4);
        let max_d = neon.max_depth(DataType::I32, 4);
        let mut state = MapState::new(&g);
        let mut selected = Vec::new();
        while let Some(start) = top_left_node(&g, &state) {
            let cands = extend_subgraphs(&g, &state, start, max_n, max_d);
            let mut chosen = None;
            for c in &cands {
                if let Some((instr, _)) = find_instruction(&neon, DataType::I32, 4, &c.tree) {
                    chosen = Some((c.clone(), instr.name.clone()));
                    break;
                }
            }
            let (c, name) = chosen.expect("every single node maps on NEON i32");
            selected.push(name);
            state.mark_computed(&c.nodes);
        }
        assert_eq!(selected, vec!["vsubq_s32", "vhaddq_s32", "vmlaq_s32"]);
    }
}
