//! Operand trees: a candidate subgraph flattened into the expression-tree
//! form that instruction computing graphs are matched against.

use crate::dfg::{Dfg, DfgInput, NodeId};
use hcg_model::op::ElemOp;
use std::fmt;

/// A candidate subgraph as an expression tree. Leaves are values available
/// before the candidate executes (external inputs or already-computed node
/// results); internal nodes are the candidate's operations.
///
/// A value used twice inside the candidate appears as two identical subtrees
/// — instruction patterns with repeated input slots (e.g. `Mul(I1, I1)`)
/// match exactly that shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValTree {
    /// A value available before the candidate runs.
    Leaf(DfgInput),
    /// An operation inside the candidate.
    Op {
        /// The operation.
        op: ElemOp,
        /// Operand subtrees (length = arity).
        args: Vec<ValTree>,
    },
}

impl ValTree {
    /// Build the tree for `nodes` rooted at `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is not a member of `nodes`.
    pub fn from_subgraph(graph: &Dfg, nodes: &[NodeId], sink: NodeId) -> ValTree {
        assert!(nodes.contains(&sink), "sink must be in the subgraph");
        fn build(graph: &Dfg, nodes: &[NodeId], at: NodeId) -> ValTree {
            let n = graph.node(at);
            ValTree::Op {
                op: n.op,
                args: n
                    .inputs
                    .iter()
                    .map(|i| match i {
                        DfgInput::Node(inner) if nodes.contains(inner) => {
                            build(graph, nodes, *inner)
                        }
                        other => ValTree::Leaf(*other),
                    })
                    .collect(),
            }
        }
        build(graph, nodes, sink)
    }

    /// Height counted in operation nodes (a leaf has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            ValTree::Leaf(_) => 0,
            ValTree::Op { args, .. } => 1 + args.iter().map(ValTree::depth).max().unwrap_or(0),
        }
    }

    /// Number of operation nodes (shared values count once per occurrence).
    pub fn op_count(&self) -> usize {
        match self {
            ValTree::Leaf(_) => 0,
            ValTree::Op { args, .. } => 1 + args.iter().map(ValTree::op_count).sum::<usize>(),
        }
    }

    /// The tree with the operands of every commutative operation sorted into
    /// a canonical order, recursively. Two trees that differ only in
    /// commutative operand order canonicalize to equal trees — the same
    /// normalization the `hcg-verify` expression arena applies when
    /// interning, so pattern-matching layers and the verifier agree on what
    /// counts as "the same computation".
    pub fn canonicalized(&self) -> ValTree {
        match self {
            ValTree::Leaf(l) => ValTree::Leaf(*l),
            ValTree::Op { op, args } => {
                let mut args: Vec<ValTree> = args.iter().map(ValTree::canonicalized).collect();
                if op.commutative() {
                    args.sort();
                }
                ValTree::Op { op: *op, args }
            }
        }
    }
}

impl fmt::Display for ValTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValTree::Leaf(DfgInput::External(e)) => write!(f, "e{e}"),
            ValTree::Leaf(DfgInput::Node(n)) => write!(f, "{n}"),
            ValTree::Op { op, args } => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::DataType;

    #[test]
    fn tree_from_chain() {
        let mut g = Dfg::new(DataType::I32, 4, 2);
        let m = g
            .add_node(
                ElemOp::Mul,
                vec![DfgInput::External(0), DfgInput::External(1)],
                "m",
            )
            .unwrap();
        let a = g
            .add_node(
                ElemOp::Add,
                vec![DfgInput::External(0), DfgInput::Node(m)],
                "a",
            )
            .unwrap();
        g.mark_output(a);
        let t = ValTree::from_subgraph(&g, &[m, a], a);
        assert_eq!(t.to_string(), "Add(e0, Mul(e0, e1))");
        assert_eq!(t.depth(), 2);
        assert_eq!(t.op_count(), 2);
    }

    #[test]
    fn boundary_node_becomes_leaf() {
        let mut g = Dfg::new(DataType::I32, 4, 1);
        let abs = g
            .add_node(ElemOp::Abs, vec![DfgInput::External(0)], "abs")
            .unwrap();
        let neg = g
            .add_node(ElemOp::Neg, vec![DfgInput::Node(abs)], "neg")
            .unwrap();
        g.mark_output(neg);
        let t = ValTree::from_subgraph(&g, &[neg], neg);
        assert_eq!(t.to_string(), "Neg(n0)");
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn canonicalized_sorts_commutative_args() {
        let a = ValTree::Op {
            op: ElemOp::Add,
            args: vec![
                ValTree::Leaf(DfgInput::External(1)),
                ValTree::Leaf(DfgInput::External(0)),
            ],
        };
        let b = ValTree::Op {
            op: ElemOp::Add,
            args: vec![
                ValTree::Leaf(DfgInput::External(0)),
                ValTree::Leaf(DfgInput::External(1)),
            ],
        };
        assert_ne!(a, b);
        assert_eq!(a.canonicalized(), b.canonicalized());
        // Non-commutative operand order is preserved.
        let s = ValTree::Op {
            op: ElemOp::Sub,
            args: vec![
                ValTree::Leaf(DfgInput::External(1)),
                ValTree::Leaf(DfgInput::External(0)),
            ],
        };
        assert_eq!(s.canonicalized().to_string(), "Sub(e1, e0)");
    }

    #[test]
    fn shared_value_duplicates_subtree() {
        let mut g = Dfg::new(DataType::I32, 4, 1);
        let abs = g
            .add_node(ElemOp::Abs, vec![DfgInput::External(0)], "abs")
            .unwrap();
        let sq = g
            .add_node(
                ElemOp::Mul,
                vec![DfgInput::Node(abs), DfgInput::Node(abs)],
                "sq",
            )
            .unwrap();
        g.mark_output(sq);
        let t = ValTree::from_subgraph(&g, &[abs, sq], sq);
        assert_eq!(t.to_string(), "Mul(Abs(e0), Abs(e0))");
        assert_eq!(t.op_count(), 3);
    }
}
