//! The directed dataflow graph built from a region of connected batch
//! computing actors (paper §3.2.2, step 1: "collect the interconnected
//! actors which have the same I/O scales and bit-width of data element").

use hcg_model::op::ElemOp;
use hcg_model::DataType;
use std::fmt;

/// Identifier of a node inside one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An operand of a dataflow node: either one of the region's external input
/// arrays or the result of another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DfgInput {
    /// External input array, by index into the region's input list.
    External(usize),
    /// Result of another node in the same graph.
    Node(NodeId),
}

/// One element-wise operation node.
#[derive(Debug, Clone, PartialEq)]
pub struct DfgNode {
    /// Node id (dense).
    pub id: NodeId,
    /// The element-wise operation.
    pub op: ElemOp,
    /// Operands, length equals `op.arity()`.
    pub inputs: Vec<DfgInput>,
    /// Display label (usually the originating actor name).
    pub label: String,
}

/// Error building a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfgError(String);

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dataflow graph error: {}", self.0)
    }
}

impl std::error::Error for DfgError {}

/// A directed dataflow graph over element-wise operations, all sharing one
/// element type and one data length (the paper's same-I/O-scale,
/// same-bit-width condition).
///
/// Nodes must be added in topological order (operands reference only earlier
/// nodes), which region formation guarantees by walking the model schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    /// Element type of every value in the graph.
    pub dtype: DataType,
    /// Element count of every array in the graph.
    pub len: usize,
    /// Number of external input arrays.
    pub n_externals: usize,
    nodes: Vec<DfgNode>,
    /// Nodes whose results leave the region (must be stored to memory).
    outputs: Vec<NodeId>,
}

impl Dfg {
    /// An empty graph.
    pub fn new(dtype: DataType, len: usize, n_externals: usize) -> Self {
        Dfg {
            dtype,
            len,
            n_externals,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Append a node.
    ///
    /// # Errors
    ///
    /// Fails when the operand count does not match the op's arity, an
    /// operand references a later/unknown node or an out-of-range external,
    /// or the op does not support the graph's element type.
    pub fn add_node(
        &mut self,
        op: ElemOp,
        inputs: Vec<DfgInput>,
        label: impl Into<String>,
    ) -> Result<NodeId, DfgError> {
        if inputs.len() != op.arity() {
            return Err(DfgError(format!(
                "{op} takes {} operand(s), got {}",
                op.arity(),
                inputs.len()
            )));
        }
        if !op.supports(self.dtype) {
            return Err(DfgError(format!("{op} unsupported on {}", self.dtype)));
        }
        let id = NodeId(self.nodes.len());
        for i in &inputs {
            match i {
                DfgInput::External(e) if *e >= self.n_externals => {
                    return Err(DfgError(format!("external {e} out of range")));
                }
                DfgInput::Node(n) if n.0 >= id.0 => {
                    return Err(DfgError(format!(
                        "node operand {n} is not earlier than {id} (topological order required)"
                    )));
                }
                _ => {}
            }
        }
        self.nodes.push(DfgNode {
            id,
            op,
            inputs,
            label: label.into(),
        });
        Ok(id)
    }

    /// Mark a node's result as leaving the region.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn mark_output(&mut self, id: NodeId) {
        assert!(id.0 < self.nodes.len(), "unknown node {id}");
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// All nodes in insertion (topological) order.
    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    /// Access one node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The region outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// `true` when `id`'s result is a region output.
    pub fn is_output(&self, id: NodeId) -> bool {
        self.outputs.contains(&id)
    }

    /// Ids of nodes consuming `id`'s result.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&DfgInput::Node(id)))
            .map(|n| n.id)
            .collect()
    }

    /// Per-op relative computational cost, used to order candidate subgraphs
    /// (paper: "subgraphs with more computational cost will be tried to be
    /// matched first").
    pub fn op_cost(op: ElemOp) -> u32 {
        match op {
            ElemOp::Div => 8,
            ElemOp::Sqrt => 8,
            ElemOp::Recp => 4,
            ElemOp::Mul => 2,
            _ => 1,
        }
    }

    /// Total cost of a set of nodes.
    pub fn cost_of(&self, nodes: &[NodeId]) -> u32 {
        nodes.iter().map(|&n| Self::op_cost(self.node(n).op)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dfg {
        // Fig. 4: s = Sub(b, c); h = Shr1(Add(a, s)); o = Add(s, Mul(s, d)).
        // Externals: 0=a, 1=b, 2=c, 3=d.
        let mut g = Dfg::new(DataType::I32, 4, 4);
        let s = g
            .add_node(
                ElemOp::Sub,
                vec![DfgInput::External(1), DfgInput::External(2)],
                "Sub",
            )
            .unwrap();
        let add_h = g
            .add_node(
                ElemOp::Add,
                vec![DfgInput::External(0), DfgInput::Node(s)],
                "AddH",
            )
            .unwrap();
        let shr = g
            .add_node(ElemOp::Shr(1), vec![DfgInput::Node(add_h)], "Shr")
            .unwrap();
        let mul = g
            .add_node(
                ElemOp::Mul,
                vec![DfgInput::Node(s), DfgInput::External(3)],
                "Mul",
            )
            .unwrap();
        let add_m = g
            .add_node(
                ElemOp::Add,
                vec![DfgInput::Node(s), DfgInput::Node(mul)],
                "AddM",
            )
            .unwrap();
        g.mark_output(shr);
        g.mark_output(add_m);
        g
    }

    #[test]
    fn build_fig4_graph() {
        let g = sample();
        assert_eq!(g.len_nodes(), 5);
        assert_eq!(g.outputs().len(), 2);
        assert_eq!(
            g.consumers(NodeId(0)),
            vec![NodeId(1), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn arity_validated() {
        let mut g = Dfg::new(DataType::I32, 4, 1);
        assert!(g
            .add_node(ElemOp::Add, vec![DfgInput::External(0)], "bad")
            .is_err());
    }

    #[test]
    fn dtype_validated() {
        let mut g = Dfg::new(DataType::F32, 4, 2);
        assert!(g
            .add_node(
                ElemOp::BitAnd,
                vec![DfgInput::External(0), DfgInput::External(1)],
                "bad"
            )
            .is_err());
    }

    #[test]
    fn forward_reference_rejected() {
        let mut g = Dfg::new(DataType::I32, 4, 1);
        assert!(g
            .add_node(ElemOp::Abs, vec![DfgInput::Node(NodeId(5))], "bad")
            .is_err());
    }

    #[test]
    fn external_range_validated() {
        let mut g = Dfg::new(DataType::I32, 4, 1);
        assert!(g
            .add_node(ElemOp::Abs, vec![DfgInput::External(1)], "bad")
            .is_err());
    }

    #[test]
    fn mark_output_dedupes() {
        let mut g = Dfg::new(DataType::I32, 4, 1);
        let n = g
            .add_node(ElemOp::Abs, vec![DfgInput::External(0)], "abs")
            .unwrap();
        g.mark_output(n);
        g.mark_output(n);
        assert_eq!(g.outputs().len(), 1);
    }

    #[test]
    fn cost_ordering_weights() {
        assert!(Dfg::op_cost(ElemOp::Div) > Dfg::op_cost(ElemOp::Mul));
        assert!(Dfg::op_cost(ElemOp::Mul) > Dfg::op_cost(ElemOp::Add));
    }
}
