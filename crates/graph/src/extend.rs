//! Subgraph extension (paper Algorithm 2, lines 12–13): from the topmost-
//! leftmost unmapped node, enumerate the candidate subgraphs bounded by the
//! instruction set's maximum computing-graph depth and node count, sorted by
//! computational cost descending.
//!
//! Candidate subgraphs are *convex* and *independent* by construction
//! (Algorithm 2 lines 15–16): a node may only be absorbed when every one of
//! its operands is an external input, an already-computed value, or inside
//! the candidate — so no value inside the candidate can depend on a value
//! produced after it, and the candidate never reads a variable that has not
//! been generated yet. A non-sink node additionally must have *all* of its
//! consumers inside the candidate (and not be a region output), otherwise
//! fusing it would hide an intermediate value that is still live.

use crate::dfg::{Dfg, DfgInput, NodeId};
use crate::tree::ValTree;

/// A candidate subgraph rooted at a sink node, ready for instruction
/// matching.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Member nodes, in the graph's topological order.
    pub nodes: Vec<NodeId>,
    /// The unique node whose value leaves the candidate.
    pub sink: NodeId,
    /// The candidate expressed as an operand tree (leaves are external
    /// inputs or already-computed node values).
    pub tree: ValTree,
    /// Computational cost (paper: higher cost tried first).
    pub cost: u32,
}

/// Tracks which nodes have already been translated (removed from the
/// paper's `LastGraph`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapState {
    computed: Vec<bool>,
}

impl MapState {
    /// All nodes pending.
    pub fn new(graph: &Dfg) -> Self {
        MapState {
            computed: vec![false; graph.len_nodes()],
        }
    }

    /// `true` once `id` has been translated.
    pub fn is_computed(&self, id: NodeId) -> bool {
        self.computed[id.0]
    }

    /// Mark a candidate's nodes as translated.
    pub fn mark_computed(&mut self, nodes: &[NodeId]) {
        for n in nodes {
            self.computed[n.0] = true;
        }
    }

    /// `true` when every node has been translated (the loop exit of
    /// Algorithm 2 line 11).
    pub fn all_computed(&self) -> bool {
        self.computed.iter().all(|&c| c)
    }

    /// Count of pending nodes.
    pub fn pending(&self) -> usize {
        self.computed.iter().filter(|&&c| !c).count()
    }
}

/// `true` when every operand of `id` is available (external or computed).
fn is_ready(graph: &Dfg, state: &MapState, id: NodeId) -> bool {
    graph.node(id).inputs.iter().all(|i| match i {
        DfgInput::External(_) => true,
        DfgInput::Node(n) => state.is_computed(*n),
    })
}

/// The topmost-leftmost unmapped node (Algorithm 2 line 12): the first
/// node in topological order whose operands are all available.
///
/// Returns `None` when the graph is fully mapped. Because nodes are stored
/// in topological order, the first pending node is always ready, so the
/// selection loop makes progress.
pub fn top_left_node(graph: &Dfg, state: &MapState) -> Option<NodeId> {
    graph
        .nodes()
        .iter()
        .map(|n| n.id)
        .find(|&id| !state.is_computed(id) && is_ready(graph, state, id))
}

/// Enumerate candidate subgraphs containing `start` (Algorithm 2 line 13),
/// bounded by the instruction set's `max_nodes` and `max_depth`, sorted by
/// cost descending (largest first), with the single-node candidate always
/// included last.
pub fn extend_subgraphs(
    graph: &Dfg,
    state: &MapState,
    start: NodeId,
    max_nodes: usize,
    max_depth: usize,
) -> Vec<Candidate> {
    let mut found: Vec<Vec<NodeId>> = Vec::new();
    let mut work = vec![vec![start]];
    while let Some(current) = work.pop() {
        found.push(current.clone());
        if current.len() >= max_nodes {
            continue;
        }
        // Try absorbing any consumer of a member whose other operands are
        // available or inside the candidate.
        let mut grown: Vec<Vec<NodeId>> = Vec::new();
        for &m in &current {
            for c in graph.consumers(m) {
                if current.contains(&c) || state.is_computed(c) {
                    continue;
                }
                let ok = graph.node(c).inputs.iter().all(|i| match i {
                    DfgInput::External(_) => true,
                    DfgInput::Node(n) => state.is_computed(*n) || current.contains(n),
                });
                if !ok {
                    continue;
                }
                let mut next = current.clone();
                next.push(c);
                next.sort_unstable();
                next.dedup();
                if !found.contains(&next) && !grown.contains(&next) {
                    grown.push(next);
                }
            }
        }
        work.extend(grown);
    }

    let mut out: Vec<Candidate> = found
        .into_iter()
        .filter_map(|nodes| candidate_of(graph, &nodes, max_depth))
        .collect();
    // Largest computational cost first; ties broken by more nodes first,
    // then by sink id for determinism.
    out.sort_by(|a, b| {
        b.cost
            .cmp(&a.cost)
            .then(b.nodes.len().cmp(&a.nodes.len()))
            .then(a.sink.cmp(&b.sink))
    });
    out.dedup_by(|a, b| a.nodes == b.nodes);
    out
}

/// Validate a node set as a candidate: unique sink, internal values not
/// live outside, depth within bound. Returns `None` when invalid.
fn candidate_of(graph: &Dfg, nodes: &[NodeId], max_depth: usize) -> Option<Candidate> {
    // The sink is the unique member whose value is consumed outside the set
    // or is a region output.
    let mut sinks = nodes.iter().copied().filter(|&n| {
        let external_consumer = graph.consumers(n).iter().any(|c| !nodes.contains(c));
        external_consumer || graph.is_output(n) || graph.consumers(n).is_empty()
    });
    let sink = sinks.next()?;
    if sinks.next().is_some() {
        return None; // more than one live-out value — not fusable
    }
    // Every non-sink member must be fully consumed inside the candidate and
    // must not itself be a region output.
    for &n in nodes {
        if n == sink {
            continue;
        }
        if graph.is_output(n) {
            return None;
        }
        if graph.consumers(n).iter().any(|c| !nodes.contains(c)) {
            return None;
        }
    }
    let tree = ValTree::from_subgraph(graph, nodes, sink);
    if tree.depth() > max_depth {
        return None;
    }
    Some(Candidate {
        nodes: nodes.to_vec(),
        sink,
        cost: graph.cost_of(nodes),
        tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::op::ElemOp;
    use hcg_model::DataType;

    /// The Fig. 4 graph: externals 0=a 1=b 2=c 3=d.
    fn fig4() -> Dfg {
        let mut g = Dfg::new(DataType::I32, 4, 4);
        let s = g
            .add_node(
                ElemOp::Sub,
                vec![DfgInput::External(1), DfgInput::External(2)],
                "Sub",
            )
            .unwrap();
        let add_h = g
            .add_node(
                ElemOp::Add,
                vec![DfgInput::External(0), DfgInput::Node(s)],
                "AddH",
            )
            .unwrap();
        let shr = g
            .add_node(ElemOp::Shr(1), vec![DfgInput::Node(add_h)], "Shr")
            .unwrap();
        let mul = g
            .add_node(
                ElemOp::Mul,
                vec![DfgInput::Node(s), DfgInput::External(3)],
                "Mul",
            )
            .unwrap();
        let add_m = g
            .add_node(
                ElemOp::Add,
                vec![DfgInput::Node(s), DfgInput::Node(mul)],
                "AddM",
            )
            .unwrap();
        g.mark_output(shr);
        g.mark_output(add_m);
        g
    }

    #[test]
    fn top_left_is_first_ready_node() {
        let g = fig4();
        let state = MapState::new(&g);
        assert_eq!(top_left_node(&g, &state), Some(NodeId(0)));
    }

    #[test]
    fn sub_extends_to_only_itself() {
        // Sub's value is consumed by three nodes, so any candidate absorbing
        // one consumer hides a live intermediate — only {Sub} is valid.
        let g = fig4();
        let state = MapState::new(&g);
        let cands = extend_subgraphs(&g, &state, NodeId(0), 2, 2);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].nodes, vec![NodeId(0)]);
        assert_eq!(cands[0].sink, NodeId(0));
    }

    #[test]
    fn addh_extends_to_vhadd_shape() {
        let g = fig4();
        let mut state = MapState::new(&g);
        state.mark_computed(&[NodeId(0)]);
        // Next topmost-leftmost is AddH (node 1).
        assert_eq!(top_left_node(&g, &state), Some(NodeId(1)));
        let cands = extend_subgraphs(&g, &state, NodeId(1), 2, 2);
        // Largest first: {AddH, Shr} then {AddH}... but AddH feeds only Shr,
        // so the single-node candidate {AddH} is invalid? No: AddH's value
        // is consumed outside {AddH} (by Shr), making AddH the sink — valid.
        assert_eq!(cands[0].nodes, vec![NodeId(1), NodeId(2)]);
        assert_eq!(cands[0].sink, NodeId(2));
        assert!(cands.iter().any(|c| c.nodes == vec![NodeId(1)]));
    }

    #[test]
    fn mul_extends_to_mla_shape() {
        let g = fig4();
        let mut state = MapState::new(&g);
        state.mark_computed(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(top_left_node(&g, &state), Some(NodeId(3)));
        let cands = extend_subgraphs(&g, &state, NodeId(3), 2, 2);
        assert_eq!(cands[0].nodes, vec![NodeId(3), NodeId(4)]);
        assert_eq!(cands[0].sink, NodeId(4));
    }

    #[test]
    fn max_nodes_bounds_extension() {
        let g = fig4();
        let mut state = MapState::new(&g);
        state.mark_computed(&[NodeId(0)]);
        let cands = extend_subgraphs(&g, &state, NodeId(1), 1, 1);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].nodes.len(), 1);
    }

    #[test]
    fn index_bounds_prune_candidate_enumeration() {
        // Driving extension with `InstrIndex::bounds` (what the mapping
        // loop and the beam search both do) never enumerates a candidate
        // larger or deeper than the slice's biggest pattern.
        let g = fig4();
        for (max_nodes, max_depth) in [(1, 1), (2, 2), (3, 2), (4, 3)] {
            let mut state = MapState::new(&g);
            while let Some(n) = top_left_node(&g, &state) {
                let cands = extend_subgraphs(&g, &state, n, max_nodes, max_depth);
                assert!(!cands.is_empty());
                for c in &cands {
                    assert!(c.nodes.len() <= max_nodes, "nodes bound violated");
                    assert!(c.tree.depth() <= max_depth, "depth bound violated");
                }
                state.mark_computed(&cands.last().unwrap().nodes);
            }
        }
    }

    #[test]
    fn progress_guaranteed_until_done() {
        let g = fig4();
        let mut state = MapState::new(&g);
        let mut steps = 0;
        while let Some(n) = top_left_node(&g, &state) {
            let cands = extend_subgraphs(&g, &state, n, 2, 2);
            assert!(!cands.is_empty());
            // Take the last (single-node) candidate to simulate worst case.
            let c = cands.last().unwrap();
            state.mark_computed(&c.nodes);
            steps += 1;
            assert!(steps <= g.len_nodes());
        }
        assert!(state.all_computed());
    }

    #[test]
    fn cost_ordering_puts_larger_first() {
        let g = fig4();
        let mut state = MapState::new(&g);
        state.mark_computed(&[NodeId(0)]);
        let cands = extend_subgraphs(&g, &state, NodeId(1), 2, 2);
        for w in cands.windows(2) {
            assert!(w[0].cost >= w[1].cost);
        }
    }

    #[test]
    fn region_output_cannot_be_internal() {
        // x -> Abs -> Neg, but Abs is also a region output: {Abs, Neg}
        // would hide Abs's live value.
        let mut g = Dfg::new(DataType::I32, 4, 1);
        let abs = g
            .add_node(ElemOp::Abs, vec![DfgInput::External(0)], "Abs")
            .unwrap();
        let neg = g
            .add_node(ElemOp::Neg, vec![DfgInput::Node(abs)], "Neg")
            .unwrap();
        g.mark_output(abs);
        g.mark_output(neg);
        let state = MapState::new(&g);
        let cands = extend_subgraphs(&g, &state, abs, 2, 2);
        assert!(cands.iter().all(|c| c.nodes.len() == 1));
    }

    #[test]
    fn diamond_with_four_nodes_can_fuse_when_allowed() {
        // e0 -> A(abs), A feeds M1 and M2, both feed Add. With max_nodes=4
        // the whole diamond {A, M1, M2, Add} is a valid single-sink
        // candidate.
        let mut g = Dfg::new(DataType::I32, 8, 2);
        let a = g
            .add_node(ElemOp::Abs, vec![DfgInput::External(0)], "A")
            .unwrap();
        let m1 = g
            .add_node(
                ElemOp::Mul,
                vec![DfgInput::Node(a), DfgInput::External(1)],
                "M1",
            )
            .unwrap();
        let m2 = g
            .add_node(
                ElemOp::Mul,
                vec![DfgInput::Node(a), DfgInput::Node(a)],
                "M2",
            )
            .unwrap();
        let add = g
            .add_node(
                ElemOp::Add,
                vec![DfgInput::Node(m1), DfgInput::Node(m2)],
                "Add",
            )
            .unwrap();
        g.mark_output(add);
        let state = MapState::new(&g);
        let cands = extend_subgraphs(&g, &state, a, 4, 4);
        assert!(cands
            .iter()
            .any(|c| c.nodes == vec![a, m1, m2, add] && c.sink == add));
    }
}
