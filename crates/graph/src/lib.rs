//! # hcg-graph — dataflow graph engine for SIMD instruction selection
//!
//! Implements the graph machinery of the HCG paper's Algorithm 2 (§3.2.2):
//! the directed dataflow graph over batch computing actors ([`Dfg`]),
//! topmost-leftmost node selection and bounded subgraph extension with
//! convexity/independence guarantees ([`extend`]), candidate operand trees
//! ([`ValTree`]), and matching against SIMD instruction computing graphs
//! ([`matching`]).
//!
//! # Examples
//!
//! ```
//! use hcg_graph::{Dfg, DfgInput, extend::{MapState, top_left_node, extend_subgraphs}};
//! use hcg_graph::matching::find_instruction;
//! use hcg_isa::{sets, Arch};
//! use hcg_model::{op::ElemOp, DataType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // out = acc + x*y — one vmlaq_s32 on NEON.
//! let mut g = Dfg::new(DataType::I32, 4, 3);
//! let m = g.add_node(ElemOp::Mul, vec![DfgInput::External(1), DfgInput::External(2)], "m")?;
//! let a = g.add_node(ElemOp::Add, vec![DfgInput::External(0), DfgInput::Node(m)], "a")?;
//! g.mark_output(a);
//!
//! let neon = sets::builtin(Arch::Neon128);
//! let state = MapState::new(&g);
//! let start = top_left_node(&g, &state).expect("graph not empty");
//! let cands = extend_subgraphs(&g, &state, start, 2, 2);
//! let (instr, _) = find_instruction(&neon, DataType::I32, 4, &cands[0].tree)
//!     .expect("NEON fuses multiply-add");
//! assert_eq!(instr.name, "vmlaq_s32");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod dfg;
mod tree;

pub mod extend;
pub mod matching;

pub use dfg::{Dfg, DfgError, DfgInput, DfgNode, NodeId};
pub use extend::{Candidate, MapState};
pub use matching::InstrMatch;
pub use tree::ValTree;
