//! The unified metrics registry: named monotonic counters and gauges with
//! a snapshot/delta API and stable sorted-key JSON output.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// One metric value: a monotonic counter or a last-write-wins gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count (events, items, cycles).
    Counter(u64),
    /// Point-in-time measurement (seconds, ratios, worker counts).
    Gauge(f64),
}

impl MetricValue {
    /// Render as a JSON number (counters as integers, gauges via `f64`
    /// shortest-round-trip formatting — stable for a given value).
    fn to_json(self) -> String {
        match self {
            MetricValue::Counter(c) => c.to_string(),
            MetricValue::Gauge(g) if g.is_finite() => format!("{g}"),
            // JSON has no NaN/Inf; degrade to null rather than emit garbage.
            MetricValue::Gauge(_) => "null".to_owned(),
        }
    }
}

/// A registry of named metrics. One process-global instance
/// ([`MetricsRegistry::global`]) unifies counters from every subsystem;
/// code that needs isolation (tests) can construct its own.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    values: Mutex<BTreeMap<String, MetricValue>>,
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        MetricsRegistry {
            values: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global registry every subsystem records into.
    pub fn global() -> &'static MetricsRegistry {
        &GLOBAL
    }

    /// Add `by` to the named counter, creating it at zero first. A name
    /// previously used as a gauge is converted (last writer wins on kind).
    pub fn counter_add(&self, name: &str, by: u64) {
        let mut m = self.values.lock().expect("metrics lock poisoned");
        let slot = m.entry(name.to_owned()).or_insert(MetricValue::Counter(0));
        *slot = match *slot {
            MetricValue::Counter(c) => MetricValue::Counter(c.saturating_add(by)),
            MetricValue::Gauge(_) => MetricValue::Counter(by),
        };
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.values
            .lock()
            .expect("metrics lock poisoned")
            .insert(name.to_owned(), MetricValue::Gauge(value));
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            values: self.values.lock().expect("metrics lock poisoned").clone(),
        }
    }

    /// Remove every metric (test isolation).
    pub fn reset(&self) {
        self.values.lock().expect("metrics lock poisoned").clear();
    }
}

/// An immutable point-in-time copy of a registry (or a hand-built metric
/// set — the shared schema for report telemetry). Keys iterate and render
/// in sorted order, so JSON output is byte-stable for equal content.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a counter value (used when building report telemetry by hand).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.values
            .insert(name.to_owned(), MetricValue::Counter(value));
    }

    /// Set a gauge value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.values
            .insert(name.to_owned(), MetricValue::Gauge(value));
    }

    /// The named counter, when present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// The named gauge, when present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no metric is recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(name, value)` in sorted-key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Metrics whose name starts with `prefix`, in sorted-key order.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, MetricValue)> + 'a {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Per-key difference `self - earlier`: counters subtract (saturating),
    /// gauges keep this snapshot's value. Keys only in `earlier` are
    /// dropped; keys only in `self` pass through unchanged.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(k, v)| {
                let v = match (*v, earlier.values.get(k)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (v, _) => v,
                };
                (k.clone(), v)
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// Copy every metric of `other` into `self` (other wins on clashes).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.values {
            self.values.insert(k.clone(), *v);
        }
    }

    /// A JSON object with one member per metric, keys sorted — byte-stable
    /// for equal content.
    pub fn to_json(&self) -> String {
        let members: Vec<String> = self
            .values
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", crate::json::escape(k), v.to_json()))
            .collect();
        format!("{{{}}}", members.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.counter_add("jobs", 3);
        r.counter_add("jobs", 4);
        r.gauge_set("workers", 8.0);
        r.gauge_set("workers", 2.0);
        let s = r.snapshot();
        assert_eq!(s.counter("jobs"), Some(7));
        assert_eq!(s.gauge("workers"), Some(2.0));
        assert_eq!(s.counter("workers"), None);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut s = MetricsSnapshot::new();
        s.set_gauge("b.ratio", 1.5);
        s.set_counter("a.count", 2);
        let j = s.to_json();
        assert_eq!(j, "{\"a.count\": 2, \"b.ratio\": 1.5}");
        assert_eq!(j, s.clone().to_json());
        assert!(crate::json::validate(&j).is_ok());
    }

    #[test]
    fn non_finite_gauges_render_null() {
        let mut s = MetricsSnapshot::new();
        s.set_gauge("bad", f64::NAN);
        assert!(crate::json::validate(&s.to_json()).is_ok());
        assert!(s.to_json().contains("null"));
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("n", 10);
        a.set_gauge("g", 1.0);
        let mut b = a.clone();
        b.set_counter("n", 17);
        b.set_gauge("g", 9.0);
        b.set_counter("new", 5);
        let d = b.delta(&a);
        assert_eq!(d.counter("n"), Some(7));
        assert_eq!(d.gauge("g"), Some(9.0));
        assert_eq!(d.counter("new"), Some(5));
        // Underflow saturates rather than wrapping.
        assert_eq!(a.delta(&b).counter("n"), Some(0));
    }

    #[test]
    fn prefix_filter_and_merge() {
        let mut s = MetricsSnapshot::new();
        s.set_counter("exec.pool.jobs", 4);
        s.set_counter("fuzz.cases", 9);
        let execs: Vec<&str> = s.with_prefix("exec.").map(|(k, _)| k).collect();
        assert_eq!(execs, ["exec.pool.jobs"]);
        let mut t = MetricsSnapshot::new();
        t.set_counter("fuzz.cases", 1);
        t.merge(&s);
        assert_eq!(t.counter("fuzz.cases"), Some(9));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn global_registry_is_shared() {
        MetricsRegistry::global().counter_add("obs.test.global", 1);
        assert!(MetricsRegistry::global()
            .snapshot()
            .counter("obs.test.global")
            .is_some());
    }
}
