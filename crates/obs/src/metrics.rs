//! The unified metrics registry: named monotonic counters, gauges and
//! log-bucketed histograms with a snapshot/delta API and stable
//! sorted-key JSON output.

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One metric value: a monotonic counter or a last-write-wins gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count (events, items, cycles).
    Counter(u64),
    /// Point-in-time measurement (seconds, ratios, worker counts).
    Gauge(f64),
}

impl MetricValue {
    /// Render as a JSON number (counters as integers, gauges via `f64`
    /// shortest-round-trip formatting — stable for a given value).
    fn to_json(self) -> String {
        match self {
            MetricValue::Counter(c) => c.to_string(),
            MetricValue::Gauge(g) if g.is_finite() => format!("{g}"),
            // JSON has no NaN/Inf; degrade to null rather than emit garbage.
            MetricValue::Gauge(_) => "null".to_owned(),
        }
    }
}

/// A registry of named metrics. One process-global instance
/// ([`MetricsRegistry::global`]) unifies counters from every subsystem;
/// code that needs isolation (tests) can construct its own.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    values: Mutex<BTreeMap<String, MetricValue>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        MetricsRegistry {
            values: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global registry every subsystem records into.
    pub fn global() -> &'static MetricsRegistry {
        &GLOBAL
    }

    /// Add `by` to the named counter, creating it at zero first. A name
    /// previously used as a gauge is converted (last writer wins on kind).
    pub fn counter_add(&self, name: &str, by: u64) {
        let mut m = self.values.lock().expect("metrics lock poisoned");
        let slot = m.entry(name.to_owned()).or_insert(MetricValue::Counter(0));
        *slot = match *slot {
            MetricValue::Counter(c) => MetricValue::Counter(c.saturating_add(by)),
            MetricValue::Gauge(_) => MetricValue::Counter(by),
        };
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.values
            .lock()
            .expect("metrics lock poisoned")
            .insert(name.to_owned(), MetricValue::Gauge(value));
    }

    /// The named histogram, created empty on first use. The returned
    /// handle is shared: recording through it is lock-free and shows up
    /// in every later [`snapshot`](Self::snapshot).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().expect("metrics lock poisoned");
        Arc::clone(
            m.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Register an externally owned histogram under `name` (last writer
    /// wins). Daemons keep private per-instance histograms for isolation
    /// and register them here so process-wide snapshots still see them.
    pub fn register_histogram(&self, name: &str, hist: &Arc<Histogram>) {
        self.histograms
            .lock()
            .expect("metrics lock poisoned")
            .insert(name.to_owned(), Arc::clone(hist));
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let histograms = self
            .histograms
            .lock()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            values: self.values.lock().expect("metrics lock poisoned").clone(),
            histograms,
        }
    }

    /// Remove every metric (test isolation).
    pub fn reset(&self) {
        self.values.lock().expect("metrics lock poisoned").clear();
        self.histograms
            .lock()
            .expect("metrics lock poisoned")
            .clear();
    }
}

/// An immutable point-in-time copy of a registry (or a hand-built metric
/// set — the shared schema for report telemetry). Keys iterate and render
/// in sorted order, so JSON output is byte-stable for equal content.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, MetricValue>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a counter value (used when building report telemetry by hand).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.values
            .insert(name.to_owned(), MetricValue::Counter(value));
    }

    /// Set a gauge value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.values
            .insert(name.to_owned(), MetricValue::Gauge(value));
    }

    /// The named counter, when present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// The named gauge, when present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Store a histogram snapshot under `name`.
    pub fn set_histogram(&mut self, name: &str, hist: HistogramSnapshot) {
        self.histograms.insert(name.to_owned(), hist);
    }

    /// The named histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Iterate `(name, histogram)` in sorted-key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics (counters, gauges and histograms).
    pub fn len(&self) -> usize {
        self.values.len() + self.histograms.len()
    }

    /// `true` when no metric is recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty() && self.histograms.is_empty()
    }

    /// Iterate `(name, value)` in sorted-key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Metrics whose name starts with `prefix`, in sorted-key order.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, MetricValue)> + 'a {
        self.iter().filter(move |(k, _)| k.starts_with(prefix))
    }

    /// Per-key difference `self - earlier`: counters subtract (saturating),
    /// gauges keep this snapshot's value. Keys only in `earlier` are
    /// dropped; keys only in `self` pass through unchanged.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(k, v)| {
                let v = match (*v, earlier.values.get(k)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (v, _) => v,
                };
                (k.clone(), v)
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let h = match earlier.histograms.get(k) {
                    Some(then) => h.delta(then),
                    None => h.clone(),
                };
                (k.clone(), h)
            })
            .collect();
        MetricsSnapshot { values, histograms }
    }

    /// Copy every metric of `other` into `self` (other wins on clashes).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.values {
            self.values.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.insert(k.clone(), h.clone());
        }
    }

    /// A JSON object with one member per metric, keys sorted — byte-stable
    /// for equal content. Histograms render as nested objects (see
    /// [`HistogramSnapshot::to_json`]); on a name clash the histogram
    /// wins, mirroring registry behavior where names are distinct kinds.
    pub fn to_json(&self) -> String {
        let mut members: BTreeMap<&str, String> = self
            .values
            .iter()
            .map(|(k, v)| (k.as_str(), v.to_json()))
            .collect();
        for (k, h) in &self.histograms {
            members.insert(k.as_str(), h.to_json());
        }
        let members: Vec<String> = members
            .into_iter()
            .map(|(k, v)| format!("\"{}\": {}", crate::json::escape(k), v))
            .collect();
        format!("{{{}}}", members.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.counter_add("jobs", 3);
        r.counter_add("jobs", 4);
        r.gauge_set("workers", 8.0);
        r.gauge_set("workers", 2.0);
        let s = r.snapshot();
        assert_eq!(s.counter("jobs"), Some(7));
        assert_eq!(s.gauge("workers"), Some(2.0));
        assert_eq!(s.counter("workers"), None);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut s = MetricsSnapshot::new();
        s.set_gauge("b.ratio", 1.5);
        s.set_counter("a.count", 2);
        let j = s.to_json();
        assert_eq!(j, "{\"a.count\": 2, \"b.ratio\": 1.5}");
        assert_eq!(j, s.clone().to_json());
        assert!(crate::json::validate(&j).is_ok());
    }

    #[test]
    fn non_finite_gauges_render_null() {
        let mut s = MetricsSnapshot::new();
        s.set_gauge("bad", f64::NAN);
        assert!(crate::json::validate(&s.to_json()).is_ok());
        assert!(s.to_json().contains("null"));
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("n", 10);
        a.set_gauge("g", 1.0);
        let mut b = a.clone();
        b.set_counter("n", 17);
        b.set_gauge("g", 9.0);
        b.set_counter("new", 5);
        let d = b.delta(&a);
        assert_eq!(d.counter("n"), Some(7));
        assert_eq!(d.gauge("g"), Some(9.0));
        assert_eq!(d.counter("new"), Some(5));
        // Underflow saturates rather than wrapping.
        assert_eq!(a.delta(&b).counter("n"), Some(0));
    }

    #[test]
    fn prefix_filter_and_merge() {
        let mut s = MetricsSnapshot::new();
        s.set_counter("exec.pool.jobs", 4);
        s.set_counter("fuzz.cases", 9);
        let execs: Vec<&str> = s.with_prefix("exec.").map(|(k, _)| k).collect();
        assert_eq!(execs, ["exec.pool.jobs"]);
        let mut t = MetricsSnapshot::new();
        t.set_counter("fuzz.cases", 1);
        t.merge(&s);
        assert_eq!(t.counter("fuzz.cases"), Some(9));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delta_with_kind_collisions_keeps_the_later_kind() {
        // A name recorded as a gauge in one snapshot and a counter in the
        // other must not subtract across kinds: the later snapshot's
        // value passes through untouched.
        let mut then = MetricsSnapshot::new();
        then.set_gauge("x", 100.0);
        then.set_counter("y", 100);
        let mut now = MetricsSnapshot::new();
        now.set_counter("x", 7);
        now.set_gauge("y", 7.0);
        let d = now.delta(&then);
        assert_eq!(d.counter("x"), Some(7), "counter-now vs gauge-then");
        assert_eq!(d.gauge("y"), Some(7.0), "gauge-now vs counter-then");
    }

    #[test]
    fn delta_drops_keys_only_in_earlier() {
        let mut then = MetricsSnapshot::new();
        then.set_counter("gone", 3);
        then.set_histogram("h.gone", HistogramSnapshot::default());
        let mut now = MetricsSnapshot::new();
        now.set_counter("kept", 5);
        let d = now.delta(&then);
        assert_eq!(d.counter("gone"), None);
        assert!(d.histogram("h.gone").is_none());
        assert_eq!(d.counter("kept"), Some(5));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn empty_snapshot_is_an_identity_for_delta_and_merge() {
        let mut s = MetricsSnapshot::new();
        s.set_counter("n", 9);
        s.set_gauge("g", 2.5);
        let h = Histogram::new();
        h.record(4);
        s.set_histogram("h", h.snapshot());
        let empty = MetricsSnapshot::new();

        // x.delta(empty) == x and empty.delta(x) == empty.
        assert_eq!(s.delta(&empty), s);
        assert!(empty.delta(&s).is_empty());

        // Merging an empty snapshot changes nothing; merging into an
        // empty snapshot copies everything.
        let mut merged = s.clone();
        merged.merge(&empty);
        assert_eq!(merged, s);
        let mut from_empty = MetricsSnapshot::new();
        from_empty.merge(&s);
        assert_eq!(from_empty, s);
    }

    #[test]
    fn merge_replaces_on_kind_collision_and_keeps_histograms_distinct() {
        let mut a = MetricsSnapshot::new();
        a.set_counter("k", 1);
        let hist = Histogram::new();
        hist.record(8);
        a.set_histogram("lat", hist.snapshot());
        let mut b = MetricsSnapshot::new();
        b.set_gauge("k", 0.5);
        a.merge(&b);
        assert_eq!(a.counter("k"), None, "other wins on kind clashes");
        assert_eq!(a.gauge("k"), Some(0.5));
        assert_eq!(a.histogram("lat").map(|h| h.count), Some(1));
        // len counts values and histograms together.
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn registry_histograms_snapshot_and_delta_round_trip() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        h.record(100);
        let then = r.snapshot();
        h.record(200);
        r.histogram("lat").record(300);
        let now = r.snapshot();
        let d = now.delta(&then);
        assert_eq!(then.histogram("lat").map(|h| h.count), Some(1));
        assert_eq!(now.histogram("lat").map(|h| h.count), Some(3));
        assert_eq!(d.histogram("lat").map(|h| h.count), Some(2));
        assert!(crate::json::validate(&d.to_json()).is_ok());
    }

    #[test]
    fn global_registry_is_shared() {
        MetricsRegistry::global().counter_add("obs.test.global", 1);
        assert!(MetricsRegistry::global()
            .snapshot()
            .counter("obs.test.global")
            .is_some());
    }
}
