//! # hcg-obs — the observability layer
//!
//! Dependency-free tracing and metrics shared by every crate in the
//! workspace:
//!
//! * [`span`]/[`span_with`] — RAII span guards recording into thread-local
//!   buffers with deterministic ids; buffers flush losslessly into a global
//!   sink whenever a thread's outermost span closes (so the `hcg-exec`
//!   pool's workers publish before the pool joins them), and
//!   [`take_events`] drains everything in a stable order.
//! * [`MetricsRegistry`] — named monotonic counters and gauges behind one
//!   process-global registry; [`MetricsSnapshot`] gives stable sorted-key
//!   JSON plus counter deltas, unifying the previously scattered pipeline
//!   counters, exec-pool steal stats, front-end run counters and fuzz
//!   telemetry.
//! * [`chrome_trace_json`] — Chrome trace-event JSON loadable by
//!   `chrome://tracing` and Perfetto; [`render_tree`] is the compact text
//!   alternative.
//! * [`json::validate`] — a tiny JSON well-formedness checker so emitters
//!   can assert their reports parse without pulling in a JSON crate.
//!
//! Instrumentation is opt-in: spans cost one relaxed atomic load while
//! tracing is disabled ([`set_tracing`]), and no instrumented code path ever
//! changes what a generator emits — programs are byte-identical with
//! tracing on or off (proven by test in the bench crate).
//!
//! # Examples
//!
//! ```
//! hcg_obs::set_tracing(true);
//! {
//!     let _outer = hcg_obs::span("demo", "outer");
//!     let _inner = hcg_obs::span("demo", "inner");
//! }
//! hcg_obs::set_tracing(false);
//! let events = hcg_obs::take_events();
//! assert_eq!(events.len(), 2);
//! let trace = hcg_obs::chrome_trace_json(&events);
//! assert!(hcg_obs::json::validate(&trace).is_ok());
//! ```

#![warn(missing_docs)]

pub mod hist;
pub mod json;
mod metrics;
pub mod prometheus;
mod span;
mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{MetricValue, MetricsRegistry, MetricsSnapshot};
pub use prometheus::render_prometheus;
pub use span::{
    clear_events, current_trace_context, flush_thread, set_tracing, span, span_with, take_events,
    trace_scope, tracing_enabled, SpanEvent, SpanGuard, TraceContext, TraceScope,
};
pub use trace::{chrome_trace_json, render_tree};
