//! The span tracer: RAII guards, thread-local buffers, deterministic span
//! ids, lossless cross-thread aggregation.
//!
//! Recording is gated on one process-global flag ([`set_tracing`]); a
//! disabled [`span`] costs a single relaxed atomic load and allocates
//! nothing. Each recording thread appends finished spans to a thread-local
//! buffer; the buffer drains into a global sink whenever the thread's
//! outermost span closes (with a thread-exit `Drop` as backstop), so
//! scoped pool workers never lose events, and [`take_events`] gathers
//! everything in a stable order.
//!
//! Spans stitch into cross-thread trees through an ambient
//! [`TraceContext`]: [`trace_scope`] installs a `(trace_id, parent span
//! id)` pair on the current thread, every span opened under it carries
//! that trace id, and a thread's outermost spans adopt the context's
//! parent — so a server can open a span on its accept thread, ship the
//! context through a queue ([`current_trace_context`] +
//! [`SpanGuard::id`]), and have the worker's spans hang off the accept
//! span as one tree.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Deterministic id: `thread_index << 32 | per-thread sequence`.
    pub id: u64,
    /// Span name (e.g. `hcg/compose`).
    pub name: String,
    /// Category (e.g. `pass`, `session`, `fleet`, `oracle`, `exec`).
    pub cat: &'static str,
    /// Recording thread's index (first-span order, not OS thread id).
    pub tid: u64,
    /// Nesting depth at open (0 = top level on its thread).
    pub depth: u32,
    /// Microseconds from the trace epoch to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// The request trace this span belongs to (0 = no ambient trace).
    pub trace_id: u64,
    /// Id of the enclosing span: the innermost open span on this thread,
    /// or the ambient [`TraceContext`]'s parent for a thread's outermost
    /// span (0 = a root).
    pub parent: u64,
}

/// The ambient trace identity spans are recorded under: a `trace_id`
/// shared by every span of one logical request, and the span id that
/// should parent the next outermost span on this thread. `Default` is
/// the zero context (no trace, no parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// The logical request id (0 = none).
    pub trace_id: u64,
    /// Parent span id for outermost spans (0 = none).
    pub parent: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Per-thread recording state. Buffered events publish to the global sink
/// whenever the thread's outermost span closes (see [`SpanGuard`]'s `Drop`),
/// so a pool worker's spans are visible before the pool joins it; the
/// `Drop` here is a backstop for events still buffered at thread exit.
struct LocalBuf {
    tid: u64,
    next_seq: u64,
    depth: u32,
    /// Ids of currently open spans, innermost last — the parent chain.
    open_ids: Vec<u64>,
    events: Vec<SpanEvent>,
}

impl LocalBuf {
    fn new() -> Self {
        LocalBuf {
            tid: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            next_seq: 0,
            depth: 0,
            open_ids: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                sink.append(&mut self.events);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
    static CONTEXT: Cell<TraceContext> = const { Cell::new(TraceContext { trace_id: 0, parent: 0 }) };
    /// Parent barrier: spans already open when the current scope was
    /// installed are invisible as parents. A long-lived worker-loop span
    /// must not become the parent of per-request spans handled inside it
    /// — each request parents to its own cross-thread context instead.
    static BARRIER: Cell<usize> = const { Cell::new(0) };
}

/// The trace context currently installed on this thread (the zero
/// context when none is). Capture it at a handoff point (queue send,
/// job submission) and reinstall it with [`trace_scope`] on the thread
/// doing the work.
pub fn current_trace_context() -> TraceContext {
    CONTEXT.with(Cell::get)
}

/// Install `ctx` as this thread's ambient trace context until the
/// returned guard drops (the previous context is restored — scopes
/// nest). Independent of the tracing flag: installing a context while
/// recording is off is free and harmless, so servers can thread ids
/// unconditionally.
pub fn trace_scope(ctx: TraceContext) -> TraceScope {
    let previous = CONTEXT.with(|c| c.replace(ctx));
    let open_now = LOCAL.with(|l| l.borrow().open_ids.len());
    let previous_barrier = BARRIER.with(|b| b.replace(open_now));
    TraceScope {
        previous,
        previous_barrier,
    }
}

/// RAII guard returned by [`trace_scope`]; restores the previous context
/// on drop.
#[derive(Debug)]
pub struct TraceScope {
    previous: TraceContext,
    previous_barrier: usize,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.previous));
        BARRIER.with(|b| b.set(self.previous_barrier));
    }
}

/// Turn span recording on or off process-wide. Off by default; flipping the
/// flag never changes what instrumented code computes, only whether spans
/// are buffered.
pub fn set_tracing(enabled: bool) {
    if enabled {
        epoch(); // pin the epoch no later than the first enable
    }
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open a span; it closes (and records) when the returned guard drops.
/// When tracing is disabled this is a no-op costing one atomic load.
pub fn span(cat: &'static str, name: &str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { open: None };
    }
    open_span(cat, name.to_owned())
}

/// [`span`] with a lazily built name: the closure only runs (and only
/// allocates) when tracing is enabled — use for formatted span names on
/// hot paths.
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { open: None };
    }
    open_span(cat, name())
}

fn open_span(cat: &'static str, name: String) -> SpanGuard {
    let start_us = epoch().elapsed().as_micros() as u64;
    let ctx = current_trace_context();
    let barrier = BARRIER.with(Cell::get);
    let (id, tid, depth, parent) = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let id = (l.tid << 32) | (l.next_seq & 0xffff_ffff);
        l.next_seq += 1;
        let depth = l.depth;
        l.depth += 1;
        // Parent: the innermost span opened under the current trace
        // scope, else the cross-thread parent carried by the context.
        // Spans below the barrier (opened before the scope) never
        // parent scoped spans — see BARRIER.
        let parent = l
            .open_ids
            .get(barrier.min(l.open_ids.len())..)
            .and_then(|scoped| scoped.last())
            .copied()
            .unwrap_or(ctx.parent);
        l.open_ids.push(id);
        (id, l.tid, depth, parent)
    });
    SpanGuard {
        open: Some(OpenSpan {
            id,
            name,
            cat,
            tid,
            depth,
            start_us,
            trace_id: ctx.trace_id,
            parent,
            started: Instant::now(),
        }),
    }
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    name: String,
    cat: &'static str,
    tid: u64,
    depth: u32,
    start_us: u64,
    trace_id: u64,
    parent: u64,
    started: Instant,
}

/// RAII guard returned by [`span`]; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl SpanGuard {
    /// The span's id while it is recording (`None` when tracing was off
    /// at open). Hand this to another thread as a [`TraceContext`]
    /// parent to hang that thread's spans under this one.
    pub fn id(&self) -> Option<u64> {
        self.open.as_ref().map(|o| o.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let dur_us = open.started.elapsed().as_micros() as u64;
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.depth = l.depth.saturating_sub(1);
            // Guards drop LIFO in well-formed code; tolerate stragglers
            // by removing this id wherever it sits in the open chain.
            if let Some(pos) = l.open_ids.iter().rposition(|&id| id == open.id) {
                l.open_ids.remove(pos);
            }
            l.events.push(SpanEvent {
                id: open.id,
                name: open.name,
                cat: open.cat,
                tid: open.tid,
                depth: open.depth,
                start_us: open.start_us,
                dur_us,
                trace_id: open.trace_id,
                parent: open.parent,
            });
            // Publish whenever the outermost span on this thread closes:
            // thread-local destructors may run after a scoped thread is
            // considered joined, so relying on `LocalBuf::drop` alone would
            // race `take_events` against worker exit.
            if l.depth == 0 {
                if let Ok(mut sink) = SINK.lock() {
                    sink.append(&mut l.events);
                }
            }
        });
    }
}

/// Flush the calling thread's buffered events into the global sink.
/// Threads flush automatically on exit; call this only to publish events
/// from a still-running thread (e.g. the main thread before export).
pub fn flush_thread() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if !l.events.is_empty() {
            let mut sink = SINK.lock().expect("span sink poisoned");
            sink.append(&mut l.events);
        }
    });
}

/// Flush the calling thread and drain every collected event, ordered by
/// `(start_us, tid, id)` so equal traces render identically regardless of
/// which worker flushed first.
pub fn take_events() -> Vec<SpanEvent> {
    flush_thread();
    let mut events = {
        let mut sink = SINK.lock().expect("span sink poisoned");
        std::mem::take(&mut *sink)
    };
    events.sort_by_key(|e| (e.start_us, e.tid, e.id));
    events
}

/// Discard all buffered events (this thread's and the sink's).
pub fn clear_events() {
    let _ = take_events();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state (the enable flag and sink), so
    // they run under one lock to stay independent of test threading.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(false);
        {
            let _s = span("t", "invisible");
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn nesting_depth_and_ids() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(true);
        {
            let _outer = span("t", "outer");
            let _inner = span_with("t", || format!("inner-{}", 1));
        }
        set_tracing(false);
        let events = take_events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner-1").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tid, inner.tid);
        assert_ne!(outer.id, inner.id);
        assert!(outer.dur_us >= inner.dur_us);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(true);
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    let _s = span_with("worker", || format!("job{i}"));
                });
            }
        });
        set_tracing(false);
        let events = take_events();
        assert_eq!(events.len(), 3, "every worker's span must survive exit");
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3, "each worker gets its own tid");
    }

    #[test]
    fn spans_nest_into_a_parent_chain() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(true);
        {
            let outer = span("t", "outer");
            let outer_id = outer.id().unwrap();
            let inner = span("t", "inner");
            assert_ne!(inner.id().unwrap(), outer_id);
            drop(inner);
            let sibling = span("t", "sibling");
            drop(sibling);
            drop(outer);
        }
        set_tracing(false);
        let events = take_events();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let sibling = events.iter().find(|e| e.name == "sibling").unwrap();
        assert_eq!(outer.parent, 0, "no ambient context: outer is a root");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id, "chain pops when a span closes");
        assert_eq!(outer.trace_id, 0);
    }

    #[test]
    fn trace_scope_carries_ids_across_threads() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(true);
        let root_id;
        {
            let _scope = trace_scope(TraceContext {
                trace_id: 0xfeed,
                parent: 0,
            });
            let root = span("t", "accept");
            root_id = root.id().unwrap();
            let handoff = TraceContext {
                trace_id: current_trace_context().trace_id,
                parent: root_id,
            };
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _scope = trace_scope(handoff);
                    let _work = span("t", "work");
                    let _nested = span("t", "nested");
                });
            });
        }
        set_tracing(false);
        let events = take_events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.trace_id == 0xfeed));
        let accept = events.iter().find(|e| e.name == "accept").unwrap();
        let work = events.iter().find(|e| e.name == "work").unwrap();
        let nested = events.iter().find(|e| e.name == "nested").unwrap();
        assert_ne!(accept.tid, work.tid, "the handoff crossed threads");
        assert_eq!(accept.parent, 0);
        assert_eq!(
            work.parent, root_id,
            "outermost worker span adopts the handoff parent"
        );
        assert_eq!(nested.parent, work.id);
    }

    #[test]
    fn scope_barrier_hides_preexisting_spans_from_parenting() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(true);
        {
            // A long-lived loop span (like an exec worker's job span).
            let _loop_span = span("t", "worker-loop");
            // A request handled inside the loop: its scope must parent
            // the request span to the handoff id, not the loop span.
            let _scope = trace_scope(TraceContext {
                trace_id: 3,
                parent: 0xabc,
            });
            let request = span("t", "request");
            let nested = span("t", "nested");
            drop(nested);
            drop(request);
        }
        set_tracing(false);
        let events = take_events();
        let request = events.iter().find(|e| e.name == "request").unwrap();
        let nested = events.iter().find(|e| e.name == "nested").unwrap();
        let loop_span = events.iter().find(|e| e.name == "worker-loop").unwrap();
        assert_eq!(request.parent, 0xabc, "barrier skips the loop span");
        assert_eq!(nested.parent, request.id, "in-scope spans chain normally");
        assert_eq!(request.trace_id, 3);
        assert_eq!(loop_span.trace_id, 0, "the loop span is outside the trace");
    }

    #[test]
    fn trace_scopes_nest_and_restore() {
        let _guard = TEST_LOCK.lock().unwrap();
        assert_eq!(current_trace_context(), TraceContext::default());
        {
            let _a = trace_scope(TraceContext {
                trace_id: 1,
                parent: 10,
            });
            assert_eq!(current_trace_context().trace_id, 1);
            {
                let _b = trace_scope(TraceContext {
                    trace_id: 2,
                    parent: 20,
                });
                assert_eq!(current_trace_context().trace_id, 2);
            }
            assert_eq!(current_trace_context().trace_id, 1);
        }
        assert_eq!(current_trace_context(), TraceContext::default());
    }

    #[test]
    fn guard_id_is_none_while_disabled() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(false);
        let s = span("t", "dark");
        assert_eq!(s.id(), None);
    }

    #[test]
    fn span_with_skips_closure_when_disabled() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(false);
        let mut ran = false;
        {
            let _s = span_with("t", || {
                ran = true;
                String::new()
            });
        }
        assert!(!ran, "name closure must not run while tracing is off");
    }
}
