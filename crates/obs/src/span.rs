//! The span tracer: RAII guards, thread-local buffers, deterministic span
//! ids, lossless cross-thread aggregation.
//!
//! Recording is gated on one process-global flag ([`set_tracing`]); a
//! disabled [`span`] costs a single relaxed atomic load and allocates
//! nothing. Each recording thread appends finished spans to a thread-local
//! buffer; the buffer drains into a global sink whenever the thread's
//! outermost span closes (with a thread-exit `Drop` as backstop), so
//! scoped pool workers never lose events, and [`take_events`] gathers
//! everything in a stable order.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Deterministic id: `thread_index << 32 | per-thread sequence`.
    pub id: u64,
    /// Span name (e.g. `hcg/compose`).
    pub name: String,
    /// Category (e.g. `pass`, `session`, `fleet`, `oracle`, `exec`).
    pub cat: &'static str,
    /// Recording thread's index (first-span order, not OS thread id).
    pub tid: u64,
    /// Nesting depth at open (0 = top level on its thread).
    pub depth: u32,
    /// Microseconds from the trace epoch to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Per-thread recording state. Buffered events publish to the global sink
/// whenever the thread's outermost span closes (see [`SpanGuard`]'s `Drop`),
/// so a pool worker's spans are visible before the pool joins it; the
/// `Drop` here is a backstop for events still buffered at thread exit.
struct LocalBuf {
    tid: u64,
    next_seq: u64,
    depth: u32,
    events: Vec<SpanEvent>,
}

impl LocalBuf {
    fn new() -> Self {
        LocalBuf {
            tid: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            next_seq: 0,
            depth: 0,
            events: Vec::new(),
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if !self.events.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                sink.append(&mut self.events);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// Turn span recording on or off process-wide. Off by default; flipping the
/// flag never changes what instrumented code computes, only whether spans
/// are buffered.
pub fn set_tracing(enabled: bool) {
    if enabled {
        epoch(); // pin the epoch no later than the first enable
    }
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Open a span; it closes (and records) when the returned guard drops.
/// When tracing is disabled this is a no-op costing one atomic load.
pub fn span(cat: &'static str, name: &str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { open: None };
    }
    open_span(cat, name.to_owned())
}

/// [`span`] with a lazily built name: the closure only runs (and only
/// allocates) when tracing is enabled — use for formatted span names on
/// hot paths.
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { open: None };
    }
    open_span(cat, name())
}

fn open_span(cat: &'static str, name: String) -> SpanGuard {
    let start_us = epoch().elapsed().as_micros() as u64;
    let (id, tid, depth) = LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let id = (l.tid << 32) | (l.next_seq & 0xffff_ffff);
        l.next_seq += 1;
        let depth = l.depth;
        l.depth += 1;
        (id, l.tid, depth)
    });
    SpanGuard {
        open: Some(OpenSpan {
            id,
            name,
            cat,
            tid,
            depth,
            start_us,
            started: Instant::now(),
        }),
    }
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    name: String,
    cat: &'static str,
    tid: u64,
    depth: u32,
    start_us: u64,
    started: Instant,
}

/// RAII guard returned by [`span`]; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let dur_us = open.started.elapsed().as_micros() as u64;
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.depth = l.depth.saturating_sub(1);
            l.events.push(SpanEvent {
                id: open.id,
                name: open.name,
                cat: open.cat,
                tid: open.tid,
                depth: open.depth,
                start_us: open.start_us,
                dur_us,
            });
            // Publish whenever the outermost span on this thread closes:
            // thread-local destructors may run after a scoped thread is
            // considered joined, so relying on `LocalBuf::drop` alone would
            // race `take_events` against worker exit.
            if l.depth == 0 {
                if let Ok(mut sink) = SINK.lock() {
                    sink.append(&mut l.events);
                }
            }
        });
    }
}

/// Flush the calling thread's buffered events into the global sink.
/// Threads flush automatically on exit; call this only to publish events
/// from a still-running thread (e.g. the main thread before export).
pub fn flush_thread() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if !l.events.is_empty() {
            let mut sink = SINK.lock().expect("span sink poisoned");
            sink.append(&mut l.events);
        }
    });
}

/// Flush the calling thread and drain every collected event, ordered by
/// `(start_us, tid, id)` so equal traces render identically regardless of
/// which worker flushed first.
pub fn take_events() -> Vec<SpanEvent> {
    flush_thread();
    let mut events = {
        let mut sink = SINK.lock().expect("span sink poisoned");
        std::mem::take(&mut *sink)
    };
    events.sort_by_key(|e| (e.start_us, e.tid, e.id));
    events
}

/// Discard all buffered events (this thread's and the sink's).
pub fn clear_events() {
    let _ = take_events();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state (the enable flag and sink), so
    // they run under one lock to stay independent of test threading.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(false);
        {
            let _s = span("t", "invisible");
        }
        assert!(take_events().is_empty());
    }

    #[test]
    fn nesting_depth_and_ids() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(true);
        {
            let _outer = span("t", "outer");
            let _inner = span_with("t", || format!("inner-{}", 1));
        }
        set_tracing(false);
        let events = take_events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner-1").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tid, inner.tid);
        assert_ne!(outer.id, inner.id);
        assert!(outer.dur_us >= inner.dur_us);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _guard = TEST_LOCK.lock().unwrap();
        clear_events();
        set_tracing(true);
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    let _s = span_with("worker", || format!("job{i}"));
                });
            }
        });
        set_tracing(false);
        let events = take_events();
        assert_eq!(events.len(), 3, "every worker's span must survive exit");
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3, "each worker gets its own tid");
    }

    #[test]
    fn span_with_skips_closure_when_disabled() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_tracing(false);
        let mut ran = false;
        {
            let _s = span_with("t", || {
                ran = true;
                String::new()
            });
        }
        assert!(!ran, "name closure must not run while tracing is off");
    }
}
