//! Minimal JSON helpers: string escaping for emitters and a recursive-
//! descent well-formedness validator so reports can be checked without a
//! JSON crate (the workspace is dependency-free by policy).

/// Escape a string for embedding inside a JSON string literal (quotes not
/// included). Control characters become `\u00XX`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Check that `s` is one well-formed JSON value (with optional surrounding
/// whitespace). Returns a byte offset and message on the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => {
                                    return Err(format!("bad \\u escape at byte {pos}"));
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}"));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("expected digits at byte {pos}"));
    }
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "null",
            "true",
            "0",
            "-12.5e3",
            "\"hi \\n \\u0041\"",
            "[]",
            "[1, 2, [3]]",
            "{}",
            "{\"a\": {\"b\": [1, \"x\", null]}, \"c\": false}",
            "  {\"spaced\": 1}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("rejected {ok:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{a: 1}",
            "01",
            "1.",
            "\"unterminated",
            "\"bad \\x escape\"",
            "true false",
            "{\"a\": 1,}",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let nasty = "quote \" slash \\ newline \n tab \t bell \u{7}";
        let j = format!("\"{}\"", escape(nasty));
        validate(&j).unwrap();
    }
}
