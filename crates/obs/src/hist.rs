//! Lock-minimal log-bucketed histograms.
//!
//! A [`Histogram`] spreads `u64` samples over 65 fixed power-of-two
//! buckets: bucket 0 holds exact zeros and bucket *i* (1 ≤ *i* ≤ 64)
//! holds values whose bit length is *i*, i.e. the range
//! `[2^(i-1), 2^i - 1]`. Recording is wait-free — one relaxed
//! `fetch_add` on the bucket plus one each on the count and sum — so the
//! serve hot path can record every request without a lock. Snapshots
//! ([`HistogramSnapshot`]) are plain data: mergeable, subtractable
//! (windowed views over a live histogram), quantile-estimating and
//! rendered as stable JSON.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// The bucket index for `value` (its bit length; 0 for an exact zero).
#[inline]
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (`0`, `1`, `3`, `7`, …,
/// `u64::MAX`).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The inclusive lower bound of bucket `i`.
#[inline]
fn bucket_lower(i: usize) -> u64 {
    if i <= 1 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A concurrent log-bucketed histogram of `u64` samples.
///
/// All methods take `&self`; every mutation is a relaxed atomic, so one
/// instance can be shared (e.g. behind an `Arc`) by every worker thread
/// of a server. Counts are monotonic; `sum` wraps on overflow (beyond
/// ~1.8e19 microseconds of accumulated latency, which no benchmark
/// reaches).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the array element by element.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample (three relaxed `fetch_add`s, no lock).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Fold every sample of `other` into `self` (bucket-wise add).
    pub fn merge(&self, other: &HistogramSnapshot) {
        for (i, &n) in other.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent recorders may land between the
    /// bucket reads, so a snapshot is consistent to within the samples in
    /// flight at the instant of the call — exact once recording stops.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        // Derive count/sum limits from the buckets where possible: read
        // count/sum after the buckets so `count >= Σ buckets` never holds
        // a windowed delta below zero.
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable point-in-time copy of a [`Histogram`] — the form that
/// merges into reports, subtracts into windowed views and renders as
/// JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_upper`] for bounds).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no sample is recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket holding the target sample. Exact for values that
    /// fall on bucket bounds; within one power of two otherwise. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the target sample, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lo = bucket_lower(i) as f64;
                let hi = bucket_upper(i) as f64;
                let within = (target - seen) as f64 / n as f64;
                return (lo + (hi - lo) * within) as u64;
            }
            seen += n;
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Bucket-wise `self + other`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Bucket-wise `self - earlier` (saturating): the samples recorded
    /// between two snapshots of the same live histogram.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
        }
    }

    /// Iterate `(inclusive upper bound, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
    }

    /// A stable JSON object: count, sum, mean, p50/p90/p99, and the
    /// non-empty buckets as `{"le": upper, "n": count}` records in
    /// ascending bound order.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .map(|(le, n)| format!("{{\"le\": {le}, \"n\": {n}}}"))
            .collect();
        format!(
            "{{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
            self.count,
            self.sum,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            buckets.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_ranges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            // Every bucket's bounds map back into the bucket.
            assert_eq!(bucket_of(bucket_upper(i)), i);
            if i > 0 {
                assert_eq!(bucket_of(bucket_lower(i).max(1)), i.max(1));
            }
        }
    }

    #[test]
    fn record_count_sum_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1000, 1000, 10_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 113_106);
        assert!(!s.is_empty());
        // p50 lands in the 513..=1023 bucket (the three 1000s start at
        // rank 6); interpolation keeps it within the bucket bounds.
        let p50 = s.quantile(0.5);
        assert!((64..=1023).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!((65_536..=131_071).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(0.0), 0);
        assert!(s.quantile(1.0) >= 65_536);
        assert!((s.mean() - 11_310.6).abs() < 0.1);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(
            s.to_json(),
            "{\"count\": 0, \"sum\": 0, \"mean\": 0.0, \"p50\": 0, \"p90\": 0, \"p99\": 0, \"buckets\": []}"
        );
        crate::json::validate(&s.to_json()).unwrap();
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let a = Histogram::new();
        for v in [5u64, 9, 17] {
            a.record(v);
        }
        let before = a.snapshot();
        for v in [33u64, 65] {
            a.record(v);
        }
        let after = a.snapshot();
        let window = after.delta(&before);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum, 98);
        let mut rebuilt = before.clone();
        rebuilt.merge(&window);
        assert_eq!(rebuilt, after);
        // Histogram::merge folds a snapshot back into a live histogram.
        let b = Histogram::new();
        b.merge(&after);
        assert_eq!(b.snapshot(), after);
        // Underflow saturates.
        assert_eq!(before.delta(&after).count, 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn json_is_stable_and_valid() {
        let h = Histogram::new();
        for v in [1u64, 1, 2, 900] {
            h.record(v);
        }
        let s = h.snapshot();
        let j = s.to_json();
        assert_eq!(j, h.snapshot().to_json());
        crate::json::validate(&j).unwrap();
        assert!(j.contains("\"le\": 1, \"n\": 2"));
        assert!(j.contains("\"le\": 1023, \"n\": 1"));
    }
}
