//! Prometheus text exposition (version 0.0.4) for [`MetricsSnapshot`].
//!
//! [`render_prometheus`] turns a snapshot into the plain-text scrape
//! format: one `# TYPE` line per family, counters and gauges as single
//! samples, histograms as cumulative `_bucket{le="…"}` series plus
//! `_sum`/`_count`. Metric names are sanitized to the Prometheus
//! alphabet (`[a-zA-Z0-9_:]`, non-leading digits) — `serve.cache.hits`
//! scrapes as `serve_cache_hits`.
//!
//! [`parse`] is the matching hand-rolled reader: it checks the grammar
//! line by line (types declared before samples, cumulative buckets
//! monotone, `+Inf` bucket equal to `_count`) so tests can prove the
//! server's scrape output is well-formed without an external Prometheus
//! binary.

use crate::hist::HistogramSnapshot;
use crate::metrics::{MetricValue, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Map a metric name into the Prometheus alphabet: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gains a `_`
/// prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render a gauge value the way Prometheus expects (`NaN`/`+Inf`/`-Inf`
/// spelled out; finite values via shortest round-trip formatting).
fn render_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (le, n) in h.nonzero_buckets() {
        cumulative += n;
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Render `snapshot` in the Prometheus text exposition format. Families
/// appear in sanitized-name order; equal snapshots render byte-identical
/// text. Distinct raw names that sanitize to the same family keep the
/// last one (sorted order), mirroring snapshot key semantics.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    // Re-key by sanitized name first so the `# TYPE` line and its
    // samples stay adjacent even when sanitization reorders names.
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (name, value) in snapshot.iter() {
        families.insert(
            sanitize_name(name),
            match value {
                MetricValue::Counter(c) => Family::Counter(c),
                MetricValue::Gauge(g) => Family::Gauge(g),
            },
        );
    }
    for (name, h) in snapshot.histograms() {
        families.insert(sanitize_name(name), Family::Histogram(Box::new(h.clone())));
    }
    let mut out = String::new();
    for (name, family) in &families {
        match family {
            Family::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {c}");
            }
            Family::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", render_float(*g));
            }
            Family::Histogram(h) => render_histogram(&mut out, name, h),
        }
    }
    out
}

// The histogram is boxed: a snapshot is ~530 bytes of fixed buckets,
// which would otherwise dominate the enum's footprint.
enum Family {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<HistogramSnapshot>),
}

/// One parsed sample line of an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name as written (`foo`, `foo_bucket`, `foo_sum`, …).
    pub name: String,
    /// `(label, value)` pairs, in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed exposition document: declared family types plus every
/// sample, in document order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// `family name → declared type` (`counter`, `gauge`, `histogram`).
    pub types: BTreeMap<String, String>,
    /// Every sample line.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The single value of a plain (label-free) sample named `name`.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// Cumulative `(le, count)` bucket samples of histogram `family`, in
    /// document order (`le` kept textual so `+Inf` survives).
    pub fn buckets(&self, family: &str) -> Vec<(String, f64)> {
        let bucket_name = format!("{family}_bucket");
        self.samples
            .iter()
            .filter(|s| s.name == bucket_name)
            .filter_map(|s| {
                s.labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, le)| (le.clone(), s.value))
            })
            .collect()
    }
}

/// A grammar or consistency violation found by [`parse`], with the
/// 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text (0 for document-level checks).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prometheus text line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(text: &str, line: usize) -> Result<f64, ParseError> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse()
            .map_err(|_| err(line, format!("bad sample value {other:?}"))),
    }
}

/// Parse labels from `{k="v", …}` (the slice between the braces).
fn parse_labels(text: &str, line: usize) -> Result<Vec<(String, String)>, ParseError> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| err(line, "label without '='"))?;
        let key = rest[..eq].trim();
        if !valid_name(key) {
            return Err(err(line, format!("bad label name {key:?}")));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(err(line, "label value is not quoted"));
        }
        // Scan the quoted value honoring backslash escapes.
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(i + 2);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err(err(line, "dangling escape in label value")),
                },
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| err(line, "unterminated label value"))?;
        labels.push((key.to_owned(), value));
        rest = rest[end..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(err(line, "expected ',' between labels"));
        }
    }
    Ok(labels)
}

/// The family a sample belongs to given the declared types: strips a
/// `_bucket`/`_sum`/`_count` suffix when the base name is a declared
/// histogram.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Parse and check a Prometheus text exposition document.
///
/// Enforced: sample lines are `name[{labels}] value`, names and label
/// names use the Prometheus alphabet, every sample's family has a
/// `# TYPE` line *before* it, declared histograms expose monotone
/// cumulative buckets ending in `le="+Inf"` whose count equals the
/// family's `_count` sample, and no family is declared twice.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse(text: &str) -> Result<Exposition, ParseError> {
    let mut doc = Exposition::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or_else(|| err(line, "TYPE without name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| err(line, "TYPE without a kind"))?;
                if !valid_name(name) {
                    return Err(err(line, format!("bad metric name {name:?}")));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err(line, format!("unknown TYPE kind {kind:?}")));
                }
                if doc.types.insert(name.to_owned(), kind.to_owned()).is_some() {
                    return Err(err(line, format!("family {name:?} declared twice")));
                }
            }
            // Other comments (# HELP, bare #) are ignored.
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, rest) = match trimmed.find('{') {
            Some(brace) => {
                let close = trimmed
                    .rfind('}')
                    .ok_or_else(|| err(line, "unterminated label set"))?;
                if close < brace {
                    return Err(err(line, "'}' before '{'"));
                }
                (&trimmed[..brace], &trimmed[brace..=close])
            }
            None => {
                let space = trimmed
                    .find(char::is_whitespace)
                    .ok_or_else(|| err(line, "sample without a value"))?;
                (&trimmed[..space], "")
            }
        };
        let name = name_part.trim();
        if !valid_name(name) {
            return Err(err(line, format!("bad sample name {name:?}")));
        }
        let (labels, value_text) = if rest.is_empty() {
            (Vec::new(), trimmed[name_part.len()..].trim())
        } else {
            let labels = parse_labels(&rest[1..rest.len() - 1], line)?;
            let after = &trimmed[name_part.len() + rest.len()..];
            (labels, after.trim())
        };
        if value_text.is_empty() {
            return Err(err(line, "sample without a value"));
        }
        // A trailing timestamp is legal in the format; reject it here —
        // this renderer never emits one, so one appearing is a bug.
        if value_text.split_whitespace().count() != 1 {
            return Err(err(line, "unexpected trailing token after value"));
        }
        let family = family_of(name, &doc.types);
        if !doc.types.contains_key(family) {
            return Err(err(
                line,
                format!("sample {name:?} has no preceding # TYPE line"),
            ));
        }
        doc.samples.push(Sample {
            name: name.to_owned(),
            labels,
            value: parse_value(value_text, line)?,
        });
    }
    // Document-level histogram consistency.
    for (family, kind) in &doc.types {
        if kind != "histogram" {
            continue;
        }
        let buckets = doc.buckets(family);
        if buckets.is_empty() {
            return Err(err(0, format!("histogram {family:?} has no buckets")));
        }
        let mut prev = f64::NEG_INFINITY;
        for (le, cumulative) in &buckets {
            if *cumulative < prev {
                return Err(err(
                    0,
                    format!("histogram {family:?} buckets are not cumulative at le={le}"),
                ));
            }
            prev = *cumulative;
        }
        let (last_le, last_n) = buckets.last().expect("non-empty");
        if last_le != "+Inf" {
            return Err(err(
                0,
                format!("histogram {family:?} does not end with le=\"+Inf\""),
            ));
        }
        let count = doc
            .value(&format!("{family}_count"))
            .ok_or_else(|| err(0, format!("histogram {family:?} lacks _count")))?;
        if doc.value(&format!("{family}_sum")).is_none() {
            return Err(err(0, format!("histogram {family:?} lacks _sum")));
        }
        if (count - last_n).abs() > f64::EPSILON {
            return Err(err(
                0,
                format!("histogram {family:?}: +Inf bucket {last_n} != _count {count}"),
            ));
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.set_counter("serve.requests", 42);
        s.set_gauge("serve.cache.bytes", 1024.5);
        let h = Histogram::new();
        for v in [3u64, 9, 9, 200] {
            h.record(v);
        }
        s.set_histogram("serve.latency_us", h.snapshot());
        s
    }

    #[test]
    fn names_sanitize_to_the_prometheus_alphabet() {
        assert_eq!(sanitize_name("serve.cache.hits"), "serve_cache_hits");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("0bad"), "_0bad");
        assert_eq!(sanitize_name("ok:name_1"), "ok:name_1");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn rendered_text_round_trips_through_the_parser() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 42\n"));
        assert!(text.contains("# TYPE serve_cache_bytes gauge\nserve_cache_bytes 1024.5\n"));
        assert!(text.contains("# TYPE serve_latency_us histogram\n"));
        let doc = parse(&text).expect("renderer output parses");
        assert_eq!(
            doc.types.get("serve_requests").map(String::as_str),
            Some("counter")
        );
        assert_eq!(doc.value("serve_requests"), Some(42.0));
        assert_eq!(doc.value("serve_latency_us_count"), Some(4.0));
        assert_eq!(doc.value("serve_latency_us_sum"), Some(221.0));
        let buckets = doc.buckets("serve_latency_us");
        // 3 → le=3 (1), 9,9 → le=15 (cum 3), 200 → le=255 (cum 4), +Inf.
        assert_eq!(
            buckets,
            vec![
                ("3".to_owned(), 1.0),
                ("15".to_owned(), 3.0),
                ("255".to_owned(), 4.0),
                ("+Inf".to_owned(), 4.0),
            ]
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_prometheus(&sample_snapshot());
        let b = render_prometheus(&sample_snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_snapshot_renders_and_parses_empty() {
        let text = render_prometheus(&MetricsSnapshot::new());
        assert_eq!(text, "");
        let doc = parse(&text).unwrap();
        assert!(doc.samples.is_empty());
    }

    #[test]
    fn non_finite_gauges_render_prometheus_spellings() {
        let mut s = MetricsSnapshot::new();
        s.set_gauge("nan", f64::NAN);
        s.set_gauge("inf", f64::INFINITY);
        let text = render_prometheus(&s);
        assert!(text.contains("nan NaN"));
        assert!(text.contains("inf +Inf"));
        parse(&text).unwrap();
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        // Sample before its TYPE line.
        assert!(parse("foo 1\n").is_err());
        // Bad name.
        assert!(parse("# TYPE 9foo counter\n").is_err());
        // Missing value.
        assert!(parse("# TYPE foo counter\nfoo\n").is_err());
        // Unterminated labels.
        assert!(parse("# TYPE foo counter\nfoo{a=\"b\" 1\n").is_err());
        // Duplicate family.
        assert!(parse("# TYPE foo counter\n# TYPE foo gauge\n").is_err());
        // Non-cumulative histogram buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(parse(bad).unwrap_err().message.contains("cumulative"));
        // +Inf bucket disagreeing with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(parse(bad).unwrap_err().message.contains("_count"));
        // Histogram without +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n";
        assert!(parse(bad).unwrap_err().message.contains("+Inf"));
    }

    #[test]
    fn parser_handles_escaped_label_values() {
        let text = "# TYPE foo counter\nfoo{path=\"a\\\"b\\n\"} 1\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.samples[0].labels[0].1, "a\"b\n");
    }
}
