//! Trace exporters: Chrome trace-event JSON (loadable in `chrome://tracing`
//! and Perfetto) and a compact indented text tree.

use crate::json::escape;
use crate::span::SpanEvent;

/// Render events as Chrome trace-event JSON: an object with a
/// `traceEvents` array of complete (`"ph": "X"`) events, timestamps and
/// durations in microseconds. Load the file in `chrome://tracing` or
/// [Perfetto](https://ui.perfetto.dev).
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"trace_id\": {}, \"parent\": {}}}}}",
            escape(&e.name),
            escape(e.cat),
            e.start_us,
            e.dur_us,
            e.tid,
            e.trace_id,
            e.parent
        ));
    }
    out.push_str("]}");
    out
}

/// Render events as an indented text tree, one block per thread, nested by
/// span depth — the terminal-friendly alternative to the JSON trace.
pub fn render_tree(events: &[SpanEvent]) -> String {
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut out = String::new();
    for tid in tids {
        out.push_str(&format!("thread {tid}\n"));
        let mut thread_events: Vec<&SpanEvent> = events.iter().filter(|e| e.tid == tid).collect();
        // Within a thread, ids are sequential in open order, which is the
        // natural tree order (parents open before their children).
        thread_events.sort_by_key(|e| e.id);
        for e in thread_events {
            let indent = "  ".repeat(e.depth as usize + 1);
            out.push_str(&format!(
                "{indent}{} [{}] {:.3} ms\n",
                e.name,
                e.cat,
                e.dur_us as f64 / 1000.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: u64, name: &str, tid: u64, depth: u32, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent {
            id,
            name: name.to_owned(),
            cat: "test",
            tid,
            depth,
            start_us,
            dur_us,
            trace_id: 7,
            parent: 0,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let events = vec![
            event(0, "outer \"quoted\"", 0, 0, 10, 100),
            event(1, "inner", 0, 1, 20, 30),
        ];
        let j = chrome_trace_json(&events);
        crate::json::validate(&j).expect("trace must be well-formed JSON");
        assert!(j.starts_with("{\"traceEvents\": ["));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"ts\": 10"));
        assert!(j.contains("\"dur\": 30"));
        assert!(j.contains("outer \\\"quoted\\\""));
        assert!(j.contains("\"trace_id\": 7"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let j = chrome_trace_json(&[]);
        crate::json::validate(&j).unwrap();
        assert_eq!(j, "{\"traceEvents\": []}");
    }

    #[test]
    fn tree_groups_by_thread_and_indents_by_depth() {
        let events = vec![
            event(0, "a", 0, 0, 0, 2000),
            event(1, "b", 0, 1, 5, 1000),
            event(1 << 32, "c", 1, 0, 7, 500),
        ];
        let t = render_tree(&events);
        assert!(t.contains("thread 0\n  a [test] 2.000 ms\n    b [test] 1.000 ms\n"));
        assert!(t.contains("thread 1\n  c [test] 0.500 ms\n"));
    }
}
