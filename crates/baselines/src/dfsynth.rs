//! The DFSynth-like baseline generator.

use hcg_core::conventional::emit_conventional;
use hcg_core::dispatch::Dispatch;
use hcg_core::pass::{dispatch_pass, Pass};
use hcg_core::{CodeGenerator, GenError, LoopStyle};
use hcg_kernels::CodeLibrary;
use hcg_model::{ActorKind, KindClass, PortRef};
use hcg_vm::Stmt;

/// DFSynth-like code generation: schedule-driven, well-structured scalar
/// loops ("cyclic computational codes") and generic functions for intensive
/// actors. No SIMD on any target.
#[derive(Debug, Default)]
pub struct DfSynthGen {
    lib: CodeLibrary,
}

impl DfSynthGen {
    /// A fresh generator.
    pub fn new() -> Self {
        DfSynthGen {
            lib: CodeLibrary::new(),
        }
    }
}

impl CodeGenerator for DfSynthGen {
    fn name(&self) -> &'static str {
        "dfsynth"
    }

    /// DFSynth's pipeline: `dispatch` → `lower` (generic kernels +
    /// well-structured scalar loops) → `compose`.
    fn passes(&self) -> Vec<Pass<'_>> {
        vec![
            dispatch_pass(),
            Pass::new("lower", move |p| {
                let dispatch = p.take_dispatch()?;
                let mut kernel_calls = 0u64;
                let ctx = p.building_mut()?;
                for idx in 0..ctx.schedule.order.len() {
                    let aid = ctx.schedule.order[idx];
                    let actor = ctx.model.actor(aid).clone();
                    match actor.kind {
                        ActorKind::Inport
                        | ActorKind::Outport
                        | ActorKind::Constant
                        | ActorKind::UnitDelay => continue,
                        _ => {}
                    }
                    ctx.set_origin(hcg_vm::Origin::actor(actor.name.clone()));
                    if actor.kind.class() == KindClass::Intensive {
                        // Always the generic implementation — DFSynth performs
                        // no input-scale pre-calculation.
                        let Dispatch::Intensive { .. } = dispatch[aid.0] else {
                            return Err(GenError::Internal(format!(
                                "intensive actor {} with non-float input",
                                actor.name
                            )));
                        };
                        let general = self.lib.general_for(actor.kind).ok_or_else(|| {
                            GenError::Internal(format!("no general kernel for {}", actor.kind))
                        })?;
                        let inputs = (0..actor.kind.input_count())
                            .map(|p| ctx.value_buffer(PortRef::new(aid, p)))
                            .collect::<Result<Vec<_>, _>>()?;
                        let output = ctx.actor_buffer(aid);
                        ctx.prog.body.push(Stmt::KernelCall {
                            actor: actor.kind,
                            impl_name: general.name.to_owned(),
                            inputs,
                            output,
                        });
                        kernel_calls += 1;
                    } else {
                        emit_conventional(ctx, &actor, LoopStyle::LOOPS)?;
                    }
                }
                p.counters.kernel_calls += kernel_calls;
                Ok(())
            }),
            Pass::new("compose", |p| p.finish()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_isa::Arch;
    use hcg_model::library;

    #[test]
    fn never_emits_simd() {
        let g = DfSynthGen::new();
        for m in library::paper_benchmarks() {
            for arch in Arch::ALL {
                let p = g.generate(&m, arch).unwrap();
                let s = p.stmt_stats();
                assert_eq!(s.vops, 0, "{} on {arch}", m.name);
                assert_eq!(s.vloads, 0);
            }
        }
    }

    #[test]
    fn uses_generic_kernels_only() {
        let g = DfSynthGen::new();
        let p = g
            .generate(&library::fft_model(1024), Arch::Neon128)
            .unwrap();
        let call = p
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::KernelCall { impl_name, .. } => Some(impl_name.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(call, "generic");
    }

    #[test]
    fn batch_code_is_loops_not_unrolled() {
        let g = DfSynthGen::new();
        let p = g.generate(&library::fig4_model(), Arch::Neon128).unwrap();
        let s = p.stmt_stats();
        assert!(s.loops >= 5, "one loop per batch actor, got {}", s.loops);
    }
}
