//! # hcg-baselines — the evaluation baselines of the HCG paper
//!
//! Two reference generators that share HCG's lowering substrate but none of
//! its SIMD synthesis:
//!
//! * [`SimulinkCoderGen`] — models the built-in Simulink Coder as §4
//!   describes it: expression-folded scalar code (small arrays unrolled),
//!   generic library functions for intensive actors, and — on Intel targets
//!   only — *scattered* per-actor SIMD: each batch actor loads its operands
//!   from memory, issues one vector instruction, and stores its result back,
//!   with no cross-actor fusion ("Some actors are not translated into
//!   composite SIMD instructions", §4.2) and no batch-actor identification
//!   across connections (§4.1's FIR example).
//! * [`DfSynthGen`] — models DFSynth (TCAD'21): well-structured scalar
//!   loops and generic intensive functions, never SIMD (§4.1).
//!
//! # Examples
//!
//! ```
//! use hcg_baselines::{DfSynthGen, SimulinkCoderGen};
//! use hcg_core::CodeGenerator;
//! use hcg_isa::Arch;
//! use hcg_model::library;
//!
//! # fn main() -> Result<(), hcg_core::GenError> {
//! let model = library::fir_model(1024, 4);
//! let coder = SimulinkCoderGen::new().generate(&model, Arch::Neon128)?;
//! let dfsynth = DfSynthGen::new().generate(&model, Arch::Neon128)?;
//! // Neither baseline vectorises on ARM.
//! assert_eq!(coder.stmt_stats().vops, 0);
//! assert_eq!(dfsynth.stmt_stats().vops, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod coder;
mod dfsynth;

pub use coder::SimulinkCoderGen;
pub use dfsynth::DfSynthGen;

/// All three generators of the paper's evaluation, boxed for sweeping.
pub fn all_generators() -> Vec<Box<dyn hcg_core::CodeGenerator>> {
    vec![
        Box::new(SimulinkCoderGen::new()),
        Box::new(DfSynthGen::new()),
        Box::new(hcg_core::HcgGen::new()),
    ]
}
