//! The Simulink-Coder-like baseline generator.

use hcg_core::conventional::emit_conventional;
use hcg_core::dispatch::Dispatch;
use hcg_core::pass::{dispatch_pass, Pass};
use hcg_core::{CodeGenerator, GenContext, GenError, LoopStyle};
use hcg_graph::{DfgInput, ValTree};
use hcg_isa::{sets, Arch, InstrSet};
use hcg_kernels::CodeLibrary;
use hcg_model::op::ElemOp;
use hcg_model::{Actor, ActorKind, KindClass, PortRef};
use hcg_vm::{IndexExpr, Stmt};

/// Simulink-Coder-like code generation: expression folding (small arrays
/// fully unrolled), output-variable reuse at the copy level, generic
/// intensive functions, and — on Intel targets only — scattered per-actor
/// SIMD with no cross-actor fusion (paper §4.1/§4.2).
#[derive(Debug, Default)]
pub struct SimulinkCoderGen {
    lib: CodeLibrary,
}

impl SimulinkCoderGen {
    /// A fresh generator.
    pub fn new() -> Self {
        SimulinkCoderGen {
            lib: CodeLibrary::new(),
        }
    }

    /// Coder only emits vector intrinsics for Intel targets; on ARM it
    /// "usually fails to identify batch computing actors" (§4.1, the FIR
    /// example) — modelled as: no NEON emission at all.
    fn scattered_simd_set(arch: Arch) -> Option<&'static InstrSet> {
        match arch {
            Arch::Neon128 => None,
            // Borrow the process-wide parse instead of re-parsing the .isa
            // text every time a Coder baseline is constructed per fleet job
            // or service request.
            Arch::Sse128 | Arch::Avx256 => Some(sets::builtin_indexed(arch).0),
        }
    }

    /// Emit one batch actor as scattered SIMD: load operands from memory,
    /// one single-op vector instruction, store the result back. Falls back
    /// to conventional translation when the op has no vector instruction.
    fn emit_scattered(
        &self,
        ctx: &mut GenContext<'_>,
        actor: &Actor,
        op: ElemOp,
        len: usize,
        set: &InstrSet,
    ) -> Result<bool, GenError> {
        let dtype = ctx.types.output(actor.id, 0).dtype;
        let lanes = ctx.prog.arch.lanes(dtype);
        if len / lanes < 1 {
            return Ok(false);
        }
        // A single-op probe tree with distinct operands.
        let probe = ValTree::Op {
            op,
            args: (0..op.arity())
                .map(|i| ValTree::Leaf(DfgInput::External(i)))
                .collect(),
        };
        let Some((instr, matched)) =
            hcg_graph::matching::find_instruction(set, dtype, lanes, &probe)
        else {
            return Ok(false);
        };

        let offset = len % lanes;
        // Scalar remainder first (same structure as HCG's, per element).
        let srcs_bufs = (0..actor.kind.input_count())
            .map(|p| ctx.value_buffer(PortRef::new(actor.id, p)))
            .collect::<Result<Vec<_>, _>>()?;
        let dst_buf = ctx.actor_buffer(actor.id);
        for i in 0..offset {
            ctx.prog.body.push(Stmt::Scalar {
                op: hcg_vm::ScalarOp::Elem(op),
                dst: hcg_vm::ElemRef {
                    buf: dst_buf,
                    index: IndexExpr::Const(i),
                },
                srcs: srcs_bufs
                    .iter()
                    .map(|&buf| hcg_vm::ElemRef {
                        buf,
                        index: IndexExpr::Const(i),
                    })
                    .collect(),
            });
        }

        let looped = len / lanes >= 2;
        let index = if looped {
            IndexExpr::Loop(0)
        } else {
            IndexExpr::Const(offset)
        };
        let mut body = Vec::new();
        let mut regs = Vec::new();
        for (p, &buf) in srcs_bufs.iter().enumerate() {
            let reg = ctx.prog.add_named_reg(
                dtype,
                lanes,
                format!("{}_in{}", hcg_core::generator::sanitize(&actor.name), p),
            );
            body.push(Stmt::VLoad { reg, buf, index });
            regs.push(reg);
        }
        let dst = ctx.prog.add_named_reg(
            dtype,
            lanes,
            format!("{}_v", hcg_core::generator::sanitize(&actor.name)),
        );
        // Scattered emission binds operands in probe order: External(i) is
        // operand i.
        let srcs: Vec<_> = matched
            .bindings
            .iter()
            .map(|b| match b {
                DfgInput::External(e) => regs[*e],
                DfgInput::Node(_) => unreachable!("probe tree has no node leaves"),
            })
            .collect();
        let src_names: Vec<String> = srcs
            .iter()
            .map(|r| ctx.prog.reg_names[r.0].clone())
            .collect();
        let code = instr.render(
            &src_names,
            &ctx.prog.reg_names[dst.0].clone(),
            matched.shift_amount,
        );
        body.push(Stmt::VOp {
            instr: instr.name.clone(),
            pattern: hcg_core::batch::concretize(&instr.pattern, matched.shift_amount),
            cost: instr.cost,
            dst,
            srcs,
            code,
        });
        // Always back to memory — the defining difference from HCG: the
        // next actor reloads from memory instead of reusing the register.
        body.push(Stmt::VStore {
            buf: dst_buf,
            index,
            reg: dst,
        });
        if looped {
            ctx.prog.body.push(Stmt::Loop {
                start: offset,
                end: len,
                step: lanes,
                body,
            });
        } else {
            ctx.prog.body.extend(body);
        }
        Ok(true)
    }
}

impl CodeGenerator for SimulinkCoderGen {
    fn name(&self) -> &'static str {
        "simulink-coder"
    }

    /// Coder's pipeline: `dispatch` → `lower` (per-actor translation with
    /// scattered SIMD on Intel) → `compose` (outport copies + delay
    /// latches) → `fold` (adjacent-loop expression folding).
    fn passes(&self) -> Vec<Pass<'_>> {
        vec![
            dispatch_pass(),
            Pass::new("lower", move |p| {
                let dispatch = p.take_dispatch()?;
                let simd = Self::scattered_simd_set(p.arch());
                let mut kernel_calls = 0u64;
                let ctx = p.building_mut()?;
                for idx in 0..ctx.schedule.order.len() {
                    let aid = ctx.schedule.order[idx];
                    let actor = ctx.model.actor(aid).clone();
                    match actor.kind {
                        ActorKind::Inport
                        | ActorKind::Outport
                        | ActorKind::Constant
                        | ActorKind::UnitDelay => continue,
                        _ => {}
                    }
                    ctx.set_origin(hcg_vm::Origin::actor(actor.name.clone()));
                    if actor.kind.class() == KindClass::Intensive {
                        let general = self.lib.general_for(actor.kind).ok_or_else(|| {
                            GenError::Internal(format!("no general kernel for {}", actor.kind))
                        })?;
                        let inputs = (0..actor.kind.input_count())
                            .map(|p| ctx.value_buffer(PortRef::new(aid, p)))
                            .collect::<Result<Vec<_>, _>>()?;
                        let output = ctx.actor_buffer(aid);
                        ctx.prog.body.push(Stmt::KernelCall {
                            actor: actor.kind,
                            impl_name: general.name.to_owned(),
                            inputs,
                            output,
                        });
                        kernel_calls += 1;
                        continue;
                    }
                    // Scattered SIMD on Intel for batch-dispatched actors.
                    if let (Some(set), Dispatch::Batch { op, len }) =
                        (&simd, dispatch[aid.0].clone())
                    {
                        if self.emit_scattered(ctx, &actor, op, len, set)? {
                            continue;
                        }
                    }
                    emit_conventional(ctx, &actor, LoopStyle::CODER)?;
                }
                p.counters.kernel_calls += kernel_calls;
                Ok(())
            }),
            Pass::new("compose", |p| p.finish()),
            Pass::new("fold", |p| {
                let prog = p.program_mut()?;
                let (body, origins) = fold_adjacent_loops(
                    std::mem::take(&mut prog.body),
                    std::mem::take(&mut prog.origins),
                );
                prog.body = body;
                prog.origins = origins;
                Ok(())
            }),
        ]
    }
}

/// Expression folding at loop granularity: adjacent element loops with the
/// same bounds and pure element-wise bodies are merged into one loop.
/// Safe because every scalar statement reads/writes only element `i` (plus
/// whole buffers written before the pair), so interleaving per element
/// preserves dataflow order.
///
/// The origin table (when present) folds in lockstep: a merged loop keeps
/// the first loop's origin, so attribution stays parallel to the body.
fn fold_adjacent_loops(
    body: Vec<Stmt>,
    mut origins: Vec<hcg_vm::Origin>,
) -> (Vec<Stmt>, Vec<hcg_vm::Origin>) {
    let tracked = !origins.is_empty();
    if tracked {
        origins.resize(body.len(), hcg_vm::Origin::default());
    } else {
        origins = vec![hcg_vm::Origin::default(); body.len()];
    }
    let mut out: Vec<Stmt> = Vec::with_capacity(body.len());
    let mut out_origins: Vec<hcg_vm::Origin> = Vec::with_capacity(body.len());
    for (stmt, origin) in body.into_iter().zip(origins) {
        let mergeable = matches!(
            (&stmt, out.last()),
            (
                Stmt::Loop { start: s2, end: e2, step: t2, body: b2 },
                Some(Stmt::Loop { start: s1, end: e1, step: t1, body: b1 }),
            ) if s1 == s2
                && e1 == e2
                && t1 == t2
                && b1.iter().all(|s| matches!(s, Stmt::Scalar { .. }))
                && b2.iter().all(|s| matches!(s, Stmt::Scalar { .. }))
        );
        if mergeable {
            let Stmt::Loop { body: b2, .. } = stmt else {
                unreachable!("checked above");
            };
            let Some(Stmt::Loop { body: b1, .. }) = out.last_mut() else {
                unreachable!("checked above");
            };
            b1.extend(b2);
        } else {
            out.push(stmt);
            out_origins.push(origin);
        }
    }
    if !tracked {
        out_origins.clear();
    }
    (out, out_origins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::library;

    #[test]
    fn arm_gets_no_simd_intel_gets_scattered() {
        let g = SimulinkCoderGen::new();
        let m = library::fir_model(1024, 4);
        let arm = g.generate(&m, Arch::Neon128).unwrap();
        assert_eq!(arm.stmt_stats().vops, 0);
        let intel = g.generate(&m, Arch::Avx256).unwrap();
        let s = intel.stmt_stats();
        assert!(s.vops > 0);
        // Scattered: every vop pairs with its own store (no fusion).
        assert_eq!(s.vops, s.vstores);
        assert!(s.vloads >= s.vops, "every operand reloaded from memory");
    }

    #[test]
    fn small_arrays_unrolled_like_figure2() {
        let g = SimulinkCoderGen::new();
        let p = g.generate(&library::fig2_model(), Arch::Neon128).unwrap();
        let s = p.stmt_stats();
        // 4-wide model: Coder unrolls — no loops, 12 scalar statements
        // (4 muls, 4 adds, 4 reciprocals, per the paper's Figure 2 text).
        assert_eq!(s.loops, 0);
        assert_eq!(s.scalar_ops, 12);
    }

    #[test]
    fn generic_kernels_for_intensive() {
        let g = SimulinkCoderGen::new();
        let p = g
            .generate(&library::dct_model(1024), Arch::Neon128)
            .unwrap();
        let call = p
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::KernelCall { impl_name, .. } => Some(impl_name.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(call, "generic");
    }

    #[test]
    fn all_benchmarks_generate_on_all_archs() {
        let g = SimulinkCoderGen::new();
        for m in library::paper_benchmarks() {
            for arch in Arch::ALL {
                g.generate(&m, arch)
                    .unwrap_or_else(|e| panic!("{} on {arch}: {e}", m.name));
            }
        }
    }
}
