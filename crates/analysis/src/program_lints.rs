//! Generated-program lints: every structural defect the VM validator knows
//! (rehosted as diagnostics), plus dataflow analyses the validator does not
//! attempt — def-use on buffers and registers, dead stores, kernel-call
//! aliasing, and per-arch lane-width checks.

use crate::diagnostics::{LintCode, LintReport, Location};
use hcg_kernels::CodeLibrary;
use hcg_vm::{validate_all, BufferKind, DefectKind, Program, Stmt};

/// Run every program lint and collect the findings.
pub fn lint_program(prog: &Program, lib: &CodeLibrary) -> LintReport {
    let mut r = LintReport::new(format!("{} [{} {}]", prog.name, prog.generator, prog.arch));
    for d in validate_all(prog, lib) {
        r.push(
            defect_code(d.kind),
            Location::Stmt {
                path: d.stmt_path.clone(),
            },
            d.message,
        );
    }
    lint_register_widths(prog, &mut r);
    lint_dataflow(prog, &mut r);
    r
}

/// Lint a program that may still be mid-pipeline (the inter-pass hook of the
/// staged generator pipeline).
///
/// A program between passes is a valid *prefix* of the final one: outport
/// copies and delay latches are missing, so stores feeding them look dead.
/// With `complete: false` the incompleteness artifacts
/// ([`LintCode::DeadStore`], [`LintCode::NeverReadBuffer`]) are filtered out;
/// every structural error still surfaces — a malformed statement is a
/// generator bug no matter which stage emitted it. With `complete: true`
/// this is exactly [`lint_program`].
pub fn lint_stage(prog: &Program, lib: &CodeLibrary, complete: bool) -> LintReport {
    let mut r = lint_program(prog, lib);
    if !complete {
        r.diagnostics
            .retain(|d| !matches!(d.code, LintCode::DeadStore | LintCode::NeverReadBuffer));
    }
    r
}

/// The lint code for a structural defect from `hcg_vm::validate_all`.
const fn defect_code(kind: DefectKind) -> LintCode {
    match kind {
        DefectKind::BufferOutOfRange => LintCode::BufferOutOfRange,
        DefectKind::RegisterOutOfRange => LintCode::RegisterOutOfRange,
        DefectKind::ElementOutOfBounds => LintCode::ElementOutOfBounds,
        DefectKind::VectorOutOfBounds => LintCode::VectorOutOfBounds,
        DefectKind::ScalarArity => LintCode::ScalarArity,
        DefectKind::DtypeUnsupported => LintCode::DtypeUnsupported,
        DefectKind::VOpOperandCount => LintCode::VOpOperandCount,
        DefectKind::VOpShapeMismatch => LintCode::VOpShapeMismatch,
        DefectKind::VRegDtypeMismatch => LintCode::VRegDtypeMismatch,
        DefectKind::UnknownKernel => LintCode::UnknownKernel,
        DefectKind::NestedLoop => LintCode::NestedLoop,
        DefectKind::ZeroStepLoop => LintCode::ZeroStepLoop,
        DefectKind::CopyLengthMismatch => LintCode::CopyLengthMismatch,
        DefectKind::CopyDtypeMismatch => LintCode::CopyDtypeMismatch,
    }
}

/// A register must fit the target's vector registers: `lanes × bit-width`
/// may not exceed `Arch::vector_bits`.
fn lint_register_widths(prog: &Program, r: &mut LintReport) {
    let arch_bits = prog.arch.vector_bits() as usize;
    for (i, &(dtype, lanes)) in prog.reg_types.iter().enumerate() {
        let bits = lanes * dtype.bit_width() as usize;
        if bits > arch_bits {
            r.push(
                LintCode::LaneWidthExceedsArch,
                Location::Register { index: i },
                format!(
                    "{lanes} lanes of {dtype} need {bits} bits but {} registers are {arch_bits}-bit",
                    prog.arch
                ),
            );
        }
    }
}

/// One buffer access recorded in execution order.
struct Access {
    seq: usize,
    write: bool,
    /// Index of the enclosing top-level loop statement, when inside one.
    region: Option<usize>,
    /// Which part of the buffer the access touches.
    key: AccessKey,
    path: Vec<usize>,
}

/// Granularity of a buffer access, for overwrite reasoning. A later write
/// kills an earlier one only when it *covers* it: writing element 1 does
/// not overwrite element 0, but a loop-indexed or whole-buffer write does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKey {
    /// Whole buffer (Copy, kernel output) or a loop-swept index.
    Whole,
    /// One scalar element at a constant index.
    Elem(usize),
    /// One vector-register slice starting at a constant index.
    Slice(usize),
}

impl AccessKey {
    fn covers(self, earlier: AccessKey) -> bool {
        self == AccessKey::Whole || self == earlier
    }
}

fn elem_key(index: &hcg_vm::IndexExpr) -> AccessKey {
    match index {
        hcg_vm::IndexExpr::Const(k) => AccessKey::Elem(*k),
        hcg_vm::IndexExpr::Loop(_) => AccessKey::Whole,
    }
}

fn slice_key(index: &hcg_vm::IndexExpr) -> AccessKey {
    match index {
        hcg_vm::IndexExpr::Const(k) => AccessKey::Slice(*k),
        hcg_vm::IndexExpr::Loop(_) => AccessKey::Whole,
    }
}

/// Linear def-use walk over the program body. Loop bodies are walked once in
/// order — correct for read-before-write (the first iteration runs in that
/// order) while dead-store detection gets a loop-carry exemption.
fn lint_dataflow(prog: &Program, r: &mut LintReport) {
    let mut flow = Flow::new(prog);
    for (i, s) in prog.body.iter().enumerate() {
        flow.walk(s, &[i], None, r);
    }
    lint_stores(prog, r, &flow.accesses);
}

/// Mutable state for the def-use walk.
struct Flow<'p> {
    prog: &'p Program,
    seq: usize,
    initialized: Vec<bool>,
    rbw_reported: Vec<bool>,
    reg_defined: Vec<bool>,
    reg_reported: Vec<bool>,
    accesses: Vec<Vec<Access>>,
}

impl<'p> Flow<'p> {
    fn new(prog: &'p Program) -> Self {
        let nbuf = prog.buffers.len();
        Flow {
            prog,
            seq: 0,
            initialized: prog
                .buffers
                .iter()
                .map(|b| {
                    matches!(
                        b.kind,
                        BufferKind::Input | BufferKind::State | BufferKind::Const
                    )
                })
                .collect(),
            rbw_reported: vec![false; nbuf],
            reg_defined: vec![false; prog.reg_count],
            reg_reported: vec![false; prog.reg_count],
            accesses: (0..nbuf).map(|_| Vec::new()).collect(),
        }
    }

    fn read_buf(
        &mut self,
        buf: usize,
        key: AccessKey,
        path: &[usize],
        region: Option<usize>,
        r: &mut LintReport,
    ) {
        if buf >= self.prog.buffers.len() {
            return; // structural defect already reported
        }
        if !self.initialized[buf] && !self.rbw_reported[buf] {
            self.rbw_reported[buf] = true;
            r.push(
                LintCode::ReadBeforeWrite,
                Location::Stmt {
                    path: path.to_vec(),
                },
                format!(
                    "{:?} buffer {:?} is read before anything writes it",
                    self.prog.buffers[buf].kind, self.prog.buffers[buf].name
                ),
            );
        }
        self.accesses[buf].push(Access {
            seq: self.seq,
            write: false,
            region,
            key,
            path: path.to_vec(),
        });
        self.seq += 1;
    }

    fn write_buf(
        &mut self,
        buf: usize,
        key: AccessKey,
        path: &[usize],
        region: Option<usize>,
        r: &mut LintReport,
    ) {
        if buf >= self.prog.buffers.len() {
            return;
        }
        if self.prog.buffers[buf].kind == BufferKind::Const {
            r.push(
                LintCode::WriteToConst,
                Location::Stmt {
                    path: path.to_vec(),
                },
                format!("write to constant buffer {:?}", self.prog.buffers[buf].name),
            );
        }
        self.initialized[buf] = true;
        self.accesses[buf].push(Access {
            seq: self.seq,
            write: true,
            region,
            key,
            path: path.to_vec(),
        });
        self.seq += 1;
    }

    fn use_reg(&mut self, reg: usize, path: &[usize], r: &mut LintReport) {
        if reg < self.reg_defined.len() && !self.reg_defined[reg] && !self.reg_reported[reg] {
            self.reg_reported[reg] = true;
            r.push(
                LintCode::UninitializedRegister,
                Location::Stmt {
                    path: path.to_vec(),
                },
                format!(
                    "register {} is used before any load or op defines it",
                    self.prog
                        .reg_names
                        .get(reg)
                        .map(String::as_str)
                        .unwrap_or("?")
                ),
            );
        }
    }

    /// Walk one statement; `region` is Some(top-level index) inside a loop.
    fn walk(&mut self, s: &Stmt, path: &[usize], region: Option<usize>, r: &mut LintReport) {
        match s {
            Stmt::Loop { body, .. } => {
                let region = region.or_else(|| path.first().copied());
                for (i, inner) in body.iter().enumerate() {
                    let mut p = path.to_vec();
                    p.push(i);
                    self.walk(inner, &p, region, r);
                }
            }
            Stmt::Scalar { dst, srcs, .. } => {
                for src in srcs {
                    self.read_buf(src.buf.0, elem_key(&src.index), path, region, r);
                }
                self.write_buf(dst.buf.0, elem_key(&dst.index), path, region, r);
            }
            Stmt::VLoad { reg, buf, index } => {
                self.read_buf(buf.0, slice_key(index), path, region, r);
                if reg.0 < self.reg_defined.len() {
                    self.reg_defined[reg.0] = true;
                }
            }
            Stmt::VStore { buf, reg, index } => {
                self.use_reg(reg.0, path, r);
                self.write_buf(buf.0, slice_key(index), path, region, r);
            }
            Stmt::VOp { dst, srcs, .. } => {
                for s in srcs {
                    self.use_reg(s.0, path, r);
                }
                if dst.0 < self.reg_defined.len() {
                    self.reg_defined[dst.0] = true;
                }
            }
            Stmt::KernelCall { inputs, output, .. } => {
                if inputs.contains(output) {
                    let name = self
                        .prog
                        .buffers
                        .get(output.0)
                        .map(|b| b.name.as_str())
                        .unwrap_or("?");
                    r.push(
                        LintCode::KernelAliasing,
                        Location::Stmt {
                            path: path.to_vec(),
                        },
                        format!("kernel call output buffer {name:?} is also an input"),
                    );
                }
                for b in inputs {
                    self.read_buf(b.0, AccessKey::Whole, path, region, r);
                }
                self.write_buf(output.0, AccessKey::Whole, path, region, r);
            }
            Stmt::Copy { dst, src } => {
                self.read_buf(src.0, AccessKey::Whole, path, region, r);
                self.write_buf(dst.0, AccessKey::Whole, path, region, r);
            }
        }
    }
}

/// Dead stores and never-read buffers, from the recorded access lists.
fn lint_stores(prog: &Program, r: &mut LintReport, accesses: &[Vec<Access>]) {
    for (i, evs) in accesses.iter().enumerate() {
        let decl = &prog.buffers[i];
        let relevant = matches!(decl.kind, BufferKind::Temp | BufferKind::Output);
        if !relevant {
            continue;
        }
        let any_read = evs.iter().any(|e| !e.write);
        if decl.kind == BufferKind::Temp && !any_read {
            r.push(
                LintCode::NeverReadBuffer,
                Location::Buffer {
                    name: decl.name.clone(),
                },
                if evs.is_empty() {
                    "temp buffer is declared but never accessed".to_owned()
                } else {
                    "temp buffer is written but never read".to_owned()
                },
            );
            continue; // every write is trivially dead; one finding is enough
        }
        let writes: Vec<&Access> = evs.iter().filter(|e| e.write).collect();
        for w in &writes {
            // Only a *covering* later write kills this one: a store to
            // element 1 does not overwrite a store to element 0.
            let next_write_seq = writes
                .iter()
                .filter(|n| n.seq > w.seq && n.key.covers(w.key))
                .map(|n| n.seq)
                .min()
                .unwrap_or(usize::MAX);
            // A never-overwritten store survives to the end of the step:
            // the caller observes Outputs, and a Temp with any read at all
            // may be consumed by it.
            if next_write_seq == usize::MAX {
                continue;
            }
            let observed = evs.iter().any(|e| {
                !e.write
                    && ((e.seq > w.seq && e.seq < next_write_seq)
                        // Loop carry: a read anywhere in the same loop sees
                        // this write on the next iteration.
                        || (w.region.is_some() && e.region == w.region))
            });
            if !observed {
                r.push(
                    LintCode::DeadStore,
                    Location::Stmt {
                        path: w.path.clone(),
                    },
                    format!(
                        "store to {:?} is overwritten before anything reads it",
                        decl.name
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_isa::Arch;
    use hcg_model::op::ElemOp;
    use hcg_model::{DataType, SignalType};
    use hcg_vm::{BufferId, ElemRef, IndexExpr, ScalarOp};

    fn ty8() -> SignalType {
        SignalType::vector(DataType::I32, 8)
    }

    fn abs_loop(dst: BufferId, src: BufferId) -> Stmt {
        Stmt::Loop {
            start: 0,
            end: 8,
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Abs),
                dst: ElemRef {
                    buf: dst,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![ElemRef {
                    buf: src,
                    index: IndexExpr::Loop(0),
                }],
            }],
        }
    }

    #[test]
    fn clean_program_has_no_findings() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty8(), BufferKind::Input, None);
        let t = p.add_buffer("t", ty8(), BufferKind::Temp, None);
        let o = p.add_buffer("o", ty8(), BufferKind::Output, None);
        p.body.push(abs_loop(t, a));
        p.body.push(abs_loop(o, t));
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.diagnostics.is_empty(), "unexpected: {}", r.render());
    }

    #[test]
    fn structural_defects_become_diagnostics() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty8(), BufferKind::Input, None);
        let reg = p.add_reg(DataType::F32, 4); // dtype mismatch vs i32 buffer
        p.body.push(Stmt::VLoad {
            reg,
            buf: a,
            index: IndexExpr::Const(0),
        });
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.has(LintCode::VRegDtypeMismatch), "got: {}", r.render());
    }

    #[test]
    fn read_before_write() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let t = p.add_buffer("t", ty8(), BufferKind::Temp, None);
        let o = p.add_buffer("o", ty8(), BufferKind::Output, None);
        p.body.push(abs_loop(o, t)); // t never written
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.has(LintCode::ReadBeforeWrite), "got: {}", r.render());
    }

    #[test]
    fn uninitialized_register() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let o = p.add_buffer("o", ty8(), BufferKind::Output, None);
        let reg = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::VStore {
            buf: o,
            index: IndexExpr::Const(0),
            reg,
        });
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(
            r.has(LintCode::UninitializedRegister),
            "got: {}",
            r.render()
        );
    }

    #[test]
    fn dead_store_detected() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty8(), BufferKind::Input, None);
        let t = p.add_buffer("t", ty8(), BufferKind::Temp, None);
        let o = p.add_buffer("o", ty8(), BufferKind::Output, None);
        p.body.push(abs_loop(t, a)); // store to t…
        p.body.push(abs_loop(t, a)); // …overwritten unread
        p.body.push(abs_loop(o, t));
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.has(LintCode::DeadStore), "got: {}", r.render());
        assert!(!r.has(LintCode::NeverReadBuffer));
    }

    #[test]
    fn unrolled_stores_to_distinct_elements_are_not_dead() {
        // Unrolled code writes t[0], t[1], t[2], t[3] then reads them all —
        // element stores at different indices must not count as overwrites.
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer(
            "a",
            SignalType::vector(DataType::I32, 4),
            BufferKind::Input,
            None,
        );
        let t = p.add_buffer(
            "t",
            SignalType::vector(DataType::I32, 4),
            BufferKind::Temp,
            None,
        );
        let o = p.add_buffer(
            "o",
            SignalType::vector(DataType::I32, 4),
            BufferKind::Output,
            None,
        );
        for i in 0..4 {
            p.body.push(Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Abs),
                dst: ElemRef {
                    buf: t,
                    index: IndexExpr::Const(i),
                },
                srcs: vec![ElemRef {
                    buf: a,
                    index: IndexExpr::Const(i),
                }],
            });
        }
        for i in 0..4 {
            p.body.push(Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Abs),
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Const(i),
                },
                srcs: vec![ElemRef {
                    buf: t,
                    index: IndexExpr::Const(i),
                }],
            });
        }
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(!r.has(LintCode::DeadStore), "got: {}", r.render());

        // But writing the SAME element twice with no read in between is dead.
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer(
            "a",
            SignalType::vector(DataType::I32, 4),
            BufferKind::Input,
            None,
        );
        let t = p.add_buffer(
            "t",
            SignalType::vector(DataType::I32, 4),
            BufferKind::Temp,
            None,
        );
        let o = p.add_buffer(
            "o",
            SignalType::vector(DataType::I32, 4),
            BufferKind::Output,
            None,
        );
        for _ in 0..2 {
            p.body.push(Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Abs),
                dst: ElemRef {
                    buf: t,
                    index: IndexExpr::Const(0),
                },
                srcs: vec![ElemRef {
                    buf: a,
                    index: IndexExpr::Const(0),
                }],
            });
        }
        p.body.push(Stmt::Scalar {
            op: ScalarOp::Elem(ElemOp::Abs),
            dst: ElemRef {
                buf: o,
                index: IndexExpr::Const(0),
            },
            srcs: vec![ElemRef {
                buf: t,
                index: IndexExpr::Const(0),
            }],
        });
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.has(LintCode::DeadStore), "got: {}", r.render());
    }

    #[test]
    fn loop_carried_store_is_not_dead() {
        // Inside one loop: read t[i] then write t[i] — the write feeds the
        // next iteration, so it must not be flagged.
        let mut p = Program::new("t", "test", Arch::Neon128);
        let t = p.add_buffer("t", ty8(), BufferKind::Temp, None);
        let o = p.add_buffer("o", ty8(), BufferKind::Output, None);
        p.body.push(abs_loop(t, t)); // t reads AND writes t in the same loop
        p.body.push(abs_loop(o, t));
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(!r.has(LintCode::DeadStore), "got: {}", r.render());
    }

    #[test]
    fn never_read_buffer() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty8(), BufferKind::Input, None);
        let t = p.add_buffer("scratch", ty8(), BufferKind::Temp, None);
        let o = p.add_buffer("o", ty8(), BufferKind::Output, None);
        p.body.push(abs_loop(t, a)); // written, never read
        p.body.push(abs_loop(o, a));
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.has(LintCode::NeverReadBuffer), "got: {}", r.render());
        assert!(!r.has(LintCode::DeadStore)); // folded into never-read
    }

    #[test]
    fn kernel_aliasing() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer(
            "a",
            SignalType::vector(DataType::F32, 8),
            BufferKind::Temp,
            None,
        );
        p.body.push(Stmt::KernelCall {
            actor: hcg_model::ActorKind::Fft,
            impl_name: "whatever".into(),
            inputs: vec![a],
            output: a,
        });
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.has(LintCode::KernelAliasing), "got: {}", r.render());
    }

    #[test]
    fn lane_width_exceeds_arch() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        // 8 × f32 = 256 bits on a 128-bit target.
        p.add_reg(DataType::F32, 8);
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.has(LintCode::LaneWidthExceedsArch), "got: {}", r.render());

        // The same register is fine on AVX2.
        let mut p = Program::new("t", "test", Arch::Avx256);
        p.add_reg(DataType::F32, 8);
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(!r.has(LintCode::LaneWidthExceedsArch));
    }

    #[test]
    fn write_to_const() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let c = p.add_buffer("k", ty8(), BufferKind::Const, Some(vec![0.0; 8]));
        let a = p.add_buffer("a", ty8(), BufferKind::Input, None);
        p.body.push(Stmt::Copy { dst: c, src: a });
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(r.has(LintCode::WriteToConst), "got: {}", r.render());
    }

    #[test]
    fn malformed_program_reports_everything_at_once() {
        // Golden-style: an uninitialized register read AND a dead store in
        // one program must both surface in a single analyzer run.
        let mut p = Program::new("broken", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty8(), BufferKind::Input, None);
        let t = p.add_buffer("t", ty8(), BufferKind::Temp, None);
        let o = p.add_buffer("o", ty8(), BufferKind::Output, None);
        let reg = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::VStore {
            buf: o,
            index: IndexExpr::Const(0),
            reg, // never defined
        });
        p.body.push(abs_loop(t, a)); // dead: overwritten below, unread
        p.body.push(abs_loop(t, a));
        p.body.push(abs_loop(o, t));
        let r = lint_program(&p, &CodeLibrary::new());
        assert!(
            r.has(LintCode::UninitializedRegister),
            "got: {}",
            r.render()
        );
        assert!(r.has(LintCode::DeadStore), "got: {}", r.render());
        let text = r.render();
        assert!(text.contains("program/uninitialized-register"));
        assert!(text.contains("program/dead-store"));
    }
}
