//! The diagnostic vocabulary shared by all lint passes: codes, severities,
//! locations, and the [`LintReport`] container with stable rendering.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The artifact is wrong and must not be used (malformed structure,
    /// type violations, undefined behaviour).
    Error,
    /// The artifact works but carries a smell worth surfacing (dead code,
    /// redundant wiring).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Every lint the analyzer can raise.
///
/// `model/*` codes come from the model front end ([`crate::lint_model`],
/// [`crate::lint_model_file`]); `program/*` codes from the generated-program
/// front end ([`crate::lint_program`]). Each code has a fixed severity
/// ([`LintCode::severity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    // ---- model front end ----
    /// The model file is not well-formed XML.
    MalformedXml,
    /// The XML is well-formed but violates the model schema (missing
    /// attributes, non-dense actor ids, bad port specs).
    MalformedModelFile,
    /// An actor names a kind the actor inventory does not know.
    UnknownActorKind,
    /// The model contains no actors.
    EmptyModel,
    /// Two actors share a name.
    DuplicateActorName,
    /// Distinct actor names that map to the same C identifier after
    /// sanitization (e.g. `a b` and `a_b`); code generation deduplicates
    /// the buffer names with a numeric suffix.
    SanitizedNameCollision,
    /// A connection references an actor id not present in the model.
    UnknownActorId,
    /// A connection references a port index outside the kind's port count.
    PortOutOfRange,
    /// Two different output ports drive the same input port.
    DuplicateInputDriver,
    /// The exact same wire appears twice.
    DuplicateConnection,
    /// An input port has no incoming connection.
    UnconnectedInput,
    /// An output port drives nothing.
    DanglingOutput,
    /// A required parameter is absent.
    MissingParam,
    /// A parameter is present but malformed or out of range.
    BadParam,
    /// Connected signals disagree on element data type.
    DtypeMismatch,
    /// Connected signals disagree on shape/input scale (beyond scalar
    /// broadcast).
    ScaleMismatch,
    /// A combinational cycle not broken by a `UnitDelay`.
    AlgebraicLoop,
    /// An actor with no path to any `Outport`.
    UnreachableActor,
    /// The model has no `Outport` at all.
    NoOutput,

    // ---- program front end: structural (rehosted from hcg-vm) ----
    /// A buffer id exceeds the program's buffer table.
    BufferOutOfRange,
    /// A register id exceeds the program's register table.
    RegisterOutOfRange,
    /// A scalar element reference can reach past the end of its buffer.
    ElementOutOfBounds,
    /// A vector load/store can reach past the end of its buffer.
    VectorOutOfBounds,
    /// A scalar statement's operand count does not match its op's arity.
    ScalarArity,
    /// An element op applied to a dtype it does not support.
    DtypeUnsupported,
    /// A vector op's operand count does not match its pattern's inputs.
    VOpOperandCount,
    /// A vector op mixes registers of different dtype/lane shape.
    VOpShapeMismatch,
    /// A vector load/store register dtype differs from its buffer's dtype.
    VRegDtypeMismatch,
    /// A kernel call names an implementation absent from the library.
    UnknownKernel,
    /// A loop nested inside another loop (the IR forbids this).
    NestedLoop,
    /// A loop with step zero (would never terminate).
    ZeroStepLoop,
    /// A whole-buffer copy whose source is shorter than its destination.
    CopyLengthMismatch,
    /// A whole-buffer copy between buffers of different element dtype.
    CopyDtypeMismatch,

    // ---- program front end: dataflow ----
    /// A `Temp`/`Output` buffer is read before anything writes it.
    ReadBeforeWrite,
    /// A vector register is used before any load/op defines it.
    UninitializedRegister,
    /// A buffer write that nothing can ever observe.
    DeadStore,
    /// A `Temp` buffer that is written (or declared) but never read.
    NeverReadBuffer,
    /// A kernel call whose output buffer is also one of its inputs.
    KernelAliasing,
    /// A register wider than the target architecture's vector registers.
    LaneWidthExceedsArch,
    /// A write to a `Const` buffer.
    WriteToConst,

    // ---- program front end: value-range (raised by hcg-verify) ----
    /// Integer arithmetic whose result interval can escape its dtype and
    /// wrap.
    PossibleOverflow,
    /// An integer division whose divisor interval contains zero (defined as
    /// zero in the VM, undefined behaviour in lowered C).
    PossibleDivByZero,
    /// A vector op pattern reading a lane index beyond a source register's
    /// lane count.
    LaneOutOfRange,
}

impl LintCode {
    /// The stable kebab-case name used in rendered reports.
    pub const fn name(self) -> &'static str {
        use LintCode::*;
        match self {
            MalformedXml => "model/malformed-xml",
            MalformedModelFile => "model/malformed-model-file",
            UnknownActorKind => "model/unknown-actor-kind",
            EmptyModel => "model/empty-model",
            DuplicateActorName => "model/duplicate-actor-name",
            SanitizedNameCollision => "model/sanitized-name-collision",
            UnknownActorId => "model/unknown-actor-id",
            PortOutOfRange => "model/port-out-of-range",
            DuplicateInputDriver => "model/duplicate-input-driver",
            DuplicateConnection => "model/duplicate-connection",
            UnconnectedInput => "model/unconnected-input",
            DanglingOutput => "model/dangling-output",
            MissingParam => "model/missing-param",
            BadParam => "model/bad-param",
            DtypeMismatch => "model/dtype-mismatch",
            ScaleMismatch => "model/scale-mismatch",
            AlgebraicLoop => "model/algebraic-loop",
            UnreachableActor => "model/unreachable-actor",
            NoOutput => "model/no-output",
            BufferOutOfRange => "program/buffer-out-of-range",
            RegisterOutOfRange => "program/register-out-of-range",
            ElementOutOfBounds => "program/element-out-of-bounds",
            VectorOutOfBounds => "program/vector-out-of-bounds",
            ScalarArity => "program/scalar-arity",
            DtypeUnsupported => "program/dtype-unsupported",
            VOpOperandCount => "program/vop-operand-count",
            VOpShapeMismatch => "program/vop-shape-mismatch",
            VRegDtypeMismatch => "program/vreg-dtype-mismatch",
            UnknownKernel => "program/unknown-kernel",
            NestedLoop => "program/nested-loop",
            ZeroStepLoop => "program/zero-step-loop",
            CopyLengthMismatch => "program/copy-length-mismatch",
            CopyDtypeMismatch => "program/copy-dtype-mismatch",
            ReadBeforeWrite => "program/read-before-write",
            UninitializedRegister => "program/uninitialized-register",
            DeadStore => "program/dead-store",
            NeverReadBuffer => "program/never-read-buffer",
            KernelAliasing => "program/kernel-aliasing",
            LaneWidthExceedsArch => "program/lane-width-exceeds-arch",
            WriteToConst => "program/write-to-const",
            PossibleOverflow => "program/possible-overflow",
            PossibleDivByZero => "program/possible-div-by-zero",
            LaneOutOfRange => "program/lane-out-of-range",
        }
    }

    /// The fixed severity of this code.
    pub const fn severity(self) -> Severity {
        use LintCode::*;
        match self {
            DuplicateConnection
            | DanglingOutput
            | UnreachableActor
            | NoOutput
            | DeadStore
            | NeverReadBuffer
            | SanitizedNameCollision
            | PossibleOverflow
            | PossibleDivByZero => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the artifact a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// The whole model/program (or an unlocatable file error).
    Global,
    /// A model actor, optionally one of its ports.
    Actor {
        /// Actor name.
        name: String,
        /// Port index, when the diagnostic is port-specific.
        port: Option<usize>,
    },
    /// A wire between two ports, rendered as `from -> to`.
    Connection {
        /// Source `actor:port`.
        from: String,
        /// Destination `actor:port`.
        to: String,
    },
    /// A statement in a generated program body, as the index path from the
    /// top level (loop bodies add one level).
    Stmt {
        /// Statement index path.
        path: Vec<usize>,
    },
    /// A buffer declaration in a generated program.
    Buffer {
        /// Buffer name.
        name: String,
    },
    /// A register declaration in a generated program.
    Register {
        /// Register index.
        index: usize,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Global => f.write_str("-"),
            Location::Actor { name, port: None } => write!(f, "actor {name}"),
            Location::Actor {
                name,
                port: Some(p),
            } => write!(f, "actor {name}:{p}"),
            Location::Connection { from, to } => write!(f, "connect {from} -> {to}"),
            Location::Stmt { path } => {
                f.write_str("stmt ")?;
                for (i, p) in path.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Location::Buffer { name } => write!(f, "buffer {name}"),
            Location::Register { index } => write!(f, "register r{index}"),
        }
    }
}

/// One finding of one lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Its severity (always `code.severity()`).
    pub severity: Severity,
    /// Where it points.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic; severity comes from the code.
    pub fn new(code: LintCode, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// All diagnostics one analyzer run produced for one subject.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Name of the model/program analyzed.
    pub subject: String,
    /// Findings in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report for a subject.
    pub fn new(subject: impl Into<String>) -> Self {
        LintReport {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Record one finding.
    pub fn push(&mut self, code: LintCode, location: Location, message: impl Into<String>) {
        self.diagnostics
            .push(Diagnostic::new(code, location, message));
    }

    /// Append another report's findings (used when chaining file-level and
    /// model-level passes).
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Diagnostics of a given severity.
    pub fn of_severity(&self, severity: Severity) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .collect()
    }

    /// Count of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.of_severity(Severity::Error).len()
    }

    /// `true` when any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The distinct codes present, sorted.
    pub fn codes(&self) -> Vec<LintCode> {
        let mut codes: Vec<LintCode> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    /// `true` when a diagnostic with this code is present.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Render as stable text for golden tests: a header line, then one line
    /// per diagnostic sorted by (severity, code, location, message), then a
    /// summary line.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = self.diagnostics.iter().map(|d| d.to_string()).collect();
        lines.sort();
        let mut out = format!("== lint report for {} ==\n", self.subject);
        for l in &lines {
            out.push_str(l);
            out.push('\n');
        }
        let warnings = self.of_severity(Severity::Warning).len();
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            warnings
        ));
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Shared CLI formatter for a batch of reports: every front end that prints
/// diagnostics (the `lint` tool, `repro -- lint`, the static verifier's
/// range lints) renders through this one function so reports look identical
/// everywhere, and all of them gate their exit status on the returned
/// error flag.
///
/// Returns the rendered text and `true` when any report contains an
/// error-severity finding.
pub fn format_reports<'a, I>(reports: I) -> (String, bool)
where
    I: IntoIterator<Item = &'a LintReport>,
{
    let mut out = String::new();
    let mut has_errors = false;
    for r in reports {
        out.push_str(&r.render());
        out.push('\n');
        has_errors |= r.has_errors();
    }
    (out, has_errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_comes_from_code() {
        let d = Diagnostic::new(LintCode::DeadStore, Location::Global, "x");
        assert_eq!(d.severity, Severity::Warning);
        let d = Diagnostic::new(LintCode::AlgebraicLoop, Location::Global, "x");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn report_counting_and_codes() {
        let mut r = LintReport::new("m");
        r.push(LintCode::DeadStore, Location::Global, "a");
        r.push(LintCode::AlgebraicLoop, Location::Global, "b");
        r.push(LintCode::AlgebraicLoop, Location::Global, "c");
        assert_eq!(r.error_count(), 2);
        assert!(r.has_errors());
        assert!(r.has(LintCode::DeadStore));
        assert!(!r.has(LintCode::NoOutput));
        assert_eq!(
            r.codes(),
            vec![LintCode::AlgebraicLoop, LintCode::DeadStore]
        );
    }

    #[test]
    fn render_is_stable_under_insertion_order() {
        let mut a = LintReport::new("m");
        a.push(LintCode::DeadStore, Location::Global, "later");
        a.push(LintCode::AlgebraicLoop, Location::Global, "first");
        let mut b = LintReport::new("m");
        b.push(LintCode::AlgebraicLoop, Location::Global, "first");
        b.push(LintCode::DeadStore, Location::Global, "later");
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn location_rendering() {
        assert_eq!(
            Location::Actor {
                name: "sum".into(),
                port: Some(1)
            }
            .to_string(),
            "actor sum:1"
        );
        assert_eq!(Location::Stmt { path: vec![2, 0] }.to_string(), "stmt 2.0");
        assert_eq!(Location::Register { index: 3 }.to_string(), "register r3");
    }

    #[test]
    fn every_code_has_unique_name() {
        use LintCode::*;
        let all = [
            MalformedXml,
            MalformedModelFile,
            UnknownActorKind,
            EmptyModel,
            DuplicateActorName,
            SanitizedNameCollision,
            UnknownActorId,
            PortOutOfRange,
            DuplicateInputDriver,
            DuplicateConnection,
            UnconnectedInput,
            DanglingOutput,
            MissingParam,
            BadParam,
            DtypeMismatch,
            ScaleMismatch,
            AlgebraicLoop,
            UnreachableActor,
            NoOutput,
            BufferOutOfRange,
            RegisterOutOfRange,
            ElementOutOfBounds,
            VectorOutOfBounds,
            ScalarArity,
            DtypeUnsupported,
            VOpOperandCount,
            VOpShapeMismatch,
            VRegDtypeMismatch,
            UnknownKernel,
            NestedLoop,
            ZeroStepLoop,
            CopyLengthMismatch,
            CopyDtypeMismatch,
            ReadBeforeWrite,
            UninitializedRegister,
            DeadStore,
            NeverReadBuffer,
            KernelAliasing,
            LaneWidthExceedsArch,
            WriteToConst,
            PossibleOverflow,
            PossibleDivByZero,
            LaneOutOfRange,
        ];
        let mut names: Vec<&str> = all.iter().map(|c| c.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate lint code names");
    }
}
