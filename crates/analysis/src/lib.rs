//! `hcg-analysis`: multi-pass static analyzer and lint framework for HCG.
//!
//! Two front ends share one diagnostic vocabulary:
//!
//! * **Model lints** ([`lint_model`], [`lint_model_file`]) inspect an
//!   `hcg-model` [`Model`](hcg_model::Model) — or the raw XML before the
//!   strict parser rejects it — for structural problems: unconnected ports,
//!   duplicate connections, dtype/scale mismatches, algebraic loops,
//!   unreachable actors, unknown actor kinds.
//! * **Program lints** ([`lint_program`]) inspect a generated
//!   [`Program`](hcg_vm::Program): every structural defect the VM validator
//!   knows about, plus dataflow analyses (read-before-write, uninitialized
//!   registers, dead stores, never-read buffers), kernel-call aliasing and
//!   per-arch lane-width checks.
//!
//! Unlike `hcg_vm::validate`, which reports the first problem it finds, the
//! analyzer collects *every* diagnostic into a [`LintReport`] whose rendering
//! is stable for golden tests.

mod diagnostics;
mod model_lints;
mod program_lints;
mod xml_front;

pub use diagnostics::{format_reports, Diagnostic, LintCode, LintReport, Location, Severity};
pub use model_lints::lint_model;
pub use program_lints::{lint_program, lint_stage};
pub use xml_front::lint_model_file;
