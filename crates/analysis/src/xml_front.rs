//! Lenient model-file front end.
//!
//! `hcg_model::parser::model_from_xml` is strict and fails on the first
//! schema violation. This pass re-walks the raw XML, collecting *every*
//! file-level problem (missing attributes, non-dense ids, bad port specs,
//! unknown actor kinds) as diagnostics, and only then — if the file is
//! clean enough to parse — chains into the semantic model lints.

use crate::diagnostics::{LintCode, LintReport, Location};
use crate::model_lints::lint_model;
use hcg_model::parser::model_from_xml;
use hcg_model::xml::{self, XmlElement};
use hcg_model::ActorKind;

/// Lint a model file from its XML text.
///
/// Returns one report containing file-level diagnostics and, when the file
/// parses, all model-level diagnostics as well.
pub fn lint_model_file(text: &str) -> LintReport {
    let root = match xml::parse(text) {
        Ok(root) => root,
        Err(e) => {
            let mut r = LintReport::new("<malformed xml>");
            r.push(LintCode::MalformedXml, Location::Global, e.to_string());
            return r;
        }
    };
    let subject = root.attr("name").unwrap_or("<unnamed>").to_owned();
    let mut r = LintReport::new(subject);
    lint_file_structure(&root, &mut r);
    if r.has_errors() {
        return r;
    }
    match model_from_xml(text) {
        Ok(model) => {
            let semantic = lint_model(&model);
            r.extend(semantic);
        }
        Err(e) => {
            // The lenient walk missed something the strict parser rejects —
            // still surface it rather than silently returning a clean report.
            r.push(
                LintCode::MalformedModelFile,
                Location::Global,
                e.to_string(),
            );
        }
    }
    r
}

fn lint_file_structure(root: &XmlElement, r: &mut LintReport) {
    if root.name != "model" {
        r.push(
            LintCode::MalformedModelFile,
            Location::Global,
            format!("root element must be <model>, got <{}>", root.name),
        );
        return;
    }
    let mut expected_id = 0usize;
    for child in &root.children {
        match child.name.as_str() {
            "actor" => {
                lint_actor_element(child, expected_id, r);
                expected_id += 1;
            }
            "connect" => lint_connect_element(child, r),
            other => r.push(
                LintCode::MalformedModelFile,
                Location::Global,
                format!("unexpected element <{other}> inside <model>"),
            ),
        }
    }
}

fn lint_actor_element(el: &XmlElement, expected_id: usize, r: &mut LintReport) {
    let name = el.attr("name").unwrap_or("<unnamed>");
    let at = |port| Location::Actor {
        name: name.to_owned(),
        port,
    };
    match el.attr("id") {
        None => r.push(
            LintCode::MalformedModelFile,
            at(None),
            "<actor> is missing its id attribute".to_owned(),
        ),
        Some(raw) => match raw.parse::<usize>() {
            Err(_) => r.push(
                LintCode::MalformedModelFile,
                at(None),
                format!("<actor> id {raw:?} is not an integer"),
            ),
            Ok(id) if id != expected_id => r.push(
                LintCode::MalformedModelFile,
                at(None),
                format!("actor ids must be dense and in order: expected {expected_id}, got {id}"),
            ),
            Ok(_) => {}
        },
    }
    if el.attr("name").is_none() {
        r.push(
            LintCode::MalformedModelFile,
            at(None),
            format!("<actor id={expected_id}> is missing its name attribute"),
        );
    }
    match el.attr("kind") {
        None => r.push(
            LintCode::MalformedModelFile,
            at(None),
            "<actor> is missing its kind attribute".to_owned(),
        ),
        Some(kind) => {
            if kind.parse::<ActorKind>().is_err() {
                r.push(
                    LintCode::UnknownActorKind,
                    at(None),
                    format!("unknown actor kind {kind:?}"),
                );
            }
        }
    }
    for p in el.children_named("param") {
        if p.attr("name").is_none() {
            r.push(
                LintCode::MalformedModelFile,
                at(None),
                "<param> is missing its name attribute".to_owned(),
            );
        }
    }
}

fn lint_connect_element(el: &XmlElement, r: &mut LintReport) {
    for attr in ["from", "to"] {
        match el.attr(attr) {
            None => r.push(
                LintCode::MalformedModelFile,
                Location::Global,
                format!("<connect> is missing its {attr} attribute"),
            ),
            Some(spec) => {
                let ok = spec
                    .split_once(':')
                    .is_some_and(|(a, p)| a.parse::<usize>().is_ok() && p.parse::<usize>().is_ok());
                if !ok {
                    r.push(
                        LintCode::MalformedModelFile,
                        Location::Global,
                        format!("port reference {spec:?} must be actor:port"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_file_is_clean() {
        let r = lint_model_file(
            r#"<model name="t">
                 <actor id="0" name="x" kind="Inport"><param name="type">i32*8</param></actor>
                 <actor id="1" name="n" kind="Abs"/>
                 <actor id="2" name="y" kind="Outport"/>
                 <connect from="0:0" to="1:0"/>
                 <connect from="1:0" to="2:0"/>
               </model>"#,
        );
        assert!(r.diagnostics.is_empty(), "unexpected: {}", r.render());
    }

    #[test]
    fn malformed_xml_reported() {
        let r = lint_model_file("<model name=");
        assert!(r.has(LintCode::MalformedXml), "got: {}", r.render());
    }

    #[test]
    fn unknown_kind_and_bad_ids_collected_together() {
        // The strict parser would stop at the first of these; the lint front
        // end must surface all three.
        let r = lint_model_file(
            r#"<model name="t">
                 <actor id="0" name="x" kind="Warp"/>
                 <actor id="7" name="y" kind="Outport"/>
                 <connect from="0" to="1:0"/>
               </model>"#,
        );
        assert!(r.has(LintCode::UnknownActorKind), "got: {}", r.render());
        assert!(r.has(LintCode::MalformedModelFile), "got: {}", r.render());
        assert!(r.error_count() >= 3, "got: {}", r.render());
    }

    #[test]
    fn semantic_lints_chain_after_clean_parse() {
        // File parses fine, but the Abs actor's input is never driven.
        let r = lint_model_file(
            r#"<model name="t">
                 <actor id="0" name="n" kind="Abs"/>
                 <actor id="1" name="y" kind="Outport"/>
                 <connect from="0:0" to="1:0"/>
               </model>"#,
        );
        assert!(r.has(LintCode::UnconnectedInput), "got: {}", r.render());
    }

    #[test]
    fn wrong_root_element() {
        let r = lint_model_file("<simulink/>");
        assert!(r.has(LintCode::MalformedModelFile));
    }
}
