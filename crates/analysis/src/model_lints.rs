//! Model-level lints: structural problems, parameter contracts, connection
//! type/scale consistency, algebraic loops and reachability.
//!
//! Unlike [`Model::validate_structure`] and [`Model::infer_types`], which
//! stop at the first error, every pass here records all findings. Type
//! checking uses a tolerant local propagation that keeps going past
//! inconsistencies so that one bad wire does not hide another.

use crate::diagnostics::{LintCode, LintReport, Location};
use hcg_model::{Actor, ActorKind, DataType, Model, Param, PortRef, Shape, SignalType};
use std::collections::{BTreeMap, BTreeSet};

/// Run every model lint and collect the findings.
pub fn lint_model(model: &Model) -> LintReport {
    let mut r = LintReport::new(&model.name);
    if model.actors.is_empty() {
        r.push(
            LintCode::EmptyModel,
            Location::Global,
            "model contains no actors",
        );
        return r;
    }
    lint_names_and_params(model, &mut r);
    lint_sanitized_collisions(model, &mut r);
    lint_connections(model, &mut r);
    lint_types(model, &mut r);
    lint_cycles(model, &mut r);
    lint_reachability(model, &mut r);
    r
}

fn at(actor: &Actor) -> Location {
    Location::Actor {
        name: actor.name.clone(),
        port: None,
    }
}

fn at_port(actor: &Actor, port: usize) -> Location {
    Location::Actor {
        name: actor.name.clone(),
        port: Some(port),
    }
}

/// Render a port end with the actor name when the id resolves.
fn port_label(model: &Model, p: PortRef) -> String {
    match model.actors.get(p.actor.0) {
        Some(a) => format!("{}:{}", a.name, p.port),
        None => format!("{}:{}", p.actor, p.port),
    }
}

fn conn_location(model: &Model, from: PortRef, to: PortRef) -> Location {
    Location::Connection {
        from: port_label(model, from),
        to: port_label(model, to),
    }
}

fn lint_names_and_params(model: &Model, r: &mut LintReport) {
    let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
    for a in &model.actors {
        if seen.insert(&a.name, ()).is_some() {
            r.push(
                LintCode::DuplicateActorName,
                at(a),
                format!("actor name {:?} is used more than once", a.name),
            );
        }
        for p in a.kind.required_params() {
            if !a.params.contains_key(*p) {
                r.push(
                    LintCode::MissingParam,
                    at(a),
                    format!("{} requires parameter {p:?}", a.kind),
                );
            }
        }
        lint_param_values(a, r);
    }
}

/// Distinct actor names that sanitize to the same C identifier would fight
/// over one buffer name; code generation deduplicates with a numeric suffix,
/// but the model author should know the generated names won't match the
/// model names. Exact duplicates are already [`LintCode::DuplicateActorName`].
fn lint_sanitized_collisions(model: &Model, r: &mut LintReport) {
    let mut groups: BTreeMap<String, Vec<&Actor>> = BTreeMap::new();
    for a in &model.actors {
        groups
            .entry(hcg_model::naming::sanitize_identifier(&a.name))
            .or_default()
            .push(a);
    }
    for (ident, actors) in groups {
        let mut distinct: Vec<&str> = actors.iter().map(|a| a.name.as_str()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() > 1 {
            r.push(
                LintCode::SanitizedNameCollision,
                at(actors[0]),
                format!(
                    "actor names {} all sanitize to identifier {ident:?}; generated buffer names get numeric suffixes",
                    distinct
                        .iter()
                        .map(|n| format!("{n:?}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
        }
    }
}

/// Value-level parameter checks, only for parameters that are present
/// (absence is [`LintCode::MissingParam`]).
fn lint_param_values(a: &Actor, r: &mut LintReport) {
    let mut bad = |param: &str, why: String| {
        r.push(
            LintCode::BadParam,
            at(a),
            format!("parameter {param:?}: {why}"),
        );
    };
    match a.kind {
        ActorKind::Inport | ActorKind::Constant | ActorKind::UnitDelay => {
            if a.params.contains_key("type") && a.type_param("type").is_none() {
                bad(
                    "type",
                    "not a valid signal type (expected e.g. \"f32*1024\")".into(),
                );
            }
            if a.kind == ActorKind::Constant {
                if let Some(p) = a.param("value") {
                    match p.as_float_vec() {
                        None => bad("value", "not numeric".into()),
                        Some(v) => {
                            if let Some(t) = a.type_param("type") {
                                if v.len() != t.len() && v.len() != 1 {
                                    bad(
                                        "value",
                                        format!(
                                            "has {} elements, type {t} needs {} (or 1)",
                                            v.len(),
                                            t.len()
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        ActorKind::Gain => {
            if let Some(p) = a.param("gain") {
                if p.as_float().is_none() {
                    bad("gain", "not a number".into());
                }
            }
        }
        ActorKind::Saturate => {
            let (lo, hi) = (
                a.param("min").and_then(Param::as_float),
                a.param("max").and_then(Param::as_float),
            );
            if a.params.contains_key("min") && lo.is_none() {
                bad("min", "not a number".into());
            }
            if a.params.contains_key("max") && hi.is_none() {
                bad("max", "not a number".into());
            }
            if let (Some(lo), Some(hi)) = (lo, hi) {
                if lo > hi {
                    bad("min", format!("lower bound {lo} exceeds upper bound {hi}"));
                }
            }
        }
        ActorKind::Shr | ActorKind::Shl => {
            if let Some(p) = a.param("amount") {
                match p.as_int() {
                    Some(v) if (0..=63).contains(&v) => {}
                    Some(v) => bad("amount", format!("shift amount {v} outside 0..=63")),
                    None => bad("amount", "not an integer".into()),
                }
            }
        }
        ActorKind::Cast => {
            if let Some(Param::Str(s)) = a.param("to") {
                if s.parse::<DataType>().is_err() {
                    bad("to", format!("unknown data type {s:?}"));
                }
            } else if a.params.contains_key("to") {
                bad("to", "expected a data type name".into());
            }
        }
        _ => {}
    }
}

fn lint_connections(model: &Model, r: &mut LintReport) {
    let mut exact: BTreeSet<(PortRef, PortRef)> = BTreeSet::new();
    let mut drivers: BTreeMap<PortRef, Vec<PortRef>> = BTreeMap::new();
    for c in &model.connections {
        let mut ends_ok = true;
        for (end, is_output) in [(c.from, true), (c.to, false)] {
            match model.actors.get(end.actor.0) {
                None => {
                    r.push(
                        LintCode::UnknownActorId,
                        conn_location(model, c.from, c.to),
                        format!("references unknown actor {}", end.actor),
                    );
                    ends_ok = false;
                }
                Some(a) => {
                    let limit = if is_output {
                        a.kind.output_count()
                    } else {
                        a.kind.input_count()
                    };
                    if end.port >= limit {
                        r.push(
                            LintCode::PortOutOfRange,
                            conn_location(model, c.from, c.to),
                            format!(
                                "{} port {} out of range on {} ({} has {limit})",
                                if is_output { "output" } else { "input" },
                                end.port,
                                a.name,
                                a.kind
                            ),
                        );
                        ends_ok = false;
                    }
                }
            }
        }
        if !ends_ok {
            continue;
        }
        if !exact.insert((c.from, c.to)) {
            r.push(
                LintCode::DuplicateConnection,
                conn_location(model, c.from, c.to),
                "the same wire appears more than once",
            );
            continue; // exact duplicates are not a second driver
        }
        drivers.entry(c.to).or_default().push(c.from);
    }
    for (to, froms) in &drivers {
        if froms.len() > 1 {
            let a = &model.actors[to.actor.0];
            r.push(
                LintCode::DuplicateInputDriver,
                at_port(a, to.port),
                format!(
                    "input driven by {} different outputs: {}",
                    froms.len(),
                    froms
                        .iter()
                        .map(|f| port_label(model, *f))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
        }
    }
    for a in &model.actors {
        for p in 0..a.kind.input_count() {
            if !drivers.contains_key(&PortRef::new(a.id, p)) {
                r.push(
                    LintCode::UnconnectedInput,
                    at_port(a, p),
                    format!("input port {p} of {} has no driver", a.kind),
                );
            }
        }
        for p in 0..a.kind.output_count() {
            if model.consumers(PortRef::new(a.id, p)).is_empty() {
                r.push(
                    LintCode::DanglingOutput,
                    at_port(a, p),
                    format!("output port {p} of {} drives nothing", a.kind),
                );
            }
        }
    }
}

fn mat_dims(t: SignalType) -> Option<(usize, usize)> {
    match t.shape {
        Shape::Matrix(r, c) => Some((r, c)),
        _ => None,
    }
}

/// Tolerant fixed-point type propagation: like `Model::infer_types` but it
/// never bails — unknowable or inconsistent outputs stay `None` and checking
/// continues elsewhere.
fn propagate_types(model: &Model) -> Vec<Option<SignalType>> {
    let mut out: Vec<Option<SignalType>> = vec![None; model.actors.len()];
    loop {
        let mut progressed = false;
        for a in &model.actors {
            if a.kind.output_count() == 0 || out[a.id.0].is_some() {
                continue;
            }
            let ins: Vec<Option<SignalType>> = (0..a.kind.input_count())
                .map(|p| {
                    model
                        .driver(PortRef::new(a.id, p))
                        .filter(|s| s.actor.0 < model.actors.len())
                        .and_then(|s| out[s.actor.0])
                })
                .collect();
            if let Some(t) = propagate_one(a, &ins) {
                out[a.id.0] = Some(t);
                progressed = true;
            }
        }
        if !progressed {
            return out;
        }
    }
}

fn propagate_one(a: &Actor, ins: &[Option<SignalType>]) -> Option<SignalType> {
    use ActorKind::*;
    let first_known = ins.iter().flatten().next().copied();
    let array_known = ins
        .iter()
        .flatten()
        .find(|t| t.shape.is_array())
        .copied()
        .or(first_known);
    match a.kind {
        Inport | Constant => a.type_param("type"),
        Outport => None,
        Gain | Saturate | Neg | Abs | Recp | Sqrt | BitNot | Shr | Shl => first_known,
        UnitDelay => a.type_param("type").or(first_known),
        Cast => first_known.map(|t| {
            let to = match a.param("to") {
                Some(Param::Str(s)) => s.parse().unwrap_or(t.dtype),
                _ => t.dtype,
            };
            SignalType {
                dtype: to,
                shape: t.shape,
            }
        }),
        Add | Sub | Mul | Div | BitAnd | BitOr | BitXor | Min | Max | Abd => array_known,
        Switch => ins
            .get(1)
            .copied()
            .flatten()
            .or(ins.get(2).copied().flatten()),
        MatMul => {
            let (x, y) = (ins[0]?, ins[1]?);
            let (r, _) = mat_dims(x)?;
            let (_, c) = mat_dims(y)?;
            Some(SignalType::matrix(x.dtype, r, c))
        }
        MatInv | Dct2d => ins[0],
        MatDet => ins[0].map(|t| SignalType::scalar(t.dtype)),
        Fft => ins[0].map(|t| SignalType::vector(t.dtype, t.len() * 2)),
        Ifft => {
            let t = ins[0]?;
            (t.len() % 2 == 0).then(|| SignalType::vector(t.dtype, t.len() / 2))
        }
        Dct | Idct => ins[0].map(|t| SignalType::vector(t.dtype, t.len())),
        Conv => {
            let (x, y) = (ins[0]?, ins[1]?);
            Some(SignalType::vector(x.dtype, x.len() + y.len() - 1))
        }
        Fft2d => {
            let t = ins[0]?;
            let (r, c) = mat_dims(t)?;
            Some(SignalType::matrix(t.dtype, r, c * 2))
        }
        Conv2d => {
            let (x, y) = (ins[0]?, ins[1]?);
            let (r1, c1) = mat_dims(x)?;
            let (r2, c2) = mat_dims(y)?;
            Some(SignalType::matrix(x.dtype, r1 + r2 - 1, c1 + c2 - 1))
        }
    }
}

fn lint_types(model: &Model, r: &mut LintReport) {
    use ActorKind::*;
    let out = propagate_types(model);
    for a in &model.actors {
        let ins: Vec<Option<SignalType>> = (0..a.kind.input_count())
            .map(|p| {
                model
                    .driver(PortRef::new(a.id, p))
                    .filter(|s| s.actor.0 < model.actors.len())
                    .and_then(|s| out[s.actor.0])
            })
            .collect();
        if a.kind.float_only() {
            for (p, t) in ins.iter().enumerate() {
                if let Some(t) = t {
                    if !t.dtype.is_float() {
                        r.push(
                            LintCode::DtypeMismatch,
                            at_port(a, p),
                            format!("{} requires floating-point input, got {}", a.kind, t.dtype),
                        );
                    }
                }
            }
        }
        if a.kind.int_only() {
            for (p, t) in ins.iter().enumerate() {
                if let Some(t) = t {
                    if !t.dtype.is_int() {
                        r.push(
                            LintCode::DtypeMismatch,
                            at_port(a, p),
                            format!("{} requires integer input, got {}", a.kind, t.dtype),
                        );
                    }
                }
            }
        }
        match a.kind {
            Add | Sub | Mul | Div | BitAnd | BitOr | BitXor | Min | Max | Abd => {
                if let (Some(x), Some(y)) = (ins[0], ins[1]) {
                    if x.dtype != y.dtype {
                        r.push(
                            LintCode::DtypeMismatch,
                            at(a),
                            format!("{} inputs mix dtypes {} and {}", a.kind, x.dtype, y.dtype),
                        );
                    }
                    let shapes_ok =
                        x.shape == y.shape || x.shape == Shape::Scalar || y.shape == Shape::Scalar;
                    if !shapes_ok {
                        r.push(
                            LintCode::ScaleMismatch,
                            at(a),
                            format!(
                                "{} input scales differ: {} vs {} (only scalar broadcast allowed)",
                                a.kind, x.shape, y.shape
                            ),
                        );
                    }
                }
            }
            Switch => {
                if let (Some(x), Some(y)) = (ins[1], ins[2]) {
                    if x.dtype != y.dtype {
                        r.push(
                            LintCode::DtypeMismatch,
                            at(a),
                            format!("Switch data inputs mix dtypes {} and {}", x.dtype, y.dtype),
                        );
                    }
                    if x.shape != y.shape {
                        r.push(
                            LintCode::ScaleMismatch,
                            at(a),
                            format!(
                                "Switch data input scales differ: {} vs {}",
                                x.shape, y.shape
                            ),
                        );
                    }
                    if let Some(c) = ins[0] {
                        if c.shape != Shape::Scalar && c.shape != x.shape {
                            r.push(
                                LintCode::ScaleMismatch,
                                at_port(a, 0),
                                format!(
                                    "Switch control scale {} is neither scalar nor the data scale {}",
                                    c.shape, x.shape
                                ),
                            );
                        }
                    }
                }
            }
            Conv | Conv2d | MatMul => {
                if let (Some(x), Some(y)) = (ins[0], ins[1]) {
                    if x.dtype != y.dtype {
                        r.push(
                            LintCode::DtypeMismatch,
                            at(a),
                            format!("{} inputs mix dtypes {} and {}", a.kind, x.dtype, y.dtype),
                        );
                    }
                    if a.kind == MatMul {
                        match (mat_dims(x), mat_dims(y)) {
                            (Some((_, k1)), Some((k2, _))) if k1 != k2 => {
                                r.push(
                                    LintCode::ScaleMismatch,
                                    at(a),
                                    format!("MatMul inner dimensions differ: {k1} vs {k2}"),
                                );
                            }
                            (None, _) | (_, None) => {
                                r.push(
                                    LintCode::ScaleMismatch,
                                    at(a),
                                    format!(
                                        "MatMul needs matrix inputs, got {} and {}",
                                        x.shape, y.shape
                                    ),
                                );
                            }
                            _ => {}
                        }
                    }
                }
            }
            MatInv | MatDet => {
                if let Some(t) = ins[0] {
                    match mat_dims(t) {
                        Some((rr, cc)) if rr != cc => {
                            r.push(
                                LintCode::ScaleMismatch,
                                at(a),
                                format!("{} needs a square matrix, got {rr}x{cc}", a.kind),
                            );
                        }
                        None => {
                            r.push(
                                LintCode::ScaleMismatch,
                                at(a),
                                format!("{} needs a matrix input, got {}", a.kind, t.shape),
                            );
                        }
                        _ => {}
                    }
                }
            }
            Ifft => {
                if let Some(t) = ins[0] {
                    if t.len() % 2 != 0 {
                        r.push(
                            LintCode::ScaleMismatch,
                            at(a),
                            format!(
                                "IFFT input is interleaved complex and must have even length, got {}",
                                t.len()
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// Cycle detection matching the scheduler's convention: edges leaving a
/// `UnitDelay` carry last step's value and do not order execution, so only
/// cycles with no `UnitDelay` source are algebraic.
fn lint_cycles(model: &Model, r: &mut LintReport) {
    let n = model.actors.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in &model.connections {
        let (f, t) = (c.from.actor.0, c.to.actor.0);
        if f < n && t < n && model.actors[f].kind != ActorKind::UnitDelay {
            succ[f].push(t);
        }
    }
    // Iterative DFS three-colour cycle detection; every distinct back edge
    // yields one diagnostic naming the cycle's actors.
    let mut colour = vec![0u8; n]; // 0 white, 1 grey, 2 black
    let mut reported: BTreeSet<Vec<usize>> = BTreeSet::new();
    for root in 0..n {
        if colour[root] != 0 {
            continue;
        }
        // Stack of (node, next-successor-index); `path` mirrors the grey chain.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        let mut path: Vec<usize> = vec![root];
        colour[root] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < succ[node].len() {
                let s = succ[node][*next];
                *next += 1;
                match colour[s] {
                    0 => {
                        colour[s] = 1;
                        stack.push((s, 0));
                        path.push(s);
                    }
                    1 => {
                        // Back edge: the cycle is the path suffix from `s`.
                        let start = path.iter().position(|&p| p == s).unwrap_or(0);
                        let mut cycle: Vec<usize> = path[start..].to_vec();
                        cycle.sort_unstable();
                        if reported.insert(cycle.clone()) {
                            let names: Vec<&str> = cycle
                                .iter()
                                .map(|&i| model.actors[i].name.as_str())
                                .collect();
                            r.push(
                                LintCode::AlgebraicLoop,
                                at(&model.actors[s]),
                                format!(
                                    "combinational cycle through {} (insert a UnitDelay)",
                                    names.join(" -> ")
                                ),
                            );
                        }
                    }
                    _ => {}
                }
            } else {
                colour[node] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
}

fn lint_reachability(model: &Model, r: &mut LintReport) {
    let outports: Vec<usize> = model
        .actors
        .iter()
        .filter(|a| a.kind == ActorKind::Outport)
        .map(|a| a.id.0)
        .collect();
    if outports.is_empty() {
        r.push(
            LintCode::NoOutput,
            Location::Global,
            "model has no Outport; generated code would compute nothing observable",
        );
        // Without sinks every actor would be "unreachable" — skip the sweep
        // rather than flood the report.
        return;
    }
    let n = model.actors.len();
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in &model.connections {
        let (f, t) = (c.from.actor.0, c.to.actor.0);
        if f < n && t < n {
            pred[t].push(f);
        }
    }
    let mut live = vec![false; n];
    let mut queue = outports;
    while let Some(i) = queue.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        queue.extend(pred[i].iter().copied());
    }
    for a in &model.actors {
        if !live[a.id.0] {
            r.push(
                LintCode::UnreachableActor,
                at(a),
                format!("{} feeds no Outport and is dead code", a.kind),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::{DataType, ModelBuilder};

    fn clean_chain() -> Model {
        let mut b = ModelBuilder::new("chain");
        let x = b.inport("x", SignalType::vector(DataType::I32, 8));
        let c = b.constant("k", SignalType::vector(DataType::I32, 8), vec![1.0; 8]);
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("y");
        b.connect(x, 0, add, 0);
        b.connect(c, 0, add, 1);
        b.connect(add, 0, o, 0);
        b.build().unwrap()
    }

    #[test]
    fn clean_model_has_no_findings() {
        let r = lint_model(&clean_chain());
        assert!(r.diagnostics.is_empty(), "unexpected: {}", r.render());
    }

    #[test]
    fn empty_model() {
        let m = Model {
            name: "empty".into(),
            actors: vec![],
            connections: vec![],
        };
        let r = lint_model(&m);
        assert!(r.has(LintCode::EmptyModel));
    }

    #[test]
    fn duplicate_actor_name() {
        let mut b = ModelBuilder::new("dup");
        let x = b.inport("same", SignalType::scalar(DataType::F32));
        let o = b.add_actor("same", ActorKind::Outport);
        b.connect(x, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::DuplicateActorName));
    }

    #[test]
    fn unknown_actor_id() {
        let mut m = clean_chain();
        m.connections.push(hcg_model::Connection {
            from: PortRef::new(hcg_model::ActorId(99), 0),
            to: PortRef::new(m.actors[3].id, 0),
        });
        let r = lint_model(&m);
        assert!(r.has(LintCode::UnknownActorId));
    }

    #[test]
    fn port_out_of_range() {
        let mut b = ModelBuilder::new("port");
        let x = b.inport("x", SignalType::scalar(DataType::F32));
        let o = b.outport("y");
        b.connect(x, 0, o, 0);
        b.connect(x, 5, o, 0); // Inport has 1 output port
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::PortOutOfRange));
    }

    #[test]
    fn duplicate_input_driver_vs_duplicate_connection() {
        // Same wire twice: warning only.
        let mut b = ModelBuilder::new("dupconn");
        let x = b.inport("x", SignalType::scalar(DataType::F32));
        let o = b.outport("y");
        b.connect(x, 0, o, 0);
        b.connect(x, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::DuplicateConnection));
        assert!(!r.has(LintCode::DuplicateInputDriver));

        // Two different drivers: error.
        let mut b = ModelBuilder::new("two-drivers");
        let x = b.inport("x", SignalType::scalar(DataType::F32));
        let z = b.inport("z", SignalType::scalar(DataType::F32));
        let o = b.outport("y");
        b.connect(x, 0, o, 0);
        b.connect(z, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::DuplicateInputDriver));
        assert!(!r.has(LintCode::DuplicateConnection));
    }

    #[test]
    fn unconnected_input_and_dangling_output() {
        let mut b = ModelBuilder::new("loose");
        let _x = b.inport("x", SignalType::scalar(DataType::F32)); // dangles
        let add = b.add_actor("sum", ActorKind::Add); // both inputs loose
        let o = b.outport("y");
        b.connect(add, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert_eq!(
            r.diagnostics
                .iter()
                .filter(|d| d.code == LintCode::UnconnectedInput)
                .count(),
            2
        );
        assert!(r.has(LintCode::DanglingOutput));
    }

    #[test]
    fn missing_param() {
        let mut b = ModelBuilder::new("noparam");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let g = b.add_actor("g", ActorKind::Gain); // no "gain" param
        let o = b.outport("y");
        b.connect(x, 0, g, 0);
        b.connect(g, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::MissingParam));
    }

    #[test]
    fn bad_param_values() {
        // Shift amount out of range.
        let mut b = ModelBuilder::new("badshift");
        let x = b.inport("x", SignalType::vector(DataType::I32, 4));
        let s = b.add_actor("s", ActorKind::Shr);
        b.set_param(s, "amount", Param::Int(99));
        let o = b.outport("y");
        b.connect(x, 0, s, 0);
        b.connect(s, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::BadParam));

        // Saturate with inverted bounds.
        let mut b = ModelBuilder::new("badsat");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let s = b.add_actor("s", ActorKind::Saturate);
        b.set_param(s, "min", Param::Float(2.0));
        b.set_param(s, "max", Param::Float(-2.0));
        let o = b.outport("y");
        b.connect(x, 0, s, 0);
        b.connect(s, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::BadParam));
    }

    #[test]
    fn dtype_mismatch_across_connection() {
        let mut b = ModelBuilder::new("mixed");
        let x = b.inport("x", SignalType::vector(DataType::I32, 4));
        let y = b.inport("y", SignalType::vector(DataType::F32, 4));
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("o");
        b.connect(x, 0, add, 0);
        b.connect(y, 0, add, 1);
        b.connect(add, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::DtypeMismatch));
    }

    #[test]
    fn scale_mismatch_across_connection() {
        let mut b = ModelBuilder::new("scales");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let y = b.inport("y", SignalType::vector(DataType::F32, 8));
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("o");
        b.connect(x, 0, add, 0);
        b.connect(y, 0, add, 1);
        b.connect(add, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::ScaleMismatch));
        assert!(!r.has(LintCode::DtypeMismatch));
    }

    #[test]
    fn scalar_broadcast_is_not_a_scale_mismatch() {
        let mut b = ModelBuilder::new("bcast");
        let x = b.inport("x", SignalType::vector(DataType::F32, 16));
        let k = b.inport("k", SignalType::scalar(DataType::F32));
        let mul = b.add_actor("scale", ActorKind::Mul);
        let o = b.outport("o");
        b.connect(x, 0, mul, 0);
        b.connect(k, 0, mul, 1);
        b.connect(mul, 0, o, 0);
        let r = lint_model(&b.build().unwrap());
        assert!(r.diagnostics.is_empty(), "unexpected: {}", r.render());
    }

    #[test]
    fn float_only_actor_with_int_input() {
        let mut b = ModelBuilder::new("intfft");
        let x = b.inport("x", SignalType::vector(DataType::I32, 8));
        let f = b.add_actor("fft", ActorKind::Fft);
        let o = b.outport("o");
        b.connect(x, 0, f, 0);
        b.connect(f, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::DtypeMismatch));
    }

    #[test]
    fn algebraic_loop_detected() {
        // add -> abs -> add with no delay: combinational cycle.
        let mut b = ModelBuilder::new("loop");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let add = b.add_actor("sum", ActorKind::Add);
        let abs = b.add_actor("mag", ActorKind::Abs);
        let o = b.outport("y");
        b.connect(x, 0, add, 0);
        b.connect(add, 0, abs, 0);
        b.connect(abs, 0, add, 1);
        b.connect(add, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::AlgebraicLoop));
    }

    #[test]
    fn delay_broken_loop_is_fine() {
        let mut b = ModelBuilder::new("acc");
        let x = b.inport("x", SignalType::vector(DataType::F32, 8));
        let add = b.add_actor("sum", ActorKind::Add);
        let d = b.add_actor("z1", ActorKind::UnitDelay);
        let o = b.outport("y");
        b.connect(x, 0, add, 0);
        b.connect(d, 0, add, 1);
        b.connect(add, 0, d, 0);
        b.connect(add, 0, o, 0);
        let r = lint_model(&b.build().unwrap());
        assert!(!r.has(LintCode::AlgebraicLoop), "got: {}", r.render());
        assert!(!r.has_errors(), "got: {}", r.render());
    }

    #[test]
    fn unreachable_actor_detected() {
        let mut b = ModelBuilder::new("dead");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let o = b.outport("y");
        b.connect(x, 0, o, 0);
        // A side chain feeding nothing.
        let z = b.inport("z", SignalType::vector(DataType::F32, 4));
        let n = b.add_actor("negate", ActorKind::Neg);
        b.connect(z, 0, n, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::UnreachableActor));
    }

    #[test]
    fn no_output_detected() {
        let mut b = ModelBuilder::new("sink-less");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let n = b.add_actor("negate", ActorKind::Neg);
        b.connect(x, 0, n, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::NoOutput));
        // No unreachable flood without sinks.
        assert!(!r.has(LintCode::UnreachableActor));
    }

    #[test]
    fn one_run_collects_all_findings() {
        // Algebraic loop AND a dtype-mismatched connection in one model —
        // both must appear in one report (first-error APIs show only one).
        let mut b = ModelBuilder::new("malformed");
        let x = b.inport("x", SignalType::vector(DataType::I32, 4));
        let y = b.inport("y", SignalType::vector(DataType::F32, 4));
        let mix = b.add_actor("mix", ActorKind::Add);
        let add = b.add_actor("sum", ActorKind::Add);
        let abs = b.add_actor("mag", ActorKind::Abs);
        let o = b.outport("o");
        b.connect(x, 0, mix, 0);
        b.connect(y, 0, mix, 1); // dtype mismatch
        b.connect(mix, 0, add, 0);
        b.connect(add, 0, abs, 0);
        b.connect(abs, 0, add, 1); // algebraic loop
        b.connect(add, 0, o, 0);
        let r = lint_model(&b.build_unchecked());
        assert!(r.has(LintCode::DtypeMismatch), "report: {}", r.render());
        assert!(r.has(LintCode::AlgebraicLoop), "report: {}", r.render());
    }
}
