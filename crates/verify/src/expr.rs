//! Hash-consed symbolic expression arena.
//!
//! Every value a generated program (or the model's reference semantics) can
//! compute is represented as a tree of [`SymExpr`] nodes interned into an
//! [`ExprArena`]. Interning gives three properties the verifier leans on:
//!
//! * **O(1) equality** — two values are structurally equal iff they carry
//!   the same [`ExprId`], because identical nodes are stored once.
//! * **Canonical commutativity** — operands of commutative operations are
//!   sorted by id at interning time, so `Add(a, b)` and `Add(b, a)` receive
//!   the same id. Under hash-consing the id order is a structural order,
//!   which makes the sort well-defined across both sides of a proof as long
//!   as they share one arena.
//! * **Shared subtrees** — SIMD-fused, looped and unrolled lowerings of the
//!   same model converge onto the same interned nodes, so memory stays
//!   proportional to the number of *distinct* subcomputations.
//!
//! The node vocabulary generalises `hcg_graph::ValTree` (whose leaves are
//! dataflow-graph positions) to whole programs: leaves are model inputs,
//! delay states and constants; interior nodes are the element-wise operation
//! set plus the scalar extras (`Select`/`Clamp`/`Cast`) and uninterpreted
//! intensive kernels.

use hcg_model::op::{wrap_int, ElemOp};
use hcg_model::{ActorKind, DataType};
use std::collections::HashMap;

/// Identifier of an interned expression inside an [`ExprArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// One node of a symbolic value tree.
///
/// Constants are normalised into their storage dtype before interning (see
/// [`ExprArena::constant`]) so that e.g. a `2.0` model parameter stored into
/// an `i32` buffer and the literal `2` agree. Kernel results are
/// *uninterpreted functions*: two kernel outputs are equal iff they apply
/// the same actor kind to the same input element trees. The kernel's
/// `impl_name` is deliberately not part of the node — Algorithm 1 is free to
/// pick any implementation because the autotune contract guarantees all
/// implementations of a family agree (a property the dynamic fuzz oracle
/// tests separately).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymExpr {
    /// Element `elem` of the `port`-th external input (inport ordinal in
    /// model actor order).
    Input {
        /// Inport ordinal.
        port: u32,
        /// Element index.
        elem: u32,
    },
    /// Element `elem` of the `delay`-th unit-delay state as latched by the
    /// previous step (delay ordinal in model actor order).
    State {
        /// Unit-delay ordinal.
        delay: u32,
        /// Element index.
        elem: u32,
    },
    /// A compile-time constant, normalised into its storage dtype.
    Const {
        /// Storage element type.
        dtype: DataType,
        /// Value bits: `f64::to_bits` for floats, the wrapped `i64` value
        /// reinterpreted as `u64` for integers.
        bits: u64,
    },
    /// An element-wise operation over interned operands (commutative
    /// operand lists are sorted by id at interning time).
    Op {
        /// The operation.
        op: ElemOp,
        /// Operand ids (length = arity).
        args: Vec<ExprId>,
    },
    /// `cond > 0 ? then_ : else_` (the `Switch` actor / `Select` scalar op).
    Select {
        /// Condition value (compared against zero in its float view).
        cond: ExprId,
        /// Value when the condition is positive.
        then_: ExprId,
        /// Value otherwise.
        else_: ExprId,
    },
    /// Clamp into `[lo, hi]` (the `Saturate` actor). Bounds are stored as
    /// `f64` bit patterns so the node is hashable.
    Clamp {
        /// Lower bound bits.
        lo: u64,
        /// Upper bound bits.
        hi: u64,
        /// Clamped value.
        arg: ExprId,
    },
    /// Conversion into another element type. Only materialised when the
    /// conversion can change the value: float→float is an identity in the
    /// VM (all floats are stored as `f64`) and is never interned.
    Cast {
        /// Target element type.
        to: DataType,
        /// Converted value.
        arg: ExprId,
    },
    /// An ordered argument pack — kernel calls take whole arrays, so their
    /// inputs are tuples of tuples of element trees. Interning the pack
    /// once keeps kernel nodes O(1) instead of O(n) per output element.
    Tuple {
        /// Packed ids.
        items: Vec<ExprId>,
    },
    /// Element `elem` of an uninterpreted intensive kernel applied to the
    /// packed input arrays.
    Kernel {
        /// Kernel family (the intensive actor kind).
        kind: ActorKind,
        /// Output element index.
        elem: u32,
        /// Id of the [`SymExpr::Tuple`] packing the input arrays.
        args: ExprId,
    },
}

/// Interning arena for [`SymExpr`] nodes.
#[derive(Debug, Default)]
pub struct ExprArena {
    nodes: Vec<SymExpr>,
    ids: HashMap<SymExpr, ExprId>,
}

impl ExprArena {
    /// An empty arena.
    pub fn new() -> Self {
        ExprArena::default()
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Intern a node, canonicalising commutative operand order, and return
    /// its id. Structurally equal nodes always return the same id.
    pub fn intern(&mut self, mut e: SymExpr) -> ExprId {
        if let SymExpr::Op { op, args } = &mut e {
            if op.commutative() {
                args.sort_unstable();
            }
        }
        if let Some(&id) = self.ids.get(&e) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(e.clone());
        self.ids.insert(e, id);
        id
    }

    /// Intern a constant, normalising `raw` into `dtype` exactly the way
    /// buffer initialisation and tensor construction do: floats keep their
    /// bits, integers round then wrap into the dtype's width.
    pub fn constant(&mut self, dtype: DataType, raw: f64) -> ExprId {
        let bits = if dtype.is_float() {
            raw.to_bits()
        } else {
            wrap_int(dtype, raw.round() as i64) as u64
        };
        self.intern(SymExpr::Const { dtype, bits })
    }

    /// Wrap `arg` (of element type `from`) in the conversion the VM applies
    /// when the value flows into a `to`-typed location. Identity conversions
    /// — same dtype, or float→float (the VM stores every float as `f64`) —
    /// return `arg` unchanged.
    pub fn convert(&mut self, arg: ExprId, from: DataType, to: DataType) -> ExprId {
        if from == to || (from.is_float() && to.is_float()) {
            arg
        } else {
            self.intern(SymExpr::Cast { to, arg })
        }
    }

    /// Access an interned node.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this arena.
    pub fn node(&self, id: ExprId) -> &SymExpr {
        &self.nodes[id.0 as usize]
    }

    /// Render a tree as a human-readable expression string, for divergence
    /// witnesses. Deeply nested trees are elided with `…` beyond a fixed
    /// depth; kernel argument packs are summarised by arity.
    pub fn render(&self, id: ExprId) -> String {
        let mut out = String::new();
        self.render_into(id, 8, &mut out);
        out
    }

    fn render_into(&self, id: ExprId, depth: usize, out: &mut String) {
        use std::fmt::Write;
        if depth == 0 {
            out.push('…');
            return;
        }
        match self.node(id) {
            SymExpr::Input { port, elem } => {
                let _ = write!(out, "in{port}[{elem}]");
            }
            SymExpr::State { delay, elem } => {
                let _ = write!(out, "st{delay}[{elem}]");
            }
            SymExpr::Const { dtype, bits } => {
                if dtype.is_float() {
                    let _ = write!(out, "{}", f64::from_bits(*bits));
                } else {
                    let _ = write!(out, "{}", *bits as i64);
                }
            }
            SymExpr::Op { op, args } => {
                let _ = write!(out, "{}(", op.mnemonic());
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.render_into(*a, depth - 1, out);
                }
                out.push(')');
            }
            SymExpr::Select { cond, then_, else_ } => {
                out.push_str("Select(");
                self.render_into(*cond, depth - 1, out);
                out.push_str(", ");
                self.render_into(*then_, depth - 1, out);
                out.push_str(", ");
                self.render_into(*else_, depth - 1, out);
                out.push(')');
            }
            SymExpr::Clamp { lo, hi, arg } => {
                let _ = write!(
                    out,
                    "Clamp[{}, {}](",
                    f64::from_bits(*lo),
                    f64::from_bits(*hi)
                );
                self.render_into(*arg, depth - 1, out);
                out.push(')');
            }
            SymExpr::Cast { to, arg } => {
                let _ = write!(out, "Cast[{to}](");
                self.render_into(*arg, depth - 1, out);
                out.push(')');
            }
            SymExpr::Tuple { items } => {
                let _ = write!(out, "<{} values>", items.len());
            }
            SymExpr::Kernel { kind, elem, args } => {
                let arity = match self.node(*args) {
                    SymExpr::Tuple { items } => items.len(),
                    _ => 1,
                };
                let _ = write!(out, "{kind}[{elem}](<{arity} inputs>)");
            }
        }
    }
}

/// Intern a matched candidate [`hcg_graph::ValTree`] as a symbolic
/// expression, mapping each `DfgInput` leaf through `leaf`. This ties
/// Algorithm 2's operand trees into the verifier's vocabulary: a subgraph
/// the instruction mapper matched and the SIMD code it emitted normalise to
/// the same node.
pub fn sym_from_valtree<F>(arena: &mut ExprArena, tree: &hcg_graph::ValTree, leaf: &F) -> ExprId
where
    F: Fn(&hcg_graph::DfgInput) -> ExprId,
{
    match tree {
        hcg_graph::ValTree::Leaf(l) => leaf(l),
        hcg_graph::ValTree::Op { op, args } => {
            let ids = args
                .iter()
                .map(|a| sym_from_valtree(arena, a, leaf))
                .collect();
            arena.intern(SymExpr::Op { op: *op, args: ids })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_structural() {
        let mut a = ExprArena::new();
        let x = a.intern(SymExpr::Input { port: 0, elem: 0 });
        let y = a.intern(SymExpr::Input { port: 0, elem: 1 });
        let s1 = a.intern(SymExpr::Op {
            op: ElemOp::Sub,
            args: vec![x, y],
        });
        let s2 = a.intern(SymExpr::Op {
            op: ElemOp::Sub,
            args: vec![x, y],
        });
        let s3 = a.intern(SymExpr::Op {
            op: ElemOp::Sub,
            args: vec![y, x],
        });
        assert_eq!(s1, s2);
        assert_ne!(s1, s3, "Sub is not commutative");
    }

    #[test]
    fn commutative_operands_canonicalise() {
        let mut a = ExprArena::new();
        let x = a.intern(SymExpr::Input { port: 0, elem: 0 });
        let y = a.intern(SymExpr::Input { port: 1, elem: 0 });
        let ab = a.intern(SymExpr::Op {
            op: ElemOp::Add,
            args: vec![x, y],
        });
        let ba = a.intern(SymExpr::Op {
            op: ElemOp::Add,
            args: vec![y, x],
        });
        assert_eq!(ab, ba);
        // Nested: Mul(Add(x,y), z) == Mul(z, Add(y,x)).
        let z = a.intern(SymExpr::Input { port: 2, elem: 0 });
        let m1 = a.intern(SymExpr::Op {
            op: ElemOp::Mul,
            args: vec![ab, z],
        });
        let m2 = a.intern(SymExpr::Op {
            op: ElemOp::Mul,
            args: vec![z, ba],
        });
        assert_eq!(m1, m2);
    }

    #[test]
    fn constants_normalise_per_dtype() {
        let mut a = ExprArena::new();
        // 2.4 stored into an i32 buffer rounds to 2, same as the literal 2.
        assert_eq!(
            a.constant(DataType::I32, 2.4),
            a.constant(DataType::I32, 2.0)
        );
        // Width wrapping: 300 into an i8 equals 300 - 256 = 44.
        assert_eq!(
            a.constant(DataType::I8, 300.0),
            a.constant(DataType::I8, 44.0)
        );
        // Float constants keep their bits and are distinct from ints.
        assert_ne!(
            a.constant(DataType::F32, 2.0),
            a.constant(DataType::I32, 2.0)
        );
    }

    #[test]
    fn float_to_float_conversion_is_identity() {
        let mut a = ExprArena::new();
        let x = a.intern(SymExpr::Input { port: 0, elem: 0 });
        assert_eq!(a.convert(x, DataType::F32, DataType::F64), x);
        assert_eq!(a.convert(x, DataType::I32, DataType::I32), x);
        assert_ne!(a.convert(x, DataType::F64, DataType::I32), x);
        assert_ne!(a.convert(x, DataType::I16, DataType::I32), x);
    }

    #[test]
    fn render_is_readable() {
        let mut a = ExprArena::new();
        let x = a.intern(SymExpr::Input { port: 0, elem: 3 });
        let two = a.constant(DataType::I32, 2.0);
        let m = a.intern(SymExpr::Op {
            op: ElemOp::Mul,
            args: vec![x, two],
        });
        // Commutative args sort by interning order: `x` was interned first.
        assert_eq!(a.render(m), "Mul(in0[3], 2)");
    }

    #[test]
    fn valtree_and_arena_agree_on_commutativity() {
        use hcg_graph::{DfgInput, ValTree};
        let mut a = ExprArena::new();
        let leaf = |l: &DfgInput| match l {
            DfgInput::External(e) => ExprId(*e as u32),
            DfgInput::Node(_) => unreachable!(),
        };
        for l in [DfgInput::External(0), DfgInput::External(1)] {
            // Pre-intern leaves so ids 0/1 exist.
            let _ = a.intern(SymExpr::Input {
                port: match l {
                    DfgInput::External(e) => e as u32,
                    _ => 0,
                },
                elem: 0,
            });
        }
        let t1 = ValTree::Op {
            op: ElemOp::Add,
            args: vec![
                ValTree::Leaf(DfgInput::External(0)),
                ValTree::Leaf(DfgInput::External(1)),
            ],
        };
        let t2 = ValTree::Op {
            op: ElemOp::Add,
            args: vec![
                ValTree::Leaf(DfgInput::External(1)),
                ValTree::Leaf(DfgInput::External(0)),
            ],
        };
        let s1 = sym_from_valtree(&mut a, &t1, &leaf);
        let s2 = sym_from_valtree(&mut a, &t2, &leaf);
        assert_eq!(s1, s2);
        assert_eq!(t1.canonicalized(), t2.canonicalized());
    }
}
