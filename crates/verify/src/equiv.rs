//! Translation validation: prove a generated program equivalent to its
//! model, or produce a first-divergence witness.

use crate::expr::ExprArena;
use crate::model_sem::model_semantics;
use crate::prog::eval_program;
use crate::VerifyError;
use hcg_model::Model;
use hcg_vm::{BufferKind, Program};

/// A first-divergence witness: the earliest checked element (outports in
/// declaration order, then delay states, elements ascending) whose symbolic
/// value differs from the model's reference semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Name of the diverging outport (or unit-delay state).
    pub port: String,
    /// `true` when the divergence is in a latched delay state rather than
    /// an outport.
    pub is_state: bool,
    /// Diverging element index.
    pub elem: usize,
    /// Index into `Program::body` of the top-level statement that last
    /// wrote the element — the statement to blame. `None` when no statement
    /// ever wrote it (e.g. a dropped statement left the initial zero).
    pub stmt: Option<usize>,
    /// Rendered reference tree (what the model computes).
    pub expected: String,
    /// Rendered program tree (what the generated code computes).
    pub actual: String,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = if self.is_state { "state" } else { "outport" };
        let at = match self.stmt {
            Some(s) => format!("statement {s}"),
            None => "no writing statement".to_owned(),
        };
        write!(
            f,
            "{what} {:?} element {} diverges at {at}: model computes {}, program computes {}",
            self.port, self.elem, self.expected, self.actual
        )
    }
}

/// Result of statically verifying one generated program.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// `true` when every outport element and every latched state matches
    /// the model's symbolic semantics.
    pub equivalent: bool,
    /// First divergence when not equivalent.
    pub witness: Option<Witness>,
    /// Number of outports checked.
    pub outports: usize,
    /// Number of delay states checked.
    pub states: usize,
    /// Total elements compared.
    pub elems: usize,
    /// Distinct expression nodes interned while proving (a size measure of
    /// the symbolic step).
    pub exprs: usize,
}

/// Statically prove that `prog` implements one step of `model`, without
/// executing either.
///
/// Both sides are interned into one shared [`ExprArena`], so equivalence is
/// an id comparison per element: the program side abstractly interprets the
/// statement list (unrolling loops, tracking registers), the model side
/// walks the scheduled dataflow graph. A structural match is a proof — both
/// trees describe the same arithmetic over the same symbolic leaves in the
/// same element types, so they evaluate identically on every input and
/// state. A mismatch yields the first-divergence [`Witness`].
///
/// Verifier traffic is recorded in the global metrics registry
/// (`verify.programs`, `verify.proved`, `verify.divergent`, `verify.exprs`)
/// and the walk runs inside a `verify` tracing span.
///
/// # Errors
///
/// Returns [`VerifyError`] when the model itself is invalid or the program
/// violates IR contracts (nested loops, out-of-range accesses) — conditions
/// that make the question "equivalent?" ill-posed rather than answer it.
pub fn verify_program(model: &Model, prog: &Program) -> Result<VerifyOutcome, VerifyError> {
    let _span = hcg_obs::span_with("verify", || {
        format!("{}/{}@{}", prog.generator, prog.name, prog.arch)
    });
    let mut arena = ExprArena::new();
    let semantics = model_semantics(&mut arena, model)?;
    let summary = eval_program(&mut arena, prog)?;

    let out_bufs = prog.buffers_of(BufferKind::Output);
    let state_bufs = prog.buffers_of(BufferKind::State);
    if out_bufs.len() != semantics.outports.len() {
        return Err(VerifyError::Unsupported(format!(
            "program has {} output buffer(s), model has {} outport(s)",
            out_bufs.len(),
            semantics.outports.len()
        )));
    }
    if state_bufs.len() != semantics.states.len() {
        return Err(VerifyError::Unsupported(format!(
            "program has {} state buffer(s), model has {} delay(s)",
            state_bufs.len(),
            semantics.states.len()
        )));
    }

    let mut elems = 0usize;
    let mut witness = None;
    let sides = semantics
        .outports
        .iter()
        .zip(&out_bufs)
        .map(|((name, trees), buf)| (name, trees, *buf, false))
        .chain(
            semantics
                .states
                .iter()
                .zip(&state_bufs)
                .map(|((name, trees), buf)| (name, trees, *buf, true)),
        );
    'outer: for (name, expected, buf, is_state) in sides {
        let actual = &summary.bufs[buf.0];
        if expected.len() != actual.len() {
            return Err(VerifyError::Unsupported(format!(
                "{:?}: model computes {} element(s), buffer holds {}",
                name,
                expected.len(),
                actual.len()
            )));
        }
        for (i, (&e, &a)) in expected.iter().zip(actual).enumerate() {
            elems += 1;
            if e != a {
                witness = Some(Witness {
                    port: name.clone(),
                    is_state,
                    elem: i,
                    stmt: summary.writer[buf.0][i],
                    expected: arena.render(e),
                    actual: arena.render(a),
                });
                break 'outer;
            }
        }
    }

    let outcome = VerifyOutcome {
        equivalent: witness.is_none(),
        witness,
        outports: out_bufs.len(),
        states: state_bufs.len(),
        elems,
        exprs: arena.len(),
    };
    let metrics = hcg_obs::MetricsRegistry::global();
    metrics.counter_add("verify.programs", 1);
    metrics.counter_add(
        if outcome.equivalent {
            "verify.proved"
        } else {
            "verify.divergent"
        },
        1,
    );
    metrics.counter_add("verify.exprs", outcome.exprs as u64);
    Ok(outcome)
}
