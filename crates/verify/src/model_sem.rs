//! Reference symbolic semantics of a model, derived directly from the
//! scheduled dataflow graph.
//!
//! This is the symbolic twin of `hcg-core`'s golden reference interpreter:
//! it walks the deterministic schedule actor by actor and computes, for
//! every actor output, the tree of [`SymExpr`] nodes describing each
//! element in terms of inport values, previous-step delay states and
//! constants. The result is what any correct lowering of the model must
//! leave in its outport buffers (and latch into its state buffers) after
//! one step.

use crate::expr::{ExprArena, ExprId, SymExpr};
use crate::VerifyError;
use hcg_model::op::ElemOp;
use hcg_model::schedule::schedule;
use hcg_model::{ActorKind, KindClass, Model, PortRef};

/// Per-outport and per-delay symbolic semantics of one model step.
#[derive(Debug)]
pub struct ModelSemantics {
    /// `(outport name, element trees)` for every `Outport` actor, in model
    /// actor order — the same order generators declare output buffers in.
    pub outports: Vec<(String, Vec<ExprId>)>,
    /// `(delay name, latched element trees)` for every `UnitDelay` actor,
    /// in model actor order: the value its state buffer must hold at the
    /// end of the step.
    pub states: Vec<(String, Vec<ExprId>)>,
}

/// Derive the model's symbolic step semantics.
///
/// # Errors
///
/// Returns [`VerifyError::Model`] for models that fail validation, type
/// inference or scheduling, and [`VerifyError::Unsupported`] for actor
/// kinds without element-wise or kernel semantics.
pub fn model_semantics(
    arena: &mut ExprArena,
    model: &Model,
) -> Result<ModelSemantics, VerifyError> {
    let types = model.infer_types()?;
    let order = schedule(model)?;

    // values[actor] = element trees of the actor's (single) output.
    let mut values: Vec<Option<Vec<ExprId>>> = vec![None; model.actors.len()];

    // Delay outputs are previous-step state, available from step start.
    // Ordinals count actors of the kind in actor order, matching the
    // declaration order of Input/State buffers in generated programs.
    let mut input_ord = 0u32;
    let mut delay_ord = 0u32;
    let mut input_of_actor = vec![0u32; model.actors.len()];
    let mut delay_of_actor = vec![0u32; model.actors.len()];
    for a in &model.actors {
        match a.kind {
            ActorKind::Inport => {
                input_of_actor[a.id.0] = input_ord;
                input_ord += 1;
            }
            ActorKind::UnitDelay => {
                delay_of_actor[a.id.0] = delay_ord;
                delay_ord += 1;
                let ty = types.output(a.id, 0);
                let d = delay_of_actor[a.id.0];
                values[a.id.0] = Some(
                    (0..ty.len())
                        .map(|i| {
                            arena.intern(SymExpr::State {
                                delay: d,
                                elem: i as u32,
                            })
                        })
                        .collect(),
                );
            }
            _ => {}
        }
    }

    let mut outports = Vec::new();
    for &aid in &order.order {
        let actor = model.actor(aid);
        let input_of = |values: &[Option<Vec<ExprId>>],
                        p: usize|
         -> Result<(Vec<ExprId>, hcg_model::SignalType), VerifyError> {
            let src = model.driver(PortRef::new(aid, p)).ok_or_else(|| {
                VerifyError::Unsupported(format!("unconnected input {p} of {:?}", actor.name))
            })?;
            let trees = values[src.actor.0].clone().ok_or_else(|| {
                VerifyError::Unsupported(format!("value of {} not ready", src.actor))
            })?;
            Ok((trees, types.output(src.actor, src.port)))
        };
        let out_ty = if actor.kind.output_count() > 0 {
            Some(types.output(aid, 0))
        } else {
            None
        };
        let amount = actor.param("amount").and_then(|p| p.as_int()).unwrap_or(0) as u32;

        let value: Option<Vec<ExprId>> = match actor.kind {
            ActorKind::Inport => {
                let ty = out_ty.expect("inport has output");
                let port = input_of_actor[aid.0];
                Some(
                    (0..ty.len())
                        .map(|i| {
                            arena.intern(SymExpr::Input {
                                port,
                                elem: i as u32,
                            })
                        })
                        .collect(),
                )
            }
            ActorKind::Constant => {
                let ty = out_ty.expect("constant has output");
                let vals = actor
                    .param("value")
                    .and_then(|p| p.as_float_vec())
                    .ok_or_else(|| {
                        VerifyError::Unsupported(format!("{:?} has no value", actor.name))
                    })?;
                Some(
                    (0..ty.len())
                        .map(|i| {
                            let raw = vals.get(i).or(vals.first()).copied().unwrap_or(0.0);
                            arena.constant(ty.dtype, raw)
                        })
                        .collect(),
                )
            }
            ActorKind::Outport => {
                let (trees, _) = input_of(&values, 0)?;
                outports.push((actor.name.clone(), trees));
                None
            }
            // Injected above from state.
            ActorKind::UnitDelay => None,
            ActorKind::Gain => {
                let (x, _) = input_of(&values, 0)?;
                let ty = out_ty.expect("gain has output");
                let g = actor
                    .param("gain")
                    .and_then(|p| p.as_float())
                    .ok_or_else(|| {
                        VerifyError::Unsupported(format!("{:?} missing gain", actor.name))
                    })?;
                let k = arena.constant(ty.dtype, g);
                Some(
                    x.iter()
                        .map(|&xi| {
                            arena.intern(SymExpr::Op {
                                op: ElemOp::Mul,
                                args: vec![xi, k],
                            })
                        })
                        .collect(),
                )
            }
            ActorKind::Saturate => {
                let (x, _) = input_of(&values, 0)?;
                let lo = actor
                    .param("min")
                    .and_then(|p| p.as_float())
                    .unwrap_or(f64::MIN);
                let hi = actor
                    .param("max")
                    .and_then(|p| p.as_float())
                    .unwrap_or(f64::MAX);
                Some(
                    x.iter()
                        .map(|&xi| {
                            arena.intern(SymExpr::Clamp {
                                lo: lo.to_bits(),
                                hi: hi.to_bits(),
                                arg: xi,
                            })
                        })
                        .collect(),
                )
            }
            ActorKind::Cast => {
                let (x, in_ty) = input_of(&values, 0)?;
                let to = out_ty.expect("cast has output").dtype;
                Some(
                    x.iter()
                        .map(|&xi| arena.convert(xi, in_ty.dtype, to))
                        .collect(),
                )
            }
            ActorKind::Switch => {
                let (c, _) = input_of(&values, 0)?;
                let (a, _) = input_of(&values, 1)?;
                let (b, _) = input_of(&values, 2)?;
                let n = out_ty.expect("switch has output").len();
                Some(
                    (0..n)
                        .map(|i| {
                            let cond = if c.len() == 1 { c[0] } else { c[i] };
                            arena.intern(SymExpr::Select {
                                cond,
                                then_: a[i],
                                else_: b[i],
                            })
                        })
                        .collect(),
                )
            }
            kind if kind.class() == KindClass::Intensive => {
                let mut arrays = Vec::with_capacity(kind.input_count());
                for p in 0..kind.input_count() {
                    let (trees, _) = input_of(&values, p)?;
                    arrays.push(arena.intern(SymExpr::Tuple { items: trees }));
                }
                let args = arena.intern(SymExpr::Tuple { items: arrays });
                let n = out_ty.expect("intensive actor has output").len();
                Some(
                    (0..n)
                        .map(|i| {
                            arena.intern(SymExpr::Kernel {
                                kind,
                                elem: i as u32,
                                args,
                            })
                        })
                        .collect(),
                )
            }
            kind => {
                let op = ElemOp::from_actor(kind, amount).ok_or_else(|| {
                    VerifyError::Unsupported(format!("no element semantics for {kind}"))
                })?;
                let (x, _) = input_of(&values, 0)?;
                let n = out_ty.expect("batch actor has output").len();
                let pick = |v: &[ExprId], i: usize| if v.len() == 1 { v[0] } else { v[i] };
                if op.arity() == 1 {
                    Some(
                        (0..n)
                            .map(|i| {
                                let xi = pick(&x, i);
                                arena.intern(SymExpr::Op { op, args: vec![xi] })
                            })
                            .collect(),
                    )
                } else {
                    let (y, _) = input_of(&values, 1)?;
                    Some(
                        (0..n)
                            .map(|i| {
                                let xi = pick(&x, i);
                                let yi = pick(&y, i);
                                arena.intern(SymExpr::Op {
                                    op,
                                    args: vec![xi, yi],
                                })
                            })
                            .collect(),
                    )
                }
            }
        };
        if let Some(v) = value {
            values[aid.0] = Some(v);
        }
    }

    // Latch delays from their drivers (delay drivers that are themselves
    // delays contribute their previous-step state, as in the reference).
    let mut states = Vec::new();
    for a in &model.actors {
        if a.kind == ActorKind::UnitDelay {
            let src = model.driver(PortRef::new(a.id, 0)).ok_or_else(|| {
                VerifyError::Unsupported(format!("unconnected delay {:?}", a.name))
            })?;
            let trees = values[src.actor.0].clone().ok_or_else(|| {
                VerifyError::Unsupported(format!("delay driver {} has no value", src.actor))
            })?;
            states.push((a.name.clone(), trees));
        }
    }

    Ok(ModelSemantics { outports, states })
}
