//! Symbolic abstract interpretation of a generated [`Program`].
//!
//! The evaluator executes a program's statement list exactly the way the VM
//! interpreter does — same loop iteration, same index arithmetic, same
//! dtype conversions — but over [`SymExpr`] trees instead of numbers. Loops
//! are concretely unrolled (all bounds in the IR are static), which is what
//! normalises the three code shapes the generators emit: unrolled scalar
//! statements, looped scalar statements and SIMD load/op/store sections all
//! leave the same per-element trees behind. Splat/broadcast operands need
//! no special casing either — a broadcast read is simply an access to
//! element 0, which yields the scalar's (shared) tree.

use crate::expr::{ExprArena, ExprId, SymExpr};
use crate::VerifyError;
use hcg_isa::{Pattern, PatternArg};
use hcg_vm::{BufferKind, Program, ScalarOp, Stmt};

/// The symbolic memory state a program leaves behind after one step:
/// per-buffer element trees plus, for divergence witnesses, the top-level
/// statement index that last wrote each element.
#[derive(Debug)]
pub struct ProgSummary {
    /// `bufs[b][i]` is the tree of element `i` of buffer `b` after the step.
    pub bufs: Vec<Vec<ExprId>>,
    /// `writer[b][i]` is the index (into `Program::body`) of the top-level
    /// statement that last wrote the element, or `None` if the element kept
    /// its initial value.
    pub writer: Vec<Vec<Option<usize>>>,
}

struct Eval<'a, 'p> {
    arena: &'a mut ExprArena,
    prog: &'p Program,
    bufs: Vec<Vec<ExprId>>,
    writer: Vec<Vec<Option<usize>>>,
    regs: Vec<Vec<ExprId>>,
}

/// Abstractly interpret one step of `prog`, starting from symbolic inputs
/// and states.
///
/// Input buffers start as [`SymExpr::Input`] leaves and state buffers as
/// [`SymExpr::State`] leaves, both numbered by their ordinal among buffers
/// of that kind — generators allocate actor buffers in model actor order,
/// so the `k`-th input buffer belongs to the `k`-th inport. Constants take
/// their declared init data (broadcast like the VM does) and temporaries
/// and outputs start at the dtype's zero, mirroring `Machine::new`.
///
/// # Errors
///
/// Returns [`VerifyError::Unsupported`] for programs the IR contract rules
/// out anyway: nested loops, out-of-range element accesses, or vector
/// operations whose source registers are narrower than their destination.
pub fn eval_program(arena: &mut ExprArena, prog: &Program) -> Result<ProgSummary, VerifyError> {
    let mut input_ord = 0u32;
    let mut state_ord = 0u32;
    let mut bufs = Vec::with_capacity(prog.buffers.len());
    for b in &prog.buffers {
        let n = b.ty.len();
        let elems: Vec<ExprId> = match b.kind {
            BufferKind::Input => {
                let port = input_ord;
                input_ord += 1;
                (0..n)
                    .map(|i| {
                        arena.intern(SymExpr::Input {
                            port,
                            elem: i as u32,
                        })
                    })
                    .collect()
            }
            BufferKind::State => {
                let delay = state_ord;
                state_ord += 1;
                (0..n)
                    .map(|i| {
                        arena.intern(SymExpr::State {
                            delay,
                            elem: i as u32,
                        })
                    })
                    .collect()
            }
            BufferKind::Const => (0..n)
                .map(|i| {
                    let raw = b
                        .init
                        .as_ref()
                        .and_then(|init| init.get(i).or(init.first()))
                        .copied()
                        .unwrap_or(0.0);
                    arena.constant(b.ty.dtype, raw)
                })
                .collect(),
            BufferKind::Temp | BufferKind::Output => {
                let zero = arena.constant(b.ty.dtype, 0.0);
                vec![zero; n]
            }
        };
        bufs.push(elems);
    }
    let writer = prog
        .buffers
        .iter()
        .map(|b| vec![None; b.ty.len()])
        .collect();
    let regs = prog
        .reg_types
        .iter()
        .map(|(d, l)| vec![arena.constant(*d, 0.0); *l])
        .collect();
    let mut ev = Eval {
        arena,
        prog,
        bufs,
        writer,
        regs,
    };
    for (top, stmt) in prog.body.iter().enumerate() {
        ev.exec_stmt(stmt, None, top)?;
    }
    Ok(ProgSummary {
        bufs: ev.bufs,
        writer: ev.writer,
    })
}

impl Eval<'_, '_> {
    fn oob(&self, buf: hcg_vm::BufferId, index: usize) -> VerifyError {
        VerifyError::Unsupported(format!(
            "access to element {index} outside buffer {:?}",
            self.prog.buffer(buf).name
        ))
    }

    fn read(
        &self,
        r: hcg_vm::ElemRef,
        loop_var: Option<usize>,
    ) -> Result<(ExprId, hcg_model::DataType), VerifyError> {
        let i = r.index.eval(loop_var.unwrap_or(0));
        let elems = &self.bufs[r.buf.0];
        if i >= elems.len() {
            return Err(self.oob(r.buf, i));
        }
        Ok((elems[i], self.prog.buffer(r.buf).ty.dtype))
    }

    fn write(
        &mut self,
        buf: hcg_vm::BufferId,
        index: usize,
        value: ExprId,
        top: usize,
    ) -> Result<(), VerifyError> {
        if index >= self.bufs[buf.0].len() {
            return Err(self.oob(buf, index));
        }
        self.bufs[buf.0][index] = value;
        self.writer[buf.0][index] = Some(top);
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        loop_var: Option<usize>,
        top: usize,
    ) -> Result<(), VerifyError> {
        match stmt {
            Stmt::Loop {
                start,
                end,
                step,
                body,
            } => {
                if loop_var.is_some() {
                    return Err(VerifyError::Unsupported("nested loop".into()));
                }
                if *step == 0 {
                    return Err(VerifyError::Unsupported("zero-step loop".into()));
                }
                let mut i = *start;
                while i < *end {
                    for s in body {
                        self.exec_stmt(s, Some(i), top)?;
                    }
                    i += step;
                }
                Ok(())
            }
            Stmt::Scalar { op, dst, srcs } => {
                let dt = self.prog.buffer(dst.buf).ty.dtype;
                let vals: Result<Vec<(ExprId, hcg_model::DataType)>, VerifyError> =
                    srcs.iter().map(|s| self.read(*s, loop_var)).collect();
                let vals = vals?;
                if vals.len() < op.arity() {
                    return Err(VerifyError::Unsupported(format!(
                        "scalar op with {} operand(s), needs {}",
                        vals.len(),
                        op.arity()
                    )));
                }
                let tree = match op {
                    ScalarOp::Elem(e) => {
                        // The interpreter evaluates in the destination's
                        // dtype, converting mistyped sources on read.
                        let args: Vec<ExprId> = vals
                            .iter()
                            .map(|&(t, from)| self.arena.convert(t, from, dt))
                            .collect();
                        self.arena.intern(SymExpr::Op {
                            op: *e,
                            args: args[..e.arity()].to_vec(),
                        })
                    }
                    ScalarOp::Select => {
                        let then_ = self.arena.convert(vals[1].0, vals[1].1, dt);
                        let else_ = self.arena.convert(vals[2].0, vals[2].1, dt);
                        self.arena.intern(SymExpr::Select {
                            cond: vals[0].0,
                            then_,
                            else_,
                        })
                    }
                    ScalarOp::Clamp { lo, hi } => self.arena.intern(SymExpr::Clamp {
                        lo: lo.to_bits(),
                        hi: hi.to_bits(),
                        arg: vals[0].0,
                    }),
                    ScalarOp::Cast | ScalarOp::Copy => self.arena.convert(vals[0].0, vals[0].1, dt),
                };
                let idx = dst.index.eval(loop_var.unwrap_or(0));
                self.write(dst.buf, idx, tree, top)
            }
            Stmt::VLoad { reg, buf, index } => {
                let i0 = index.eval(loop_var.unwrap_or(0));
                let (_, lanes) = self.prog.reg_types[reg.0];
                if i0 + lanes > self.bufs[buf.0].len() {
                    return Err(self.oob(*buf, i0 + lanes - 1));
                }
                self.regs[reg.0] = self.bufs[buf.0][i0..i0 + lanes].to_vec();
                Ok(())
            }
            Stmt::VStore { buf, index, reg } => {
                let i0 = index.eval(loop_var.unwrap_or(0));
                let lanes = self.regs[reg.0].len();
                if i0 + lanes > self.bufs[buf.0].len() {
                    return Err(self.oob(*buf, i0 + lanes - 1));
                }
                let (reg_dt, _) = self.prog.reg_types[reg.0];
                let buf_dt = self.prog.buffer(*buf).ty.dtype;
                for k in 0..lanes {
                    let t = self.regs[reg.0][k];
                    let t = self.arena.convert(t, reg_dt, buf_dt);
                    self.write(*buf, i0 + k, t, top)?;
                }
                Ok(())
            }
            Stmt::VOp {
                pattern, dst, srcs, ..
            } => {
                let (_, lanes) = self.prog.reg_types[dst.0];
                let mut out = Vec::with_capacity(lanes);
                for lane in 0..lanes {
                    out.push(self.eval_pattern(pattern, srcs, lane)?);
                }
                self.regs[dst.0] = out;
                Ok(())
            }
            Stmt::KernelCall {
                actor,
                impl_name: _,
                inputs,
                output,
            } => {
                let arrays: Vec<ExprId> = inputs
                    .iter()
                    .map(|b| {
                        let items = self.bufs[b.0].clone();
                        self.arena.intern(SymExpr::Tuple { items })
                    })
                    .collect();
                let args = self.arena.intern(SymExpr::Tuple { items: arrays });
                let n = self.bufs[output.0].len();
                for i in 0..n {
                    let t = self.arena.intern(SymExpr::Kernel {
                        kind: *actor,
                        elem: i as u32,
                        args,
                    });
                    self.write(*output, i, t, top)?;
                }
                Ok(())
            }
            Stmt::Copy { dst, src } => {
                let n = self.bufs[dst.0].len().min(self.bufs[src.0].len());
                let from = self.prog.buffer(*src).ty.dtype;
                let to = self.prog.buffer(*dst).ty.dtype;
                for i in 0..n {
                    let t = self.bufs[src.0][i];
                    let t = self.arena.convert(t, from, to);
                    self.write(*dst, i, t, top)?;
                }
                Ok(())
            }
        }
    }

    fn eval_pattern(
        &mut self,
        pattern: &Pattern,
        srcs: &[hcg_vm::RegId],
        lane: usize,
    ) -> Result<ExprId, VerifyError> {
        let mut args = Vec::with_capacity(pattern.args.len());
        for a in &pattern.args {
            let id = match a {
                PatternArg::Input(slot) => {
                    let reg = srcs.get(*slot).ok_or_else(|| {
                        VerifyError::Unsupported(format!(
                            "vector op references missing operand slot {slot}"
                        ))
                    })?;
                    *self.regs[reg.0].get(lane).ok_or_else(|| {
                        VerifyError::Unsupported(format!(
                            "vector op reads lane {lane} of a narrower register"
                        ))
                    })?
                }
                PatternArg::Node(inner) => self.eval_pattern(inner, srcs, lane)?,
            };
            args.push(id);
        }
        Ok(self.arena.intern(SymExpr::Op {
            op: pattern.op,
            args,
        }))
    }
}
