//! Value-range abstract interpretation over generated programs.
//!
//! A single forward pass propagates one interval per buffer and per vector
//! register (whole-object granularity, weak updates) through the statement
//! list, and raises range lints through `hcg-analysis`'s diagnostics
//! vocabulary:
//!
//! * [`LintCode::PossibleOverflow`] — an integer arithmetic statement whose
//!   exact result interval escapes its destination dtype's value range.
//! * [`LintCode::PossibleDivByZero`] — an integer division whose divisor
//!   interval contains zero (the VM defines `x / 0 == 0`, but the lowered C
//!   would be undefined behaviour).
//! * [`LintCode::LaneOutOfRange`] — a vector op whose pattern reads a lane
//!   index beyond a source register's lane count.
//!
//! Inputs and states start at the full range of their dtype, so the overflow
//! lint is deliberately pessimistic: it marks arithmetic that *could* wrap
//! for some input, which is exactly the question an embedded-code reviewer
//! asks of a generated controller. Lints here are advisory (warnings) except
//! the lane check, which is a structural error.

use hcg_analysis::{LintCode, LintReport, Location};
use hcg_isa::{Pattern, PatternArg};
use hcg_model::op::{wrap_int, ElemOp};
use hcg_model::DataType;
use hcg_vm::{BufferKind, Program, ScalarOp, Stmt};

/// A closed interval `[lo, hi]` in f64 space (whole-buffer granularity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// The single point `v`.
    pub fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The full value range of a dtype (floats are unbounded).
    pub fn full(dtype: DataType) -> Interval {
        if dtype.is_float() {
            Interval {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
            }
        } else {
            let (lo, hi) = int_bounds(dtype);
            Interval { lo, hi }
        }
    }

    /// Smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// `true` when the interval contains `v`.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when the interval fits inside the dtype's value range.
    pub fn fits(self, dtype: DataType) -> bool {
        if dtype.is_float() {
            return true;
        }
        let (lo, hi) = int_bounds(dtype);
        self.lo >= lo && self.hi <= hi
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

fn int_bounds(dtype: DataType) -> (f64, f64) {
    let bits = dtype.bit_width();
    if dtype.is_signed() {
        let hi = 2f64.powi(bits as i32 - 1) - 1.0;
        (-2f64.powi(bits as i32 - 1), hi)
    } else {
        (0.0, 2f64.powi(bits as i32) - 1.0)
    }
}

fn apply(op: ElemOp, args: &[Interval], dtype: DataType) -> Interval {
    let a = args[0];
    let b = args.get(1).copied().unwrap_or(a);
    match op {
        ElemOp::Add => Interval {
            lo: a.lo + b.lo,
            hi: a.hi + b.hi,
        },
        ElemOp::Sub => Interval {
            lo: a.lo - b.hi,
            hi: a.hi - b.lo,
        },
        ElemOp::Mul => {
            let c = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            Interval {
                lo: c.iter().copied().fold(f64::INFINITY, f64::min),
                hi: c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            }
        }
        ElemOp::Div | ElemOp::Recp => {
            let d = if op == ElemOp::Recp { a } else { b };
            if d.contains(0.0) {
                Interval::full(dtype)
            } else {
                let n = if op == ElemOp::Recp {
                    Interval::point(1.0)
                } else {
                    a
                };
                let c = [n.lo / d.lo, n.lo / d.hi, n.hi / d.lo, n.hi / d.hi];
                Interval {
                    lo: c.iter().copied().fold(f64::INFINITY, f64::min),
                    hi: c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                }
            }
        }
        ElemOp::Shl(k) => {
            let f = 2f64.powi(k as i32);
            Interval {
                lo: a.lo * f,
                hi: a.hi * f,
            }
        }
        ElemOp::Shr(k) => {
            // Arithmetic shift right rounds toward negative infinity.
            let f = 2f64.powi(k as i32);
            Interval {
                lo: (a.lo / f).floor(),
                hi: (a.hi / f).floor(),
            }
        }
        ElemOp::Min => Interval {
            lo: a.lo.min(b.lo),
            hi: a.hi.min(b.hi),
        },
        ElemOp::Max => Interval {
            lo: a.lo.max(b.lo),
            hi: a.hi.max(b.hi),
        },
        ElemOp::Abs => {
            if a.lo >= 0.0 {
                a
            } else {
                Interval {
                    lo: 0.0,
                    hi: a.hi.abs().max(a.lo.abs()),
                }
            }
        }
        ElemOp::Abd => {
            let d = apply(ElemOp::Sub, &[a, b], dtype);
            apply(ElemOp::Abs, &[d], dtype)
        }
        ElemOp::Neg => Interval {
            lo: -a.hi,
            hi: -a.lo,
        },
        ElemOp::Sqrt => Interval {
            lo: a.lo.max(0.0).sqrt(),
            hi: a.hi.max(0.0).sqrt(),
        },
        // Bit manipulation escapes interval reasoning; give up to the
        // dtype's range rather than guess.
        ElemOp::BitNot | ElemOp::BitAnd | ElemOp::BitOr | ElemOp::BitXor => Interval::full(dtype),
    }
}

struct RangePass<'p> {
    prog: &'p Program,
    bufs: Vec<Interval>,
    regs: Vec<Interval>,
    report: LintReport,
}

/// Run the value-range lints over one generated program.
pub fn range_lint(prog: &Program) -> LintReport {
    let bufs = prog
        .buffers
        .iter()
        .map(|b| match b.kind {
            BufferKind::Input | BufferKind::State => Interval::full(b.ty.dtype),
            BufferKind::Const => match b.init.as_deref() {
                Some(init) if !init.is_empty() => init
                    .iter()
                    .map(|&v| {
                        // Const init data is wrapped to the buffer dtype
                        // exactly the way the VM loads it.
                        let v = if b.ty.dtype.is_int() {
                            wrap_int(b.ty.dtype, v.round() as i64) as f64
                        } else {
                            v
                        };
                        Interval::point(v)
                    })
                    .reduce(Interval::join)
                    .expect("non-empty init"),
                _ => Interval::point(0.0),
            },
            BufferKind::Temp | BufferKind::Output => Interval::point(0.0),
        })
        .collect();
    let regs = prog
        .reg_types
        .iter()
        .map(|_| Interval::point(0.0))
        .collect();
    let mut pass = RangePass {
        prog,
        bufs,
        regs,
        report: LintReport::new(format!("{} (ranges)", prog.name)),
    };
    for (i, stmt) in prog.body.iter().enumerate() {
        pass.exec(stmt, vec![i]);
    }
    pass.report
}

impl RangePass<'_> {
    fn exec(&mut self, stmt: &Stmt, path: Vec<usize>) {
        match stmt {
            Stmt::Loop { body, .. } => {
                // One symbolic pass through the body with weak updates; the
                // trip count never changes which values are representable.
                for (i, s) in body.iter().enumerate() {
                    let mut p = path.clone();
                    p.push(i);
                    self.exec(s, p);
                }
            }
            Stmt::Scalar { op, dst, srcs } => {
                let dt = self.prog.buffer(dst.buf).ty.dtype;
                let vals: Vec<Interval> = srcs.iter().map(|s| self.bufs[s.buf.0]).collect();
                let out = match op {
                    ScalarOp::Elem(e) => {
                        if vals.len() < e.arity() {
                            return;
                        }
                        self.check_op(*e, &vals, dt, &path);
                        apply(*e, &vals[..e.arity()], dt)
                    }
                    ScalarOp::Select => match (vals.get(1), vals.get(2)) {
                        (Some(&t), Some(&e)) => t.join(e),
                        _ => return,
                    },
                    ScalarOp::Clamp { lo, hi } => Interval {
                        lo: vals[0].lo.max(*lo),
                        hi: vals[0].hi.min(*hi).max(*lo),
                    },
                    ScalarOp::Cast | ScalarOp::Copy => vals[0],
                };
                let out = self.clip(out, dt, &path);
                self.bufs[dst.buf.0] = self.bufs[dst.buf.0].join(out);
            }
            Stmt::VLoad { reg, buf, .. } => {
                self.regs[reg.0] = self.bufs[buf.0];
            }
            Stmt::VStore { buf, reg, .. } => {
                let dt = self.prog.buffer(*buf).ty.dtype;
                let v = self.clip(self.regs[reg.0], dt, &path);
                self.bufs[buf.0] = self.bufs[buf.0].join(v);
            }
            Stmt::VOp {
                pattern, dst, srcs, ..
            } => {
                let (dt, lanes) = self.prog.reg_types[dst.0];
                self.check_lanes(pattern, srcs, lanes, &path);
                let v = self.eval_pattern(pattern, srcs, dt, &path);
                self.regs[dst.0] = self.clip(v, dt, &path);
            }
            Stmt::KernelCall { output, .. } => {
                // Kernel outputs are opaque; assume the dtype's full range.
                let dt = self.prog.buffer(*output).ty.dtype;
                self.bufs[output.0] = Interval::full(dt);
            }
            Stmt::Copy { dst, src } => {
                self.bufs[dst.0] = self.bufs[dst.0].join(self.bufs[src.0]);
            }
        }
    }

    /// Raise the division lint for int ops whose divisor may be zero.
    fn check_op(&mut self, op: ElemOp, vals: &[Interval], dt: DataType, path: &[usize]) {
        let divisor = match op {
            ElemOp::Div if dt.is_int() && vals.len() >= 2 => vals[1],
            _ => return,
        };
        if divisor.contains(0.0) {
            self.report.push(
                LintCode::PossibleDivByZero,
                Location::Stmt {
                    path: path.to_vec(),
                },
                format!(
                    "integer division with divisor range {divisor} containing zero; \
                     the generated C would divide by zero"
                ),
            );
        }
    }

    /// Clip a result to the destination dtype, warning when it can escape.
    fn clip(&mut self, v: Interval, dt: DataType, path: &[usize]) -> Interval {
        if v.fits(dt) {
            return v;
        }
        self.report.push(
            LintCode::PossibleOverflow,
            Location::Stmt {
                path: path.to_vec(),
            },
            format!("result range {v} can exceed {dt}; value would wrap"),
        );
        Interval::full(dt)
    }

    fn check_lanes(
        &mut self,
        pattern: &Pattern,
        srcs: &[hcg_vm::RegId],
        dst_lanes: usize,
        path: &[usize],
    ) {
        for a in &pattern.args {
            match a {
                PatternArg::Input(slot) => {
                    let Some(reg) = srcs.get(*slot) else { continue };
                    let (_, lanes) = self.prog.reg_types[reg.0];
                    if lanes < dst_lanes {
                        self.report.push(
                            LintCode::LaneOutOfRange,
                            Location::Stmt {
                                path: path.to_vec(),
                            },
                            format!(
                                "vector op reads lane {} of r{} which has only {} lane(s)",
                                dst_lanes - 1,
                                reg.0,
                                lanes
                            ),
                        );
                    }
                }
                PatternArg::Node(inner) => self.check_lanes(inner, srcs, dst_lanes, path),
            }
        }
    }

    fn eval_pattern(
        &mut self,
        pattern: &Pattern,
        srcs: &[hcg_vm::RegId],
        dt: DataType,
        path: &[usize],
    ) -> Interval {
        let mut args = Vec::with_capacity(pattern.args.len());
        for a in &pattern.args {
            args.push(match a {
                PatternArg::Input(slot) => match srcs.get(*slot) {
                    Some(reg) => self.regs[reg.0],
                    None => Interval::full(dt),
                },
                PatternArg::Node(inner) => self.eval_pattern(inner, srcs, dt, path),
            });
        }
        if args.len() < pattern.op.arity() {
            return Interval::full(dt);
        }
        if pattern.op == ElemOp::Div && dt.is_int() && args[1].contains(0.0) {
            self.report.push(
                LintCode::PossibleDivByZero,
                Location::Stmt {
                    path: path.to_vec(),
                },
                format!(
                    "integer vector division with divisor range {} containing zero",
                    args[1]
                ),
            );
        }
        apply(pattern.op, &args, dt)
    }
}
