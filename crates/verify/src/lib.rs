//! Static translation validation for HCG-generated programs.
//!
//! The generators in `hcg-core` lower a scheduled dataflow model into a
//! C-shaped [`Program`](hcg_vm::Program) three different ways (conventional
//! unrolled scalar code, looped scalar code, SIMD-fused HCG code). This
//! crate proves — without executing anything — that a generated program
//! computes exactly what its model specifies:
//!
//! * [`expr`] interns symbolic expression trees into a hash-consed
//!   [`ExprArena`], canonicalizing commutative operand order so that
//!   structurally shuffled but equal computations share one id.
//! * [`prog`] abstractly interprets the generated statement list over those
//!   trees, unrolling loops and tracking vector registers, which normalises
//!   all three code shapes to identical per-element trees.
//! * [`model_sem`] derives the reference trees straight from the scheduled
//!   model graph — the symbolic twin of the golden reference interpreter.
//! * [`equiv`] compares the two sides per outport element (and per latched
//!   delay state) and reports [`VerifyOutcome::equivalent`] or a
//!   first-divergence [`Witness`] naming the statement to blame.
//! * [`effects`] computes per-statement / per-actor / per-region buffer
//!   read/write sets ([`EffectSummary`]) from the same walk shape.
//! * [`range`] runs an interval abstract interpretation powering the
//!   `program/possible-overflow`, `program/possible-div-by-zero` and
//!   `program/lane-out-of-range` lints.
//!
//! Soundness note: equivalence here is *structural equivalence of
//! canonicalized trees*. It never assumes algebraic identities beyond
//! commutativity of ops the ISA itself declares commutative, so a proof
//! implies bit-identical behaviour on every input; a divergence witness may
//! occasionally be a false alarm for rewrites the canonicalizer does not
//! know, which the generators do not perform today.

#![warn(missing_docs)]

pub mod effects;
pub mod equiv;
pub mod expr;
pub mod model_sem;
pub mod prog;
pub mod range;

pub use effects::{effect_summary, EffectSummary, StmtEffects};
pub use equiv::{verify_program, VerifyOutcome, Witness};
pub use expr::{ExprArena, ExprId, SymExpr};
pub use model_sem::{model_semantics, ModelSemantics};
pub use prog::{eval_program, ProgSummary};
pub use range::{range_lint, Interval};

use hcg_model::ModelError;

/// Why a verification run could not produce a verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The model itself failed validation, type inference or scheduling.
    Model(ModelError),
    /// The program uses a construct outside the verifier's (and the IR
    /// contract's) supported shape — nested loops, out-of-range accesses,
    /// mismatched buffer inventories.
    Unsupported(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Model(e) => write!(f, "model error: {e}"),
            VerifyError::Unsupported(msg) => write!(f, "unsupported program shape: {msg}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ModelError> for VerifyError {
    fn from(e: ModelError) -> Self {
        VerifyError::Model(e)
    }
}
