//! Read/write effect analysis over generated programs.
//!
//! Walks the statement list once (without symbolic evaluation) and records,
//! per top-level statement, which buffers each statement reads and writes —
//! then folds those sets per origin actor and per mapped SIMD region using
//! the program's [`Origin`](hcg_vm::Origin) metadata. The sets describe
//! exactly the buffer traffic the VM interpreter performs: loops that can
//! never run (empty trip count) contribute nothing, register-only vector
//! ops contribute nothing, and a `KernelCall` reads its whole input buffers
//! and writes its whole output buffer.

use std::collections::{BTreeMap, BTreeSet};

use hcg_vm::{Program, Stmt};

/// Buffers one unit of code (a statement, actor or region) reads and writes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmtEffects {
    /// Indices (into `Program::buffers`) of buffers read.
    pub reads: BTreeSet<usize>,
    /// Indices of buffers written.
    pub writes: BTreeSet<usize>,
}

impl StmtEffects {
    /// Merge another effect set into this one.
    pub fn absorb(&mut self, other: &StmtEffects) {
        self.reads.extend(other.reads.iter().copied());
        self.writes.extend(other.writes.iter().copied());
    }

    /// `true` when the unit neither reads nor writes any buffer.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// Per-statement, per-actor and per-region buffer effects of one program.
#[derive(Debug, Clone, Default)]
pub struct EffectSummary {
    /// One entry per top-level statement of `Program::body`.
    pub per_stmt: Vec<StmtEffects>,
    /// Effects folded by origin actor label (see
    /// [`Origin::label`](hcg_vm::Origin::label)).
    pub actors: BTreeMap<String, StmtEffects>,
    /// Effects folded by mapped-region index, for statements that carry one.
    pub regions: BTreeMap<usize, StmtEffects>,
}

/// Compute the program's buffer effect sets.
pub fn effect_summary(prog: &Program) -> EffectSummary {
    let mut summary = EffectSummary::default();
    for (i, stmt) in prog.body.iter().enumerate() {
        let mut eff = StmtEffects::default();
        collect(stmt, &mut eff);
        let origin = prog.origins.get(i);
        if let Some(o) = origin {
            summary
                .actors
                .entry(o.label().to_owned())
                .or_default()
                .absorb(&eff);
            if let Some(r) = o.region {
                summary.regions.entry(r).or_default().absorb(&eff);
            }
        }
        summary.per_stmt.push(eff);
    }
    summary
}

fn collect(stmt: &Stmt, eff: &mut StmtEffects) {
    match stmt {
        Stmt::Loop {
            start,
            end,
            step,
            body,
        } => {
            // A loop that never runs (or would never terminate — the lint
            // catches step 0 separately) performs no accesses, and the
            // dynamic access log must agree.
            if start < end && *step > 0 {
                for s in body {
                    collect(s, eff);
                }
            }
        }
        Stmt::Scalar { dst, srcs, .. } => {
            for s in srcs {
                eff.reads.insert(s.buf.0);
            }
            eff.writes.insert(dst.buf.0);
        }
        Stmt::VLoad { buf, .. } => {
            eff.reads.insert(buf.0);
        }
        Stmt::VStore { buf, .. } => {
            eff.writes.insert(buf.0);
        }
        Stmt::VOp { .. } => {}
        Stmt::KernelCall { inputs, output, .. } => {
            for b in inputs {
                eff.reads.insert(b.0);
            }
            eff.writes.insert(output.0);
        }
        Stmt::Copy { dst, src } => {
            eff.reads.insert(src.0);
            eff.writes.insert(dst.0);
        }
    }
}
