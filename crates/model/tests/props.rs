//! Property tests for the modeling front end: XML round trips, tensor
//! semantics, parameter text forms, and schedule invariants.

use hcg_model::op::{eval_binary_i, wrap_int, ElemOp};
use hcg_model::xml::{escape, parse, XmlElement};
use hcg_model::{library, schedule::schedule, DataType, Param, SignalType, Tensor};
use proptest::prelude::*;

fn arb_dtype() -> impl Strategy<Value = DataType> {
    prop::sample::select(DataType::ALL.to_vec())
}

fn arb_int_dtype() -> impl Strategy<Value = DataType> {
    prop::sample::select(
        DataType::ALL
            .iter()
            .copied()
            .filter(|d| d.is_int())
            .collect::<Vec<_>>(),
    )
}

proptest! {
    /// Any text survives XML attribute and text-node round trips.
    #[test]
    fn xml_text_roundtrip(attr in "[ -~]{0,40}", body in "[ -~]{0,60}") {
        let mut el = XmlElement::new("t").with_attr("a", attr.clone());
        el.text = body.trim().to_owned();
        let parsed = parse(&el.to_xml()).expect("writer output parses");
        prop_assert_eq!(parsed.attr("a"), Some(attr.as_str()));
        prop_assert_eq!(parsed.text, body.trim());
    }

    /// Escaping never produces characters that break markup.
    #[test]
    fn escape_is_markup_safe(s in "\\PC{0,80}") {
        let e = escape(&s);
        prop_assert!(!e.contains('<'));
        prop_assert!(!e.contains('>') || !s.contains('>') || !e.contains("<"));
        prop_assert!(!e.contains('"'));
    }

    /// Param text form round-trips for all numeric shapes.
    #[test]
    fn param_text_roundtrip(ints in prop::collection::vec(-1000i64..1000, 1..6),
                            floats in prop::collection::vec(-100.0f64..100.0, 1..6)) {
        let p1 = if ints.len() == 1 { Param::Int(ints[0]) } else { Param::IntVec(ints) };
        prop_assert_eq!(Param::parse(&p1.to_string()), p1);
        // Floats that happen to be whole still round-trip as floats.
        let cleaned: Vec<f64> = floats.iter().map(|v| (v * 4.0).round() / 4.0).collect();
        let p2 = if cleaned.len() == 1 {
            Param::Float(cleaned[0])
        } else {
            Param::FloatVec(cleaned)
        };
        prop_assert_eq!(Param::parse(&p2.to_string()), p2);
    }

    /// wrap_int is idempotent and stays in range.
    #[test]
    fn wrap_int_idempotent(dtype in arb_int_dtype(), v in any::<i64>()) {
        let w = wrap_int(dtype, v);
        prop_assert_eq!(wrap_int(dtype, w), w);
        if dtype.bit_width() < 64 {
            let bound = 1i64 << (dtype.bit_width() - 1);
            if dtype.is_signed() {
                prop_assert!((-bound..bound).contains(&w));
            } else {
                prop_assert!((0..2 * bound).contains(&w));
            }
        }
    }

    /// Integer Add/Mul are commutative under wrapping semantics; Sub obeys
    /// a - b == -(b - a) except at the asymmetric minimum.
    #[test]
    fn int_op_algebra(dtype in arb_int_dtype(), a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (a as i64, b as i64);
        prop_assert_eq!(
            eval_binary_i(ElemOp::Add, dtype, a, b),
            eval_binary_i(ElemOp::Add, dtype, b, a)
        );
        prop_assert_eq!(
            eval_binary_i(ElemOp::Mul, dtype, a, b),
            eval_binary_i(ElemOp::Mul, dtype, b, a)
        );
        prop_assert_eq!(
            eval_binary_i(ElemOp::Min, dtype, a, b).min(eval_binary_i(ElemOp::Max, dtype, a, b)),
            eval_binary_i(ElemOp::Min, dtype, a, b)
        );
    }

    /// Tensor binary ops match the scalar reference element-wise.
    #[test]
    fn tensor_matches_scalar_semantics(
        dtype in arb_dtype(),
        a in prop::collection::vec(-100i64..100, 1..20),
    ) {
        let n = a.len();
        let b: Vec<i64> = a.iter().map(|v| v * 3 - 7).collect();
        let ty = SignalType::vector(dtype, n);
        let ta = Tensor::from_i64(ty, a.clone()).expect("sized");
        let tb = Tensor::from_i64(ty, b.clone()).expect("sized");
        let sum = ta.binary(ElemOp::Add, &tb).expect("add works on all dtypes");
        for i in 0..n {
            let expect = if dtype.is_float() {
                (wrapf(dtype, a[i]) + wrapf(dtype, b[i])) as i64
            } else {
                eval_binary_i(ElemOp::Add, dtype, a[i], b[i])
            };
            prop_assert_eq!(sum.as_i64()[i], expect);
        }
    }

    /// Every random model validates, schedules, and schedules the same way
    /// twice (determinism).
    #[test]
    fn random_models_schedule_deterministically(seed in 1u64..2000, n in 1usize..30, k in 1usize..12) {
        let m = library::random_batch_model(seed, n, k);
        m.infer_types().expect("valid");
        let s1 = schedule(&m).expect("schedules");
        let s2 = schedule(&m).expect("schedules");
        prop_assert_eq!(&s1, &s2);
        // Topological: every connection (except out of delays) goes forward.
        let pos = s1.positions();
        for c in &m.connections {
            if m.actor(c.from.actor).kind != hcg_model::ActorKind::UnitDelay {
                prop_assert!(pos[c.from.actor.0] < pos[c.to.actor.0]);
            }
        }
    }

    /// Model files round-trip for arbitrary random models.
    #[test]
    fn model_file_roundtrip(seed in 1u64..2000, n in 1usize..20, k in 1usize..10) {
        use hcg_model::parser::{model_from_xml, model_to_xml};
        let m = library::random_batch_model(seed, n, k);
        let back = model_from_xml(&model_to_xml(&m)).expect("parses");
        prop_assert_eq!(back, m);
    }
}

fn wrapf(dtype: DataType, v: i64) -> f64 {
    if dtype.is_float() {
        v as f64
    } else {
        wrap_int(dtype, v) as f64
    }
}
