//! Fluent construction of [`Model`]s.

use crate::actor::{Actor, ActorId, ActorKind};
use crate::model::{Connection, Model, ModelError, PortRef};
use crate::types::{Param, SignalType};
use std::collections::BTreeMap;

/// Incremental builder for [`Model`]s.
///
/// # Examples
///
/// ```
/// use hcg_model::{ModelBuilder, ActorKind, SignalType, DataType};
///
/// # fn main() -> Result<(), hcg_model::ModelError> {
/// let mut b = ModelBuilder::new("double");
/// let x = b.inport("x", SignalType::vector(DataType::F32, 4));
/// let add = b.add_actor("sum", ActorKind::Add);
/// let y = b.outport("y");
/// b.connect(x, 0, add, 0);
/// b.connect(x, 0, add, 1);
/// b.connect(add, 0, y, 0);
/// let model = b.build()?;
/// assert_eq!(model.actors.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModelBuilder {
    name: String,
    actors: Vec<Actor>,
    connections: Vec<Connection>,
}

impl ModelBuilder {
    /// Start a new empty model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder {
            name: name.into(),
            actors: Vec::new(),
            connections: Vec::new(),
        }
    }

    /// Add an actor of the given kind; returns its id.
    pub fn add_actor(&mut self, name: impl Into<String>, kind: ActorKind) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Actor {
            id,
            name: name.into(),
            kind,
            params: BTreeMap::new(),
        });
        id
    }

    /// Set (or overwrite) a parameter on an existing actor.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder.
    pub fn set_param(&mut self, id: ActorId, name: impl Into<String>, value: Param) -> &mut Self {
        self.actors[id.0].params.insert(name.into(), value);
        self
    }

    /// Add an `Inport` with a declared signal type.
    pub fn inport(&mut self, name: impl Into<String>, ty: SignalType) -> ActorId {
        let id = self.add_actor(name, ActorKind::Inport);
        self.set_param(id, "type", Param::Str(ty.to_string()));
        id
    }

    /// Add an `Outport`.
    pub fn outport(&mut self, name: impl Into<String>) -> ActorId {
        self.add_actor(name, ActorKind::Outport)
    }

    /// Add a `Constant` with a declared type and value (one value per
    /// element, or a single broadcast value).
    pub fn constant(
        &mut self,
        name: impl Into<String>,
        ty: SignalType,
        value: Vec<f64>,
    ) -> ActorId {
        let id = self.add_actor(name, ActorKind::Constant);
        self.set_param(id, "type", Param::Str(ty.to_string()));
        // Normalise so the textual model format round-trips exactly.
        let value = if value.len() == 1 {
            Param::Float(value[0])
        } else {
            Param::FloatVec(value)
        };
        self.set_param(id, "value", value);
        id
    }

    /// Add a `Gain` actor with the given factor.
    pub fn gain(&mut self, name: impl Into<String>, factor: f64) -> ActorId {
        let id = self.add_actor(name, ActorKind::Gain);
        self.set_param(id, "gain", Param::Float(factor));
        id
    }

    /// Add a `UnitDelay`, optionally with a declared type to break inference
    /// cycles.
    pub fn unit_delay(&mut self, name: impl Into<String>, ty: Option<SignalType>) -> ActorId {
        let id = self.add_actor(name, ActorKind::UnitDelay);
        if let Some(t) = ty {
            self.set_param(id, "type", Param::Str(t.to_string()));
        }
        id
    }

    /// Add a `Shr`/`Shl` actor with its shift amount.
    pub fn shift(&mut self, name: impl Into<String>, kind: ActorKind, amount: i64) -> ActorId {
        debug_assert!(matches!(kind, ActorKind::Shr | ActorKind::Shl));
        let id = self.add_actor(name, kind);
        self.set_param(id, "amount", Param::Int(amount));
        id
    }

    /// Wire output `from_port` of `from` to input `to_port` of `to`.
    pub fn connect(&mut self, from: ActorId, from_port: usize, to: ActorId, to_port: usize) {
        self.connections.push(Connection {
            from: PortRef::new(from, from_port),
            to: PortRef::new(to, to_port),
        });
    }

    /// Finish and validate structure + types.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the model is structurally invalid or does
    /// not type-check.
    pub fn build(self) -> Result<Model, ModelError> {
        let m = self.build_unchecked();
        m.infer_types()?;
        Ok(m)
    }

    /// Finish without any validation (useful for negative tests).
    pub fn build_unchecked(self) -> Model {
        Model {
            name: self.name,
            actors: self.actors,
            connections: self.connections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = ModelBuilder::new("m");
        let a = b.inport("a", SignalType::scalar(DataType::F32));
        let c = b.outport("c");
        assert_eq!(a, ActorId(0));
        assert_eq!(c, ActorId(1));
    }

    #[test]
    fn build_validates() {
        let mut b = ModelBuilder::new("m");
        b.add_actor("orphan_sum", ActorKind::Add);
        assert!(b.build().is_err());
    }

    #[test]
    fn helpers_set_required_params() {
        let mut b = ModelBuilder::new("m");
        let g = b.gain("g", 2.5);
        let s = b.shift("s", ActorKind::Shr, 1);
        let m = b.build_unchecked();
        assert_eq!(m.actor(g).param("gain"), Some(&Param::Float(2.5)));
        assert_eq!(m.actor(s).param("amount"), Some(&Param::Int(1)));
    }
}
