//! The model container: actors + connections, structural validation and
//! signal type inference (the "model parse" step ① of paper §2).

use crate::actor::{Actor, ActorId, ActorKind};
use crate::types::{DataType, Shape, SignalType};
use std::collections::BTreeMap;
use std::fmt;

/// A reference to one port of one actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRef {
    /// Owning actor.
    pub actor: ActorId,
    /// Port index on that actor (output index for sources, input index for
    /// destinations).
    pub port: usize,
}

impl PortRef {
    /// Convenience constructor.
    pub const fn new(actor: ActorId, port: usize) -> Self {
        PortRef { actor, port }
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.actor, self.port)
    }
}

/// A directed wire from an output port to an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Connection {
    /// Source output port.
    pub from: PortRef,
    /// Destination input port.
    pub to: PortRef,
}

/// Errors produced while building, validating or type-checking a model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Two actors share a name.
    DuplicateName(String),
    /// A connection references an actor id not present in the model.
    UnknownActor(ActorId),
    /// A connection references a port index outside the kind's port count.
    PortOutOfRange {
        /// Offending actor name.
        actor: String,
        /// Offending port index.
        port: usize,
    },
    /// Two connections target the same input port.
    InputAlreadyConnected {
        /// Offending actor name.
        actor: String,
        /// Offending port index.
        port: usize,
    },
    /// An input port has no incoming connection.
    UnconnectedInput {
        /// Offending actor name.
        actor: String,
        /// Offending port index.
        port: usize,
    },
    /// A required parameter is missing or malformed.
    BadParam {
        /// Offending actor name.
        actor: String,
        /// Parameter name.
        param: String,
    },
    /// Signal types at an actor are inconsistent with its kind.
    TypeMismatch {
        /// Offending actor name.
        actor: String,
        /// Human-readable explanation.
        message: String,
    },
    /// Type inference could not resolve every signal (an untyped feedback
    /// loop without a `UnitDelay` `type` parameter).
    Unresolved {
        /// First unresolved actor name.
        actor: String,
    },
    /// An edit op referenced an actor name not present in the model.
    UnknownName(String),
    /// The model has no actors.
    Empty,
    /// A combinational cycle (not broken by a `UnitDelay`).
    Cycle {
        /// An actor on the cycle.
        actor: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName(n) => write!(f, "duplicate actor name {n:?}"),
            ModelError::UnknownActor(id) => write!(f, "connection references unknown actor {id}"),
            ModelError::PortOutOfRange { actor, port } => {
                write!(f, "port {port} out of range on actor {actor:?}")
            }
            ModelError::InputAlreadyConnected { actor, port } => {
                write!(f, "input port {port} of actor {actor:?} has two drivers")
            }
            ModelError::UnconnectedInput { actor, port } => {
                write!(f, "input port {port} of actor {actor:?} is unconnected")
            }
            ModelError::BadParam { actor, param } => {
                write!(
                    f,
                    "actor {actor:?} is missing or has malformed parameter {param:?}"
                )
            }
            ModelError::TypeMismatch { actor, message } => {
                write!(f, "type error at actor {actor:?}: {message}")
            }
            ModelError::Unresolved { actor } => {
                write!(f, "could not infer signal types at actor {actor:?}")
            }
            ModelError::UnknownName(n) => write!(f, "no actor named {n:?}"),
            ModelError::Empty => f.write_str("model contains no actors"),
            ModelError::Cycle { actor } => {
                write!(
                    f,
                    "combinational cycle through actor {actor:?} (insert a UnitDelay)"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A complete block-diagram model: the in-memory result of model parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Model name.
    pub name: String,
    /// Actors, indexed by `ActorId(i) == actors[i].id`.
    pub actors: Vec<Actor>,
    /// Wires between actor ports.
    pub connections: Vec<Connection>,
}

/// Resolved signal types for every actor output port, produced by
/// [`Model::infer_types`].
#[derive(Debug, Clone, PartialEq)]
pub struct TypeMap {
    outputs: Vec<Vec<SignalType>>,
}

impl TypeMap {
    /// The resolved type of output `port` of `actor`.
    ///
    /// # Panics
    ///
    /// Panics if the actor id or port index is out of range.
    pub fn output(&self, actor: ActorId, port: usize) -> SignalType {
        self.outputs[actor.0][port]
    }

    /// All output types of one actor.
    pub fn outputs_of(&self, actor: ActorId) -> &[SignalType] {
        &self.outputs[actor.0]
    }

    /// The resolved types of every input port of `actor` in `model`.
    pub fn inputs_of(&self, model: &Model, actor: ActorId) -> Vec<SignalType> {
        (0..model.actors[actor.0].kind.input_count())
            .map(|p| {
                let src = model
                    .driver(PortRef::new(actor, p))
                    .expect("validated model has all inputs connected");
                self.output(src.actor, src.port)
            })
            .collect()
    }
}

impl Model {
    /// Access an actor by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn actor(&self, id: ActorId) -> &Actor {
        &self.actors[id.0]
    }

    /// Find an actor by name.
    pub fn actor_by_name(&self, name: &str) -> Option<&Actor> {
        self.actors.iter().find(|a| a.name == name)
    }

    /// The output port driving the given input port, if connected.
    pub fn driver(&self, input: PortRef) -> Option<PortRef> {
        self.connections
            .iter()
            .find(|c| c.to == input)
            .map(|c| c.from)
    }

    /// All input ports fed by the given output port.
    pub fn consumers(&self, output: PortRef) -> Vec<PortRef> {
        self.connections
            .iter()
            .filter(|c| c.from == output)
            .map(|c| c.to)
            .collect()
    }

    /// All `Inport` actors, in id order.
    pub fn inports(&self) -> Vec<&Actor> {
        self.actors
            .iter()
            .filter(|a| a.kind == ActorKind::Inport)
            .collect()
    }

    /// All `Outport` actors, in id order.
    pub fn outports(&self) -> Vec<&Actor> {
        self.actors
            .iter()
            .filter(|a| a.kind == ActorKind::Outport)
            .collect()
    }

    /// Structural validation: ids are dense, names unique, connections
    /// reference existing ports, every input is driven exactly once, and all
    /// required parameters are present.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found.
    pub fn validate_structure(&self) -> Result<(), ModelError> {
        if self.actors.is_empty() {
            return Err(ModelError::Empty);
        }
        let mut names = BTreeMap::new();
        for (i, a) in self.actors.iter().enumerate() {
            debug_assert_eq!(a.id.0, i, "actor ids must be dense");
            if names.insert(a.name.clone(), a.id).is_some() {
                return Err(ModelError::DuplicateName(a.name.clone()));
            }
            for p in a.kind.required_params() {
                if !a.params.contains_key(*p) {
                    return Err(ModelError::BadParam {
                        actor: a.name.clone(),
                        param: (*p).to_owned(),
                    });
                }
            }
        }
        let mut driven: BTreeMap<PortRef, ()> = BTreeMap::new();
        for c in &self.connections {
            for (end, is_output) in [(c.from, true), (c.to, false)] {
                let a = self
                    .actors
                    .get(end.actor.0)
                    .ok_or(ModelError::UnknownActor(end.actor))?;
                let limit = if is_output {
                    a.kind.output_count()
                } else {
                    a.kind.input_count()
                };
                if end.port >= limit {
                    return Err(ModelError::PortOutOfRange {
                        actor: a.name.clone(),
                        port: end.port,
                    });
                }
            }
            if driven.insert(c.to, ()).is_some() {
                let a = &self.actors[c.to.actor.0];
                return Err(ModelError::InputAlreadyConnected {
                    actor: a.name.clone(),
                    port: c.to.port,
                });
            }
        }
        for a in &self.actors {
            for p in 0..a.kind.input_count() {
                if !driven.contains_key(&PortRef::new(a.id, p)) {
                    return Err(ModelError::UnconnectedInput {
                        actor: a.name.clone(),
                        port: p,
                    });
                }
            }
        }
        Ok(())
    }

    /// Infer the signal type of every output port.
    ///
    /// Runs fixed-point propagation so that feedback loops through
    /// `UnitDelay` actors resolve (the delay forwards its input type once
    /// known, or declares one via an optional `type` parameter). After the
    /// fixed point, every actor's inputs are checked against its kind's
    /// typing rule.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when validation fails, a type rule is violated
    /// or inference cannot resolve every signal.
    pub fn infer_types(&self) -> Result<TypeMap, ModelError> {
        self.infer_types_seeded(&BTreeMap::new())
    }

    /// [`Model::infer_types`] with pre-resolved output types for a subset
    /// of actors, keyed by actor name.
    ///
    /// An incremental compiler seeds the types of *clean* actors — those
    /// outside the [`crate::delta::downstream_closure`] of an edit — whose
    /// fixed-point values cannot have changed, so propagation only has to
    /// resolve the dirty slice. With correct seeds the result is identical
    /// to a full [`Model::infer_types`] run: seeded values short-circuit
    /// propagation but every actor still passes the final consistency
    /// check.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] exactly as [`Model::infer_types`] does.
    pub fn infer_types_seeded(
        &self,
        known: &BTreeMap<String, SignalType>,
    ) -> Result<TypeMap, ModelError> {
        crate::stats::note_type_inference();
        self.validate_structure()?;
        let mut out: Vec<Vec<Option<SignalType>>> = self
            .actors
            .iter()
            .map(|a| {
                let seed = known.get(&a.name).copied();
                vec![seed; a.kind.output_count()]
            })
            .collect();

        // Fixed-point propagation.
        loop {
            let mut progressed = false;
            for a in &self.actors {
                if a.kind.output_count() == 0 || out[a.id.0][0].is_some() {
                    continue;
                }
                let ins: Vec<Option<SignalType>> = (0..a.kind.input_count())
                    .map(|p| {
                        self.driver(PortRef::new(a.id, p))
                            .and_then(|s| out[s.actor.0][s.port])
                    })
                    .collect();
                if let Some(t) = propagate(a, &ins)? {
                    out[a.id.0][0] = Some(t);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        // Everything must be resolved.
        for a in &self.actors {
            if out[a.id.0].iter().any(Option::is_none) {
                return Err(ModelError::Unresolved {
                    actor: a.name.clone(),
                });
            }
        }
        let map = TypeMap {
            outputs: out
                .into_iter()
                .map(|v| v.into_iter().map(Option::unwrap).collect())
                .collect(),
        };

        // Final consistency check with all inputs known.
        for a in &self.actors {
            let ins = map.inputs_of(self, a.id);
            check_actor(a, &ins, map.outputs_of(a.id))?;
        }
        Ok(map)
    }
}

fn type_err(a: &Actor, message: impl Into<String>) -> ModelError {
    ModelError::TypeMismatch {
        actor: a.name.clone(),
        message: message.into(),
    }
}

fn bad_param(a: &Actor, param: &str) -> ModelError {
    ModelError::BadParam {
        actor: a.name.clone(),
        param: param.to_owned(),
    }
}

/// Compute an output type from the (possibly partial) input types, returning
/// `Ok(None)` when more information is needed. Element-wise actors propagate
/// from their first known input so that delay loops converge; the final
/// [`check_actor`] pass enforces full consistency.
fn propagate(a: &Actor, ins: &[Option<SignalType>]) -> Result<Option<SignalType>, ModelError> {
    use ActorKind::*;
    let first_known = ins.iter().flatten().next().copied();
    // For element-wise ops with possible scalar broadcast, prefer an array
    // input as the representative.
    let array_known = ins
        .iter()
        .flatten()
        .find(|t| t.shape.is_array())
        .copied()
        .or(first_known);
    Ok(match a.kind {
        Inport | Constant => Some(a.type_param("type").ok_or_else(|| bad_param(a, "type"))?),
        Outport => None,
        Gain | Saturate | Neg | Abs | Recp | Sqrt | BitNot | Shr | Shl => first_known,
        UnitDelay => match a.type_param("type") {
            Some(t) => Some(t),
            None => first_known,
        },
        Cast => first_known.map(|t| {
            let to = a
                .param("to")
                .and_then(|p| match p {
                    crate::types::Param::Str(s) => s.parse::<DataType>().ok(),
                    _ => None,
                })
                .unwrap_or(t.dtype);
            SignalType {
                dtype: to,
                shape: t.shape,
            }
        }),
        Add | Sub | Mul | Div | BitAnd | BitOr | BitXor | Min | Max | Abd => array_known,
        Switch => ins
            .get(1)
            .copied()
            .flatten()
            .or(ins.get(2).copied().flatten()),
        MatMul => match (ins[0], ins[1]) {
            (Some(x), Some(y)) => {
                let (r, k1) = mat_dims(a, x)?;
                let (k2, c) = mat_dims(a, y)?;
                if k1 != k2 {
                    return Err(type_err(a, format!("inner dims {k1} vs {k2}")));
                }
                Some(SignalType::matrix(x.dtype, r, c))
            }
            _ => None,
        },
        MatInv => ins[0],
        MatDet => ins[0].map(|t| SignalType::scalar(t.dtype)),
        Fft => ins[0].map(|t| SignalType::vector(t.dtype, t.len() * 2)),
        Ifft => match ins[0] {
            Some(t) => {
                if t.len() % 2 != 0 {
                    return Err(type_err(a, "IFFT input length must be even"));
                }
                Some(SignalType::vector(t.dtype, t.len() / 2))
            }
            None => None,
        },
        Dct | Idct => ins[0].map(|t| SignalType::vector(t.dtype, t.len())),
        Conv => match (ins[0], ins[1]) {
            (Some(x), Some(y)) => Some(SignalType::vector(x.dtype, x.len() + y.len() - 1)),
            _ => None,
        },
        Fft2d => match ins[0] {
            Some(t) => {
                let (r, c) = mat_dims(a, t)?;
                Some(SignalType::matrix(t.dtype, r, c * 2))
            }
            None => None,
        },
        Dct2d => ins[0],
        Conv2d => match (ins[0], ins[1]) {
            (Some(x), Some(y)) => {
                let (r1, c1) = mat_dims(a, x)?;
                let (r2, c2) = mat_dims(a, y)?;
                Some(SignalType::matrix(x.dtype, r1 + r2 - 1, c1 + c2 - 1))
            }
            _ => None,
        },
    })
}

fn mat_dims(a: &Actor, t: SignalType) -> Result<(usize, usize), ModelError> {
    match t.shape {
        Shape::Matrix(r, c) => Ok((r, c)),
        other => Err(type_err(a, format!("expected matrix input, got {other}"))),
    }
}

/// Full consistency check once every type is known.
fn check_actor(a: &Actor, ins: &[SignalType], outs: &[SignalType]) -> Result<(), ModelError> {
    use ActorKind::*;
    if a.kind.float_only() && ins.iter().any(|t| !t.dtype.is_float()) {
        return Err(type_err(a, "requires floating-point input"));
    }
    if a.kind.int_only() && ins.iter().any(|t| !t.dtype.is_int()) {
        return Err(type_err(a, "requires integer input"));
    }
    match a.kind {
        Add | Sub | Mul | Div | BitAnd | BitOr | BitXor | Min | Max | Abd => {
            let (x, y) = (ins[0], ins[1]);
            if x.dtype != y.dtype {
                return Err(type_err(
                    a,
                    format!("mixed dtypes {} vs {}", x.dtype, y.dtype),
                ));
            }
            let shapes_ok =
                x.shape == y.shape || x.shape == Shape::Scalar || y.shape == Shape::Scalar;
            if !shapes_ok {
                return Err(type_err(
                    a,
                    format!("shape mismatch {} vs {}", x.shape, y.shape),
                ));
            }
        }
        Switch => {
            if ins[1] != ins[2] {
                return Err(type_err(a, "switch data inputs must have identical types"));
            }
            if ins[0].shape != Shape::Scalar && ins[0].shape != ins[1].shape {
                return Err(type_err(a, "switch control must be scalar or data-shaped"));
            }
        }
        Shr | Shl => {
            let amount = a
                .param("amount")
                .and_then(|p| p.as_int())
                .ok_or_else(|| bad_param(a, "amount"))?;
            if !(0..=63).contains(&amount) {
                return Err(bad_param(a, "amount"));
            }
        }
        Gain => {
            a.param("gain")
                .and_then(|p| p.as_float())
                .ok_or_else(|| bad_param(a, "gain"))?;
        }
        Saturate => {
            for p in ["min", "max"] {
                a.param(p)
                    .and_then(|v| v.as_float())
                    .ok_or_else(|| bad_param(a, p))?;
            }
        }
        Constant => {
            let t = outs[0];
            let v = a
                .param("value")
                .and_then(|p| p.as_float_vec())
                .ok_or_else(|| bad_param(a, "value"))?;
            if v.len() != t.len() && v.len() != 1 {
                return Err(type_err(
                    a,
                    format!(
                        "constant value has {} elements, type needs {}",
                        v.len(),
                        t.len()
                    ),
                ));
            }
        }
        MatInv | MatDet => {
            let (r, c) = mat_dims(a, ins[0])?;
            if r != c {
                return Err(type_err(a, "matrix must be square"));
            }
        }
        Fft | Ifft | Dct | Idct => {
            if !matches!(ins[0].shape, Shape::Vector(_)) {
                return Err(type_err(a, "expected vector input"));
            }
            if ins[0].is_empty() {
                return Err(type_err(a, "empty input"));
            }
        }
        Conv => {
            if ins.iter().any(|t| !matches!(t.shape, Shape::Vector(_))) {
                return Err(type_err(a, "expected vector inputs"));
            }
            if ins[0].dtype != ins[1].dtype {
                return Err(type_err(a, "mixed dtypes"));
            }
        }
        Conv2d | MatMul if ins[0].dtype != ins[1].dtype => {
            return Err(type_err(a, "mixed dtypes"));
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::types::Param;

    fn simple_chain() -> Model {
        let mut b = ModelBuilder::new("chain");
        let i = b.inport("x", SignalType::vector(DataType::I32, 8));
        let c = b.constant("k", SignalType::vector(DataType::I32, 8), vec![1.0; 8]);
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("y");
        b.connect(i, 0, add, 0);
        b.connect(c, 0, add, 1);
        b.connect(add, 0, o, 0);
        b.build().unwrap()
    }

    #[test]
    fn structure_ok_and_types_resolve() {
        let m = simple_chain();
        let t = m.infer_types().unwrap();
        let add = m.actor_by_name("sum").unwrap().id;
        assert_eq!(t.output(add, 0), SignalType::vector(DataType::I32, 8));
    }

    #[test]
    fn unconnected_input_rejected() {
        let mut b = ModelBuilder::new("bad");
        let i = b.inport("x", SignalType::scalar(DataType::F32));
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("y");
        b.connect(i, 0, add, 0);
        b.connect(add, 0, o, 0);
        let m = b.build_unchecked();
        assert!(matches!(
            m.validate_structure(),
            Err(ModelError::UnconnectedInput { .. })
        ));
    }

    #[test]
    fn double_driver_rejected() {
        let mut b = ModelBuilder::new("bad");
        let i = b.inport("x", SignalType::scalar(DataType::F32));
        let o = b.outport("y");
        b.connect(i, 0, o, 0);
        b.connect(i, 0, o, 0);
        let m = b.build_unchecked();
        assert!(matches!(
            m.validate_structure(),
            Err(ModelError::InputAlreadyConnected { .. })
        ));
    }

    #[test]
    fn mixed_dtype_rejected() {
        let mut b = ModelBuilder::new("bad");
        let x = b.inport("x", SignalType::vector(DataType::I32, 4));
        let y = b.inport("y", SignalType::vector(DataType::F32, 4));
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("o");
        b.connect(x, 0, add, 0);
        b.connect(y, 0, add, 1);
        b.connect(add, 0, o, 0);
        let m = b.build_unchecked();
        assert!(matches!(
            m.infer_types(),
            Err(ModelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn scalar_broadcast_allowed() {
        let mut b = ModelBuilder::new("bcast");
        let x = b.inport("x", SignalType::vector(DataType::F32, 16));
        let k = b.inport("k", SignalType::scalar(DataType::F32));
        let mul = b.add_actor("scale", ActorKind::Mul);
        let o = b.outport("o");
        b.connect(x, 0, mul, 0);
        b.connect(k, 0, mul, 1);
        b.connect(mul, 0, o, 0);
        let m = b.build().unwrap();
        let t = m.infer_types().unwrap();
        let mul_id = m.actor_by_name("scale").unwrap().id;
        assert_eq!(t.output(mul_id, 0), SignalType::vector(DataType::F32, 16));
    }

    #[test]
    fn fft_shape_doubles() {
        let mut b = ModelBuilder::new("fft");
        let x = b.inport("x", SignalType::vector(DataType::F32, 256));
        let f = b.add_actor("fft", ActorKind::Fft);
        let o = b.outport("o");
        b.connect(x, 0, f, 0);
        b.connect(f, 0, o, 0);
        let m = b.build().unwrap();
        let t = m.infer_types().unwrap();
        let f_id = m.actor_by_name("fft").unwrap().id;
        assert_eq!(t.output(f_id, 0), SignalType::vector(DataType::F32, 512));
    }

    #[test]
    fn fft_rejects_integer_input() {
        let mut b = ModelBuilder::new("fft");
        let x = b.inport("x", SignalType::vector(DataType::I32, 256));
        let f = b.add_actor("fft", ActorKind::Fft);
        let o = b.outport("o");
        b.connect(x, 0, f, 0);
        b.connect(f, 0, o, 0);
        let m = b.build_unchecked();
        assert!(matches!(
            m.infer_types(),
            Err(ModelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn conv_output_length() {
        let mut b = ModelBuilder::new("conv");
        let x = b.inport("x", SignalType::vector(DataType::F32, 100));
        let h = b.inport("h", SignalType::vector(DataType::F32, 9));
        let c = b.add_actor("conv", ActorKind::Conv);
        let o = b.outport("o");
        b.connect(x, 0, c, 0);
        b.connect(h, 0, c, 1);
        b.connect(c, 0, o, 0);
        let m = b.build().unwrap();
        let t = m.infer_types().unwrap();
        let cid = m.actor_by_name("conv").unwrap().id;
        assert_eq!(t.output(cid, 0), SignalType::vector(DataType::F32, 108));
    }

    #[test]
    fn matmul_dims() {
        let mut b = ModelBuilder::new("mm");
        let x = b.inport("x", SignalType::matrix(DataType::F64, 3, 4));
        let y = b.inport("y", SignalType::matrix(DataType::F64, 4, 2));
        let mm = b.add_actor("mm", ActorKind::MatMul);
        let o = b.outport("o");
        b.connect(x, 0, mm, 0);
        b.connect(y, 0, mm, 1);
        b.connect(mm, 0, o, 0);
        let m = b.build().unwrap();
        let t = m.infer_types().unwrap();
        let id = m.actor_by_name("mm").unwrap().id;
        assert_eq!(t.output(id, 0), SignalType::matrix(DataType::F64, 3, 2));
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let mut b = ModelBuilder::new("mm");
        let x = b.inport("x", SignalType::matrix(DataType::F64, 3, 4));
        let y = b.inport("y", SignalType::matrix(DataType::F64, 3, 2));
        let mm = b.add_actor("mm", ActorKind::MatMul);
        let o = b.outport("o");
        b.connect(x, 0, mm, 0);
        b.connect(y, 0, mm, 1);
        b.connect(mm, 0, o, 0);
        let m = b.build_unchecked();
        assert!(m.infer_types().is_err());
    }

    #[test]
    fn delay_feedback_loop_resolves() {
        // y = delay(y + x): types resolve through the loop from x.
        let mut b = ModelBuilder::new("acc");
        let x = b.inport("x", SignalType::vector(DataType::F32, 8));
        let add = b.add_actor("sum", ActorKind::Add);
        let d = b.add_actor("z1", ActorKind::UnitDelay);
        let o = b.outport("y");
        b.connect(x, 0, add, 0);
        b.connect(d, 0, add, 1);
        b.connect(add, 0, d, 0);
        b.connect(add, 0, o, 0);
        let m = b.build().unwrap();
        let t = m.infer_types().unwrap();
        let d_id = m.actor_by_name("z1").unwrap().id;
        assert_eq!(t.output(d_id, 0), SignalType::vector(DataType::F32, 8));
    }

    #[test]
    fn shift_amount_validated() {
        let mut b = ModelBuilder::new("sh");
        let x = b.inport("x", SignalType::vector(DataType::I32, 8));
        let s = b.add_actor("shr", ActorKind::Shr);
        b.set_param(s, "amount", Param::Int(99));
        let o = b.outport("y");
        b.connect(x, 0, s, 0);
        b.connect(s, 0, o, 0);
        let m = b.build_unchecked();
        assert!(matches!(m.infer_types(), Err(ModelError::BadParam { .. })));
    }

    #[test]
    fn empty_model_rejected() {
        let m = Model {
            name: "empty".into(),
            actors: vec![],
            connections: vec![],
        };
        assert_eq!(m.validate_structure(), Err(ModelError::Empty));
    }
}
