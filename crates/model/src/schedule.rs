//! Schedule analysis (step ② of paper §2): a deterministic execution order
//! for the actors of one simulation step.
//!
//! Edges leaving a `UnitDelay` do not constrain ordering — the delay's output
//! is state computed in the *previous* step — which is how feedback loops are
//! legal. A cycle not broken by a delay is a combinational cycle and is
//! rejected.

use crate::actor::{ActorId, ActorKind};
use crate::model::{Model, ModelError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A valid execution order for a model's actors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Actor ids in execution order. `UnitDelay` actors appear in the order
    /// too (their position is where the *next* state is latched, i.e. after
    /// their driver).
    pub order: Vec<ActorId>,
}

impl Schedule {
    /// Position of each actor in the order (inverse permutation).
    pub fn positions(&self) -> Vec<usize> {
        let mut pos = vec![0; self.order.len()];
        for (i, a) in self.order.iter().enumerate() {
            pos[a.0] = i;
        }
        pos
    }
}

/// Compute a deterministic topological schedule.
///
/// Ties are broken by ascending [`ActorId`], so the schedule is reproducible
/// across runs — a property the code generators rely on when naming
/// variables.
///
/// # Errors
///
/// Returns [`ModelError::Cycle`] naming an actor on a combinational cycle.
pub fn schedule(model: &Model) -> Result<Schedule, ModelError> {
    crate::stats::note_schedule();
    let n = model.actors.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in &model.connections {
        let from = c.from.actor.0;
        let to = c.to.actor.0;
        // State edges (out of a delay) do not order execution.
        if model.actors[from].kind == ActorKind::UnitDelay {
            continue;
        }
        succs[from].push(to);
        indegree[to] += 1;
    }

    let mut ready: BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&i| indegree[i] == 0).map(Reverse).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(i)) = ready.pop() {
        order.push(ActorId(i));
        for &s in &succs[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(Reverse(s));
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n)
            .find(|&i| indegree[i] > 0)
            .expect("some actor must have positive indegree");
        return Err(ModelError::Cycle {
            actor: model.actors[stuck].name.clone(),
        });
    }
    Ok(Schedule { order })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::types::{DataType, SignalType};

    #[test]
    fn chain_is_in_order() {
        let mut b = ModelBuilder::new("m");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let g = b.gain("g", 2.0);
        let o = b.outport("o");
        b.connect(x, 0, g, 0);
        b.connect(g, 0, o, 0);
        let m = b.build().unwrap();
        let s = schedule(&m).unwrap();
        let pos = s.positions();
        assert!(pos[x.0] < pos[g.0]);
        assert!(pos[g.0] < pos[o.0]);
    }

    #[test]
    fn delay_breaks_cycle() {
        let mut b = ModelBuilder::new("acc");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let add = b.add_actor("sum", ActorKind::Add);
        let d = b.add_actor("z1", ActorKind::UnitDelay);
        let o = b.outport("y");
        b.connect(x, 0, add, 0);
        b.connect(d, 0, add, 1);
        b.connect(add, 0, d, 0);
        b.connect(add, 0, o, 0);
        let m = b.build().unwrap();
        let s = schedule(&m).unwrap();
        let pos = s.positions();
        // The delay latches after its driver (the adder) runs.
        assert!(pos[add.0] < pos[d.0]);
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = ModelBuilder::new("loop");
        let a = b.add_actor("a", ActorKind::Abs);
        let n = b.add_actor("n", ActorKind::Neg);
        let o = b.outport("o");
        b.connect(a, 0, n, 0);
        b.connect(n, 0, a, 0);
        b.connect(n, 0, o, 0);
        let m = b.build_unchecked();
        assert!(matches!(schedule(&m), Err(ModelError::Cycle { .. })));
    }

    #[test]
    fn deterministic_tie_break() {
        let mut b = ModelBuilder::new("par");
        let x = b.inport("x", SignalType::vector(DataType::F32, 4));
        let g1 = b.gain("g1", 1.0);
        let g2 = b.gain("g2", 2.0);
        let o1 = b.outport("o1");
        let o2 = b.outport("o2");
        b.connect(x, 0, g1, 0);
        b.connect(x, 0, g2, 0);
        b.connect(g1, 0, o1, 0);
        b.connect(g2, 0, o2, 0);
        let m = b.build().unwrap();
        let s1 = schedule(&m).unwrap();
        let s2 = schedule(&m).unwrap();
        assert_eq!(s1, s2);
        let pos = s1.positions();
        assert!(pos[g1.0] < pos[g2.0], "ids break ties");
    }
}
