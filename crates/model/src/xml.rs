//! A small from-scratch XML reader/writer.
//!
//! The paper's implementation parses Simulink `.slx` model files with
//! TinyXML (§3.3); this module is the equivalent substrate. It supports the
//! subset of XML that block-diagram model files use: elements, attributes,
//! text content, self-closing tags, comments, processing instructions/
//! declarations, and the five predefined entities.

use std::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements (text nodes are accumulated into [`XmlElement::text`]).
    pub children: Vec<XmlElement>,
    /// Concatenated character data directly inside this element.
    pub text: String,
}

impl XmlElement {
    /// An element with no attributes, children or text.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Add an attribute (builder style).
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Add a child element (builder style).
    pub fn with_child(mut self, child: XmlElement) -> Self {
        self.children.push(child);
        self
    }

    /// All children with the given tag name.
    pub fn children_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// First child with the given tag name.
    pub fn child<'a>(&'a self, name: &str) -> Option<&'a XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Serialise to a string with 2-space indentation.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write(out, depth + 1);
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Escape the five predefined XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

/// Parse a document and return its root element.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed input (unterminated tags, mismatched
/// close tags, bad entities, trailing content).
///
/// # Examples
///
/// ```
/// use hcg_model::xml::parse;
/// # fn main() -> Result<(), hcg_model::xml::XmlError> {
/// let doc = parse("<model name=\"m\"><actor kind=\"Add\"/></model>")?;
/// assert_eq!(doc.attr("name"), Some("m"));
/// assert_eq!(doc.children.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_misc()
    }

    /// Skip whitespace, comments, declarations and processing instructions.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!") {
                // DOCTYPE and friends — skip to the closing '>'.
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        let hay = &self.bytes[self.pos..];
        match hay.windows(end.len()).position(|w| w == end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected {end:?}"))),
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut el = XmlElement::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .filter(|&q| q == b'"' || q == b'\'')
                        .ok_or_else(|| self.err("expected quoted attribute value"))?;
                    self.pos += 1;
                    let value = self.parse_text_until(quote)?;
                    self.expect(quote)?;
                    el.attrs.push((attr, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content.
        loop {
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != el.name {
                    return Err(self.err(format!(
                        "mismatched close tag </{}> for <{}>",
                        close, el.name
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                el.text = el.text.trim().to_owned();
                return Ok(el);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    el.children.push(child);
                }
                Some(_) => {
                    let t = self.parse_text_until(b'<')?;
                    el.text.push_str(&t);
                }
                None => return Err(self.err(format!("unterminated element <{}>", el.name))),
            }
        }
    }

    /// Read character data until (not including) the terminator byte,
    /// resolving entities.
    fn parse_text_until(&mut self, terminator: u8) -> Result<String, XmlError> {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if c == terminator {
                return Ok(out);
            }
            if c == b'&' {
                let rest = &self.bytes[self.pos..];
                let semi = rest
                    .iter()
                    .position(|&b| b == b';')
                    .ok_or_else(|| self.err("unterminated entity"))?;
                let ent = &rest[1..semi];
                let ch = match ent {
                    b"lt" => '<',
                    b"gt" => '>',
                    b"amp" => '&',
                    b"quot" => '"',
                    b"apos" => '\'',
                    _ if ent.first() == Some(&b'#') => {
                        let num = &ent[1..];
                        let code = if num.first() == Some(&b'x') {
                            u32::from_str_radix(&String::from_utf8_lossy(&num[1..]), 16)
                        } else {
                            String::from_utf8_lossy(num).parse()
                        }
                        .map_err(|_| self.err("bad character reference"))?;
                        char::from_u32(code).ok_or_else(|| self.err("bad character reference"))?
                    }
                    _ => return Err(self.err("unknown entity")),
                };
                out.push(ch);
                self.pos += semi + 1;
            } else {
                // Multi-byte UTF-8 passes through untouched.
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                    self.pos += 1;
                }
                out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
            }
        }
        Err(self.err("unexpected end of input in character data"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.name, "a");
        assert!(doc.attrs.is_empty());
    }

    #[test]
    fn attributes_and_children() {
        let doc = parse(r#"<m name="top"><x k="1"/><x k="2"/><y/></m>"#).unwrap();
        assert_eq!(doc.attr("name"), Some("top"));
        assert_eq!(doc.children_named("x").count(), 2);
        assert_eq!(doc.child("y").unwrap().name, "y");
        assert_eq!(doc.children[1].attr("k"), Some("2"));
    }

    #[test]
    fn text_content() {
        let doc = parse("<p>hello <b>world</b> tail</p>").unwrap();
        assert!(doc.text.contains("hello"));
        assert_eq!(doc.child("b").unwrap().text, "world");
    }

    #[test]
    fn entities_decode() {
        let doc = parse(r#"<p a="&lt;&gt;&amp;&quot;&apos;">&#65;&#x42;</p>"#).unwrap();
        assert_eq!(doc.attr("a"), Some("<>&\"'"));
        assert_eq!(doc.text, "AB");
    }

    #[test]
    fn comments_and_prolog_skipped() {
        let doc = parse(
            "<?xml version=\"1.0\"?>\n<!-- c1 --><root><!-- inside --><a/></root><!-- after -->",
        )
        .unwrap();
        assert_eq!(doc.children.len(), 1);
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<a k='v'/>").unwrap();
        assert_eq!(doc.attr("k"), Some("v"));
    }

    #[test]
    fn mismatched_close_rejected() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"));
    }

    #[test]
    fn unterminated_rejected() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a b=>").is_err());
        assert!(parse("<a b=\"x>").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn roundtrip_write_parse() {
        let el = XmlElement::new("model")
            .with_attr("name", "t<&>t")
            .with_child(XmlElement::new("actor").with_attr("kind", "Add"))
            .with_child(XmlElement::new("note"));
        let text = el.to_xml();
        let back = parse(&text).unwrap();
        assert_eq!(back.attr("name"), Some("t<&>t"));
        assert_eq!(back.children.len(), 2);
    }

    #[test]
    fn utf8_text_preserved() {
        let doc = parse("<p>héllo — 世界</p>").unwrap();
        assert_eq!(doc.text, "héllo — 世界");
    }
}
