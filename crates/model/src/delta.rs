//! Model diffing and edit application: the substrate of incremental
//! recompilation.
//!
//! An interactive editor (or the fuzzer) changes one actor at a time; the
//! compile pipeline wants to know *what* changed so it can invalidate only
//! the affected artifacts. This module provides:
//!
//! * [`EditOp`] — one primitive, name-addressed model edit (actors are
//!   addressed by name because [`crate::ActorId`]s shift when actors are
//!   added or removed);
//! * [`Model::apply_edit`] — structural application of one op (no type
//!   checking, so an edit sequence may pass through invalid intermediate
//!   states and a later edit can fix them);
//! * [`ModelDelta`] — an ordered edit sequence, with [`ModelDelta::diff`]
//!   recovering one from two model snapshots and
//!   [`ModelDelta::touched_actors`] reporting the actors it dirties;
//! * [`downstream_closure`] — the forward slice of a set of actors, which
//!   is exactly the set whose inferred types may change after an edit.

use crate::actor::{Actor, ActorId, ActorKind};
use crate::model::{Connection, Model, ModelError, PortRef};
use crate::types::Param;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A named wire endpoint: actor name plus port index.
pub type NamedPort = (String, usize);

/// One primitive model edit. Actors are addressed by name, not id, so an
/// op remains meaningful while surrounding actors come and go.
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// Add a new actor (id assigned at the end of the actor list).
    AddActor {
        /// Unique name for the new actor.
        name: String,
        /// Actor kind.
        kind: ActorKind,
        /// Initial parameters.
        params: BTreeMap<String, Param>,
    },
    /// Remove an actor and every wire touching it; remaining ids are
    /// re-densified.
    RemoveActor {
        /// Name of the actor to remove.
        name: String,
    },
    /// Change an actor's kind, keeping its name, wires and parameters.
    SetKind {
        /// Target actor name.
        name: String,
        /// New kind.
        kind: ActorKind,
    },
    /// Insert or overwrite one parameter.
    SetParam {
        /// Target actor name.
        name: String,
        /// Parameter key.
        param: String,
        /// New value.
        value: Param,
    },
    /// Delete one parameter (no-op if absent).
    RemoveParam {
        /// Target actor name.
        name: String,
        /// Parameter key.
        param: String,
    },
    /// Set the driver of an input port, replacing any existing driver
    /// (every input has at most one).
    Connect {
        /// Source output port (actor name, output index).
        from: NamedPort,
        /// Destination input port (actor name, input index).
        to: NamedPort,
    },
    /// Remove the driver of an input port (no-op if undriven).
    Disconnect {
        /// Destination input port (actor name, input index).
        to: NamedPort,
    },
}

impl EditOp {
    /// Names of the actors this op directly edits. Indirectly affected
    /// actors (e.g. consumers of a removed actor) are resolved against a
    /// concrete model by [`ModelDelta::touched_actors`].
    pub fn touched(&self) -> Vec<&str> {
        match self {
            EditOp::AddActor { name, .. }
            | EditOp::RemoveActor { name }
            | EditOp::SetKind { name, .. }
            | EditOp::SetParam { name, .. }
            | EditOp::RemoveParam { name, .. } => vec![name],
            EditOp::Connect { from, to } => vec![&from.0, &to.0],
            EditOp::Disconnect { to } => vec![&to.0],
        }
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditOp::AddActor { name, kind, .. } => write!(f, "add {name:?} ({kind})"),
            EditOp::RemoveActor { name } => write!(f, "remove {name:?}"),
            EditOp::SetKind { name, kind } => write!(f, "retype {name:?} -> {kind}"),
            EditOp::SetParam { name, param, .. } => write!(f, "set {name:?}.{param}"),
            EditOp::RemoveParam { name, param } => write!(f, "unset {name:?}.{param}"),
            EditOp::Connect { from, to } => {
                write!(f, "connect {}:{} -> {}:{}", from.0, from.1, to.0, to.1)
            }
            EditOp::Disconnect { to } => write!(f, "disconnect -> {}:{}", to.0, to.1),
        }
    }
}

impl Model {
    fn id_of(&self, name: &str) -> Result<ActorId, ModelError> {
        self.actor_by_name(name)
            .map(|a| a.id)
            .ok_or_else(|| ModelError::UnknownName(name.to_owned()))
    }

    /// Apply one [`EditOp`] in place.
    ///
    /// Application is purely structural: names must resolve and stay
    /// unique, but no type or connectivity rules are enforced, so an edit
    /// sequence may pass through invalid intermediate models (run
    /// [`Model::front_end`] to validate the result).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownName`] when a named actor does not
    /// exist and [`ModelError::DuplicateName`] when an added actor's name
    /// is taken.
    pub fn apply_edit(&mut self, op: &EditOp) -> Result<(), ModelError> {
        match op {
            EditOp::AddActor { name, kind, params } => {
                if self.actor_by_name(name).is_some() {
                    return Err(ModelError::DuplicateName(name.clone()));
                }
                self.actors.push(Actor {
                    id: ActorId(self.actors.len()),
                    name: name.clone(),
                    kind: *kind,
                    params: params.clone(),
                });
            }
            EditOp::RemoveActor { name } => {
                let id = self.id_of(name)?;
                self.actors.remove(id.0);
                // Drop wires touching the actor, then re-densify ids.
                self.connections
                    .retain(|c| c.from.actor != id && c.to.actor != id);
                let remap = |p: &mut PortRef| {
                    if p.actor.0 > id.0 {
                        p.actor.0 -= 1;
                    }
                };
                for c in &mut self.connections {
                    remap(&mut c.from);
                    remap(&mut c.to);
                }
                for (i, a) in self.actors.iter_mut().enumerate() {
                    a.id = ActorId(i);
                }
            }
            EditOp::SetKind { name, kind } => {
                let id = self.id_of(name)?;
                self.actors[id.0].kind = *kind;
            }
            EditOp::SetParam { name, param, value } => {
                let id = self.id_of(name)?;
                self.actors[id.0]
                    .params
                    .insert(param.clone(), value.clone());
            }
            EditOp::RemoveParam { name, param } => {
                let id = self.id_of(name)?;
                self.actors[id.0].params.remove(param);
            }
            EditOp::Connect { from, to } => {
                let src = PortRef::new(self.id_of(&from.0)?, from.1);
                let dst = PortRef::new(self.id_of(&to.0)?, to.1);
                self.connections.retain(|c| c.to != dst);
                self.connections.push(Connection { from: src, to: dst });
            }
            EditOp::Disconnect { to } => {
                let dst = PortRef::new(self.id_of(&to.0)?, to.1);
                self.connections.retain(|c| c.to != dst);
            }
        }
        Ok(())
    }
}

/// An ordered sequence of [`EditOp`]s taking one model to another.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelDelta {
    /// Edits in application order.
    pub ops: Vec<EditOp>,
}

impl ModelDelta {
    /// A delta containing a single op.
    pub fn single(op: EditOp) -> Self {
        ModelDelta { ops: vec![op] }
    }

    /// True when the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// True when any op changes model *structure* (actors, kinds or wires)
    /// rather than only parameters. A schedule stays valid across a
    /// non-structural delta. `SetKind` is structural because retyping to
    /// or from [`ActorKind::UnitDelay`] changes which edges the scheduler
    /// follows.
    pub fn structural(&self) -> bool {
        self.ops.iter().any(|op| {
            matches!(
                op,
                EditOp::AddActor { .. }
                    | EditOp::RemoveActor { .. }
                    | EditOp::SetKind { .. }
                    | EditOp::Connect { .. }
                    | EditOp::Disconnect { .. }
            )
        })
    }

    /// Diff two models into an edit sequence such that
    /// `diff(old, new).apply(old)` is equivalent to `new` (same actors by
    /// name, same wires; ids and ordering may differ).
    ///
    /// Actors are matched by name: removals come first, then additions,
    /// kind/parameter updates, and finally wire changes keyed by their
    /// destination port (each input has exactly one driver).
    pub fn diff(old: &Model, new: &Model) -> ModelDelta {
        let mut ops = Vec::new();
        let old_names: BTreeMap<&str, &Actor> =
            old.actors.iter().map(|a| (a.name.as_str(), a)).collect();
        let new_names: BTreeMap<&str, &Actor> =
            new.actors.iter().map(|a| (a.name.as_str(), a)).collect();

        for a in &old.actors {
            if !new_names.contains_key(a.name.as_str()) {
                ops.push(EditOp::RemoveActor {
                    name: a.name.clone(),
                });
            }
        }
        for a in &new.actors {
            match old_names.get(a.name.as_str()) {
                None => ops.push(EditOp::AddActor {
                    name: a.name.clone(),
                    kind: a.kind,
                    params: a.params.clone(),
                }),
                Some(prev) => {
                    if prev.kind != a.kind {
                        ops.push(EditOp::SetKind {
                            name: a.name.clone(),
                            kind: a.kind,
                        });
                    }
                    for (k, v) in &a.params {
                        if prev.params.get(k) != Some(v) {
                            ops.push(EditOp::SetParam {
                                name: a.name.clone(),
                                param: k.clone(),
                                value: v.clone(),
                            });
                        }
                    }
                    for k in prev.params.keys() {
                        if !a.params.contains_key(k) {
                            ops.push(EditOp::RemoveParam {
                                name: a.name.clone(),
                                param: k.clone(),
                            });
                        }
                    }
                }
            }
        }

        // Wires, keyed by named destination port.
        let named = |m: &Model, p: PortRef| (m.actors[p.actor.0].name.clone(), p.port);
        let old_drivers: BTreeMap<NamedPort, NamedPort> = old
            .connections
            .iter()
            .map(|c| (named(old, c.to), named(old, c.from)))
            .collect();
        let new_drivers: BTreeMap<NamedPort, NamedPort> = new
            .connections
            .iter()
            .map(|c| (named(new, c.to), named(new, c.from)))
            .collect();
        for (to, _) in old_drivers.iter() {
            // Wires to removed actors vanish with the RemoveActor op.
            if !new_drivers.contains_key(to) && new_names.contains_key(to.0.as_str()) {
                ops.push(EditOp::Disconnect { to: to.clone() });
            }
        }
        for (to, from) in new_drivers.iter() {
            if old_drivers.get(to) != Some(from) {
                ops.push(EditOp::Connect {
                    from: from.clone(),
                    to: to.clone(),
                });
            }
        }
        ModelDelta { ops }
    }

    /// Apply every op to a copy of `model`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] from [`Model::apply_edit`].
    pub fn apply(&self, model: &Model) -> Result<Model, ModelError> {
        let mut m = model.clone();
        for op in &self.ops {
            m.apply_edit(op)?;
        }
        Ok(m)
    }

    /// Every actor name this delta dirties, resolved against the model the
    /// delta applies to: the directly edited actors plus, for removals and
    /// rewires, the consumers whose driver changes.
    pub fn touched_actors(&self, before: &Model) -> BTreeSet<String> {
        let mut touched = BTreeSet::new();
        for op in &self.ops {
            for n in op.touched() {
                touched.insert(n.to_owned());
            }
            if let EditOp::RemoveActor { name } = op {
                if let Some(a) = before.actor_by_name(name) {
                    for c in &before.connections {
                        if c.from.actor == a.id {
                            touched.insert(before.actors[c.to.actor.0].name.clone());
                        }
                    }
                }
            }
        }
        touched
    }
}

/// The forward slice of `seeds`: every actor reachable from a seed along
/// dataflow wires (including through `UnitDelay` state edges), seeds
/// included. These are exactly the actors whose inferred types, dispatch
/// classes or emitted code may change when the seeds are edited; everything
/// outside the closure is reusable as-is.
pub fn downstream_closure(model: &Model, seeds: &BTreeSet<String>) -> BTreeSet<String> {
    let n = model.actors.len();
    let mut dirty = vec![false; n];
    let mut work: Vec<usize> = model
        .actors
        .iter()
        .filter(|a| seeds.contains(&a.name))
        .map(|a| a.id.0)
        .collect();
    for &i in &work {
        dirty[i] = true;
    }
    while let Some(i) = work.pop() {
        for c in &model.connections {
            if c.from.actor.0 == i && !dirty[c.to.actor.0] {
                dirty[c.to.actor.0] = true;
                work.push(c.to.actor.0);
            }
        }
    }
    model
        .actors
        .iter()
        .filter(|a| dirty[a.id.0])
        .map(|a| a.name.clone())
        .collect()
}

/// Name-based model equivalence: same model name, same actors by
/// (name, kind, params), same wires by named endpoints. Actor ids and
/// declaration order are ignored — this is the invariant
/// [`ModelDelta::diff`] round-trips preserve.
pub fn models_equivalent(a: &Model, b: &Model) -> bool {
    if a.name != b.name || a.actors.len() != b.actors.len() {
        return false;
    }
    fn shape(m: &Model) -> BTreeMap<&str, (ActorKind, &BTreeMap<String, Param>)> {
        m.actors
            .iter()
            .map(|x| (x.name.as_str(), (x.kind, &x.params)))
            .collect()
    }
    if shape(a) != shape(b) {
        return false;
    }
    let wires = |m: &Model| -> BTreeSet<(NamedPort, NamedPort)> {
        m.connections
            .iter()
            .map(|c| {
                (
                    (m.actors[c.from.actor.0].name.clone(), c.from.port),
                    (m.actors[c.to.actor.0].name.clone(), c.to.port),
                )
            })
            .collect()
    };
    wires(a) == wires(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::types::{DataType, SignalType};

    fn base() -> Model {
        let mut b = ModelBuilder::new("m");
        let x = b.inport("x", SignalType::vector(DataType::F32, 8));
        let g = b.gain("g", 2.0);
        let o = b.outport("o");
        b.connect(x, 0, g, 0);
        b.connect(g, 0, o, 0);
        b.build().unwrap()
    }

    #[test]
    fn set_param_round_trips() {
        let old = base();
        let mut new = old.clone();
        new.apply_edit(&EditOp::SetParam {
            name: "g".into(),
            param: "gain".into(),
            value: Param::Float(3.0),
        })
        .unwrap();
        let d = ModelDelta::diff(&old, &new);
        assert_eq!(d.ops.len(), 1);
        assert!(!d.structural());
        let redone = d.apply(&old).unwrap();
        assert!(models_equivalent(&redone, &new));
        assert!(ModelDelta::diff(&new, &redone).is_empty());
    }

    #[test]
    fn add_remove_rewire_round_trip() {
        let old = base();
        let mut new = old.clone();
        new.apply_edit(&EditOp::AddActor {
            name: "n".into(),
            kind: ActorKind::Neg,
            params: BTreeMap::new(),
        })
        .unwrap();
        new.apply_edit(&EditOp::Connect {
            from: ("g".into(), 0),
            to: ("n".into(), 0),
        })
        .unwrap();
        new.apply_edit(&EditOp::Connect {
            from: ("n".into(), 0),
            to: ("o".into(), 0),
        })
        .unwrap();
        assert!(new.front_end().is_ok());
        let d = ModelDelta::diff(&old, &new);
        assert!(d.structural());
        let redone = d.apply(&old).unwrap();
        assert!(models_equivalent(&redone, &new));

        // And back again: removing `n` re-densifies ids and drops wires.
        let back = ModelDelta::diff(&new, &old);
        let undone = back.apply(&new).unwrap();
        assert!(models_equivalent(&undone, &old));
        assert!(undone.front_end().is_ok());
        for (i, a) in undone.actors.iter().enumerate() {
            assert_eq!(a.id.0, i);
        }
    }

    #[test]
    fn remove_touches_consumers() {
        let m = base();
        let d = ModelDelta::single(EditOp::RemoveActor { name: "x".into() });
        let touched = d.touched_actors(&m);
        assert!(touched.contains("x"));
        assert!(touched.contains("g"), "consumer of removed actor is dirty");
    }

    #[test]
    fn unknown_name_rejected() {
        let mut m = base();
        let err = m
            .apply_edit(&EditOp::SetKind {
                name: "ghost".into(),
                kind: ActorKind::Abs,
            })
            .unwrap_err();
        assert_eq!(err, ModelError::UnknownName("ghost".into()));
    }

    #[test]
    fn duplicate_add_rejected() {
        let mut m = base();
        let err = m
            .apply_edit(&EditOp::AddActor {
                name: "g".into(),
                kind: ActorKind::Abs,
                params: BTreeMap::new(),
            })
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateName("g".into()));
    }

    #[test]
    fn connect_replaces_driver() {
        let mut m = base();
        m.apply_edit(&EditOp::AddActor {
            name: "x2".into(),
            kind: ActorKind::Inport,
            params: BTreeMap::from([(
                "type".into(),
                Param::Str(SignalType::vector(DataType::F32, 8).to_string()),
            )]),
        })
        .unwrap();
        m.apply_edit(&EditOp::Connect {
            from: ("x2".into(), 0),
            to: ("g".into(), 0),
        })
        .unwrap();
        let g = m.actor_by_name("g").unwrap().id;
        let drv = m.driver(PortRef::new(g, 0)).unwrap();
        assert_eq!(m.actors[drv.actor.0].name, "x2");
        assert!(m.front_end().is_ok());
    }

    #[test]
    fn downstream_closure_flows_through_delays() {
        let mut b = ModelBuilder::new("acc");
        let x = b.inport("x", SignalType::vector(DataType::F32, 8));
        let add = b.add_actor("sum", ActorKind::Add);
        let d = b.add_actor("z1", ActorKind::UnitDelay);
        let o = b.outport("y");
        b.connect(x, 0, add, 0);
        b.connect(d, 0, add, 1);
        b.connect(add, 0, d, 0);
        b.connect(add, 0, o, 0);
        let m = b.build().unwrap();
        let seeds = BTreeSet::from(["x".to_owned()]);
        let dirty = downstream_closure(&m, &seeds);
        assert_eq!(
            dirty,
            BTreeSet::from([
                "x".to_owned(),
                "sum".to_owned(),
                "z1".to_owned(),
                "y".to_owned()
            ])
        );
    }
}
