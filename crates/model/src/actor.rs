//! Actor kinds, the actor inventory of paper Table 1, and per-kind port and
//! parameter contracts.

use crate::types::{Param, SignalType};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Identifier of an actor inside a [`Model`](crate::Model).
///
/// Stable across scheduling and code generation; assigned densely from zero
/// by the [`ModelBuilder`](crate::ModelBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Coarse capability class of an actor kind, before input scales are known.
///
/// The final dispatch decision (paper §3.1) also needs the input scale: a
/// `BatchCapable` actor with scalar inputs is translated conventionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KindClass {
    /// Table 1a: complex calculations over array input where input and output
    /// elements do not correspond one-to-one (FFT, DCT, convolution, matrix
    /// algebra).
    Intensive,
    /// Table 1b: element-wise operations where output element `i` is computed
    /// from input element(s) `i`.
    Batch,
    /// Everything else: sources, sinks, state, routing.
    Basic,
}

/// The kind of a model actor.
///
/// Covers every entry of paper Table 1 plus the basic actors needed to build
/// the evaluation models (sources, sinks, unit delays, routing).
///
/// # Examples
///
/// ```
/// use hcg_model::{ActorKind, KindClass};
/// assert_eq!(ActorKind::Fft.class(), KindClass::Intensive);
/// assert_eq!(ActorKind::Add.class(), KindClass::Batch);
/// assert_eq!(ActorKind::UnitDelay.class(), KindClass::Basic);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActorKind {
    // ---- basic actors ----
    /// External input; declares its signal type via the `type` parameter.
    Inport,
    /// External output.
    Outport,
    /// Constant source; parameters `type` and `value`.
    Constant,
    /// Multiply by a scalar constant (parameter `gain`).
    Gain,
    /// One-sample delay (breaks feedback loops); optional `init` parameter.
    UnitDelay,
    /// Three-input routing: passes input 1 when input 0 is positive, else
    /// input 2.
    Switch,
    /// Clamp to `[min, max]` (parameters `min`, `max`).
    Saturate,
    /// Element-wise data type conversion to the `to` parameter type.
    Cast,
    /// Arithmetic negation.
    Neg,

    // ---- batch computing actors (Table 1b) ----
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication.
    Mul,
    /// Element-wise division.
    Div,
    /// Element-wise arithmetic shift right by the constant `amount` parameter.
    Shr,
    /// Element-wise shift left by the constant `amount` parameter.
    Shl,
    /// Element-wise bitwise NOT (integers only).
    BitNot,
    /// Element-wise bitwise AND (integers only).
    BitAnd,
    /// Element-wise bitwise OR (integers only).
    BitOr,
    /// Element-wise bitwise XOR (integers only).
    BitXor,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Element-wise absolute value.
    Abs,
    /// Element-wise absolute difference `|a - b|`.
    Abd,
    /// Element-wise reciprocal (floats only).
    Recp,
    /// Element-wise square root (floats only).
    Sqrt,

    // ---- intensive computing actors (Table 1a) ----
    /// Matrix multiplication `(r×k)·(k×c)`.
    MatMul,
    /// Square matrix inversion (floats only).
    MatInv,
    /// Square matrix determinant (floats only).
    MatDet,
    /// 1-D fast Fourier transform: real `n`-vector in, interleaved complex
    /// `2n`-vector out.
    Fft,
    /// 1-D inverse FFT: interleaved complex `2n`-vector in, real `n`-vector
    /// out (imaginary parts discarded).
    Ifft,
    /// 1-D discrete cosine transform (DCT-II), `n` in / `n` out.
    Dct,
    /// 1-D inverse DCT (DCT-III), `n` in / `n` out.
    Idct,
    /// 1-D full convolution: inputs of length `n` and `k`, output `n+k-1`.
    Conv,
    /// 2-D FFT over a real `r×c` matrix, out `r×2c` interleaved complex rows.
    Fft2d,
    /// 2-D DCT-II over an `r×c` matrix.
    Dct2d,
    /// 2-D full convolution of an `r1×c1` and an `r2×c2` matrix.
    Conv2d,
}

impl ActorKind {
    /// All actor kinds, in a stable order.
    pub const ALL: [ActorKind; 36] = [
        ActorKind::Inport,
        ActorKind::Outport,
        ActorKind::Constant,
        ActorKind::Gain,
        ActorKind::UnitDelay,
        ActorKind::Switch,
        ActorKind::Saturate,
        ActorKind::Cast,
        ActorKind::Neg,
        ActorKind::Add,
        ActorKind::Sub,
        ActorKind::Mul,
        ActorKind::Div,
        ActorKind::Shr,
        ActorKind::Shl,
        ActorKind::BitNot,
        ActorKind::BitAnd,
        ActorKind::BitOr,
        ActorKind::BitXor,
        ActorKind::Min,
        ActorKind::Max,
        ActorKind::Abs,
        ActorKind::Abd,
        ActorKind::Recp,
        ActorKind::Sqrt,
        ActorKind::MatMul,
        ActorKind::MatInv,
        ActorKind::MatDet,
        ActorKind::Fft,
        ActorKind::Ifft,
        ActorKind::Dct,
        ActorKind::Idct,
        ActorKind::Conv,
        ActorKind::Fft2d,
        ActorKind::Dct2d,
        ActorKind::Conv2d,
    ];

    /// The capability class used by actor dispatch (paper §3.1).
    pub const fn class(self) -> KindClass {
        use ActorKind::*;
        match self {
            Add | Sub | Mul | Div | Shr | Shl | BitNot | BitAnd | BitOr | BitXor | Min | Max
            | Abs | Abd | Recp | Sqrt => KindClass::Batch,
            MatMul | MatInv | MatDet | Fft | Ifft | Dct | Idct | Conv | Fft2d | Dct2d | Conv2d => {
                KindClass::Intensive
            }
            _ => KindClass::Basic,
        }
    }

    /// Number of data input ports.
    pub const fn input_count(self) -> usize {
        use ActorKind::*;
        match self {
            Inport | Constant => 0,
            Switch => 3,
            Add | Sub | Mul | Div | BitAnd | BitOr | BitXor | Min | Max | Abd | MatMul | Conv
            | Conv2d => 2,
            _ => 1,
        }
    }

    /// Number of data output ports (always 1 except for sinks).
    pub const fn output_count(self) -> usize {
        match self {
            ActorKind::Outport => 0,
            _ => 1,
        }
    }

    /// Parameter names this kind requires.
    pub fn required_params(self) -> &'static [&'static str] {
        use ActorKind::*;
        match self {
            Inport => &["type"],
            Constant => &["type", "value"],
            Gain => &["gain"],
            Saturate => &["min", "max"],
            Cast => &["to"],
            Shr | Shl => &["amount"],
            _ => &[],
        }
    }

    /// `true` when the kind only operates on floating-point elements.
    pub const fn float_only(self) -> bool {
        use ActorKind::*;
        matches!(
            self,
            Recp | Sqrt | MatInv | MatDet | Fft | Ifft | Dct | Idct | Fft2d | Dct2d
        )
    }

    /// `true` when the kind only operates on integer elements.
    pub const fn int_only(self) -> bool {
        use ActorKind::*;
        matches!(self, Shr | Shl | BitNot | BitAnd | BitOr | BitXor)
    }

    /// The canonical name used in model files, e.g. `"Add"`.
    pub const fn name(self) -> &'static str {
        use ActorKind::*;
        match self {
            Inport => "Inport",
            Outport => "Outport",
            Constant => "Constant",
            Gain => "Gain",
            UnitDelay => "UnitDelay",
            Switch => "Switch",
            Saturate => "Saturate",
            Cast => "Cast",
            Neg => "Neg",
            Add => "Add",
            Sub => "Sub",
            Mul => "Mul",
            Div => "Div",
            Shr => "Shr",
            Shl => "Shl",
            BitNot => "BitNot",
            BitAnd => "BitAnd",
            BitOr => "BitOr",
            BitXor => "BitXor",
            Min => "Min",
            Max => "Max",
            Abs => "Abs",
            Abd => "Abd",
            Recp => "Recp",
            Sqrt => "Sqrt",
            MatMul => "MatMul",
            MatInv => "MatInv",
            MatDet => "MatDet",
            Fft => "FFT",
            Ifft => "IFFT",
            Dct => "DCT",
            Idct => "IDCT",
            Conv => "Conv",
            Fft2d => "FFT2D",
            Dct2d => "DCT2D",
            Conv2d => "Conv2D",
        }
    }
}

impl fmt::Display for ActorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when an actor kind name is not recognised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseActorKindError(String);

impl fmt::Display for ParseActorKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown actor kind: {:?}", self.0)
    }
}

impl std::error::Error for ParseActorKindError {}

impl FromStr for ActorKind {
    type Err = ParseActorKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ActorKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParseActorKindError(s.to_owned()))
    }
}

/// One actor (block) instance in a model.
#[derive(Debug, Clone, PartialEq)]
pub struct Actor {
    /// Dense identifier within the owning model.
    pub id: ActorId,
    /// Human-readable unique name.
    pub name: String,
    /// Behavioural kind.
    pub kind: ActorKind,
    /// Kind-specific parameters (see [`ActorKind::required_params`]).
    pub params: BTreeMap<String, Param>,
}

impl Actor {
    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.get(name)
    }

    /// Look up the declared signal type of an `Inport`/`Constant` (`type`
    /// parameter) or the target type of a `Cast` (`to` parameter).
    pub fn type_param(&self, name: &str) -> Option<SignalType> {
        match self.params.get(name)? {
            Param::Str(s) => s.parse().ok(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_inventory_matches_paper() {
        // Table 1a kinds are all Intensive.
        for k in [
            ActorKind::MatMul,
            ActorKind::MatInv,
            ActorKind::MatDet,
            ActorKind::Fft,
            ActorKind::Ifft,
            ActorKind::Dct,
            ActorKind::Idct,
            ActorKind::Conv,
            ActorKind::Fft2d,
            ActorKind::Dct2d,
            ActorKind::Conv2d,
        ] {
            assert_eq!(k.class(), KindClass::Intensive, "{k}");
        }
        // Table 1b kinds are all Batch.
        for k in [
            ActorKind::Add,
            ActorKind::Sub,
            ActorKind::Mul,
            ActorKind::Div,
            ActorKind::Shr,
            ActorKind::Shl,
            ActorKind::BitNot,
            ActorKind::BitAnd,
            ActorKind::BitOr,
            ActorKind::BitXor,
            ActorKind::Min,
            ActorKind::Max,
            ActorKind::Abs,
            ActorKind::Abd,
            ActorKind::Recp,
            ActorKind::Sqrt,
        ] {
            assert_eq!(k.class(), KindClass::Batch, "{k}");
        }
    }

    #[test]
    fn port_counts() {
        assert_eq!(ActorKind::Inport.input_count(), 0);
        assert_eq!(ActorKind::Inport.output_count(), 1);
        assert_eq!(ActorKind::Outport.input_count(), 1);
        assert_eq!(ActorKind::Outport.output_count(), 0);
        assert_eq!(ActorKind::Add.input_count(), 2);
        assert_eq!(ActorKind::Abs.input_count(), 1);
        assert_eq!(ActorKind::Switch.input_count(), 3);
        assert_eq!(ActorKind::Shr.input_count(), 1);
        assert_eq!(ActorKind::Conv.input_count(), 2);
    }

    #[test]
    fn kind_name_roundtrip() {
        for k in ActorKind::ALL {
            assert_eq!(k.name().parse::<ActorKind>().unwrap(), k);
        }
        assert!("Bogus".parse::<ActorKind>().is_err());
    }

    #[test]
    fn dtype_restrictions() {
        assert!(ActorKind::Recp.float_only());
        assert!(ActorKind::Fft.float_only());
        assert!(ActorKind::Shr.int_only());
        assert!(!ActorKind::Add.float_only());
        assert!(!ActorKind::Add.int_only());
    }

    #[test]
    fn required_params() {
        assert_eq!(ActorKind::Inport.required_params(), &["type"]);
        assert_eq!(ActorKind::Shr.required_params(), &["amount"]);
        assert!(ActorKind::Add.required_params().is_empty());
    }
}
