//! The benchmark model library: every model used in the paper's evaluation
//! (§4: FFT, DCT, Conv, HighPass, LowPass, FIR), the illustrative models of
//! Figures 2 and 4, and generators of small synthetic models for testing.

use crate::actor::ActorKind;
use crate::builder::ModelBuilder;
use crate::model::Model;
use crate::types::{DataType, SignalType};

/// The six benchmark models of paper §4, at their paper input scales.
pub fn paper_benchmarks() -> Vec<Model> {
    vec![
        fft_model(1024),
        dct_model(1024),
        conv_model(1024, 64),
        highpass_model(1024),
        lowpass_model(1024),
        fir_model(1024, 4),
    ]
}

/// "FFT" benchmark: windowed fast Fourier transform of a real `n`-point
/// signal (one batch `Mul` feeding an intensive `FFT` actor).
pub fn fft_model(n: usize) -> Model {
    let mut b = ModelBuilder::new(format!("FFT_{n}"));
    let x = b.inport("x", SignalType::vector(DataType::F32, n));
    let w = b.constant("window", SignalType::vector(DataType::F32, n), hann(n));
    let mul = b.add_actor("windowed", ActorKind::Mul);
    let fft = b.add_actor("fft", ActorKind::Fft);
    let y = b.outport("spectrum");
    b.connect(x, 0, mul, 0);
    b.connect(w, 0, mul, 1);
    b.connect(mul, 0, fft, 0);
    b.connect(fft, 0, y, 0);
    b.build().expect("library model is valid")
}

/// "DCT" benchmark: type-II discrete cosine transform of `n` points.
pub fn dct_model(n: usize) -> Model {
    let mut b = ModelBuilder::new(format!("DCT_{n}"));
    let x = b.inport("x", SignalType::vector(DataType::F32, n));
    let dct = b.add_actor("dct", ActorKind::Dct);
    let y = b.outport("coeffs");
    b.connect(x, 0, dct, 0);
    b.connect(dct, 0, y, 0);
    b.build().expect("library model is valid")
}

/// "Conv" benchmark: 1-D convolution of an `n`-point signal with a `k`-tap
/// kernel held in a constant.
pub fn conv_model(n: usize, k: usize) -> Model {
    let mut b = ModelBuilder::new(format!("Conv_{n}x{k}"));
    let x = b.inport("x", SignalType::vector(DataType::F32, n));
    let h = b.constant(
        "kernel",
        SignalType::vector(DataType::F32, k),
        (0..k).map(|i| 1.0 / (1.0 + i as f64)).collect(),
    );
    let conv = b.add_actor("conv", ActorKind::Conv);
    let y = b.outport("filtered");
    b.connect(x, 0, conv, 0);
    b.connect(h, 0, conv, 1);
    b.connect(conv, 0, y, 0);
    b.build().expect("library model is valid")
}

/// "HighPass" benchmark: first-order high-pass over `n` parallel channels,
/// `y = α · (y⁻¹ + x − x⁻¹)` — batch `Sub`, `Add`, `Mul` with two delays.
pub fn highpass_model(n: usize) -> Model {
    let ty = SignalType::vector(DataType::F32, n);
    let mut b = ModelBuilder::new(format!("HighPass_{n}"));
    let x = b.inport("x", ty);
    let xd = b.unit_delay("x_prev", Some(ty));
    let yd = b.unit_delay("y_prev", Some(ty));
    let alpha = b.constant("alpha", ty, vec![0.95]);
    let sub = b.add_actor("diff", ActorKind::Sub);
    let add = b.add_actor("acc", ActorKind::Add);
    let mul = b.add_actor("scaled", ActorKind::Mul);
    let y = b.outport("y");
    b.connect(x, 0, xd, 0);
    b.connect(x, 0, sub, 0);
    b.connect(xd, 0, sub, 1);
    b.connect(yd, 0, add, 0);
    b.connect(sub, 0, add, 1);
    b.connect(add, 0, mul, 0);
    b.connect(alpha, 0, mul, 1);
    b.connect(mul, 0, yd, 0);
    b.connect(mul, 0, y, 0);
    b.build().expect("library model is valid")
}

/// "LowPass" benchmark: first-order exponential low-pass over `n` parallel
/// channels, `y = y⁻¹ + α · (x − y⁻¹)` — a `Sub` → `Mul` → `Add` chain (a
/// fused multiply-add opportunity).
pub fn lowpass_model(n: usize) -> Model {
    let ty = SignalType::vector(DataType::F32, n);
    let mut b = ModelBuilder::new(format!("LowPass_{n}"));
    let x = b.inport("x", ty);
    let yd = b.unit_delay("y_prev", Some(ty));
    let alpha = b.constant("alpha", ty, vec![0.2]);
    let sub = b.add_actor("err", ActorKind::Sub);
    let mul = b.add_actor("step", ActorKind::Mul);
    let add = b.add_actor("next", ActorKind::Add);
    let y = b.outport("y");
    b.connect(x, 0, sub, 0);
    b.connect(yd, 0, sub, 1);
    b.connect(sub, 0, mul, 0);
    b.connect(alpha, 0, mul, 1);
    b.connect(yd, 0, add, 0);
    b.connect(mul, 0, add, 1);
    b.connect(add, 0, yd, 0);
    b.connect(add, 0, y, 0);
    b.build().expect("library model is valid")
}

/// "FIR" benchmark: `taps`-tap finite impulse response filter over `n`
/// parallel integer channels — the paper's "two connected batch computing
/// actors, batch Mul (i32*1024) and batch Add (i32*1024)" scaled to any tap
/// count (each tap adds one delayed `Mul` into an `Add` tree).
///
/// # Panics
///
/// Panics if `taps == 0`.
pub fn fir_model(n: usize, taps: usize) -> Model {
    assert!(taps >= 1, "FIR needs at least one tap");
    let ty = SignalType::vector(DataType::I32, n);
    let mut b = ModelBuilder::new(format!("FIR_{n}t{taps}"));
    let x = b.inport("x", ty);
    let y = b.outport("y");

    // Delay line.
    let mut line = vec![x];
    for k in 1..taps {
        let d = b.unit_delay(format!("z{k}"), Some(ty));
        b.connect(line[k - 1], 0, d, 0);
        line.push(d);
    }
    // Products.
    let mut products = Vec::new();
    for (k, &src) in line.iter().enumerate() {
        let c = b.constant(format!("c{k}"), ty, vec![(k as f64) + 1.0]);
        let m = b.add_actor(format!("m{k}"), ActorKind::Mul);
        b.connect(src, 0, m, 0);
        b.connect(c, 0, m, 1);
        products.push(m);
    }
    // Additive reduction.
    let mut acc = products[0];
    for (k, &p) in products.iter().enumerate().skip(1) {
        let a = b.add_actor(format!("s{k}"), ActorKind::Add);
        b.connect(acc, 0, a, 0);
        b.connect(p, 0, a, 1);
        acc = a;
    }
    b.connect(acc, 0, y, 0);
    b.build().expect("library model is valid")
}

/// The sample model of paper Figure 2: `out = 1 / (a·b + c)` on `f32*4` —
/// four multiplications, four additions and four reciprocals when unrolled,
/// or `vmlaq_f32` + `vrecpsq`-style code when vectorised.
pub fn fig2_model() -> Model {
    let ty = SignalType::vector(DataType::F32, 4);
    let mut b = ModelBuilder::new("Fig2");
    let a = b.inport("a", ty);
    let bb = b.inport("b", ty);
    let c = b.inport("c", ty);
    let mul = b.add_actor("prod", ActorKind::Mul);
    let add = b.add_actor("sum", ActorKind::Add);
    let recp = b.add_actor("recp", ActorKind::Recp);
    let out = b.outport("out");
    b.connect(a, 0, mul, 0);
    b.connect(bb, 0, mul, 1);
    b.connect(mul, 0, add, 0);
    b.connect(c, 0, add, 1);
    b.connect(add, 0, recp, 0);
    b.connect(recp, 0, out, 0);
    b.build().expect("library model is valid")
}

/// The sample model of paper Figure 4 / Listing 1 on `i32*4`:
///
/// * `s = b − c`
/// * `Shr_out = (a + s) >> 1` (the `vhaddq_s32` pattern)
/// * `Add_out = s + s·d`      (the `vmlaq_s32` pattern)
pub fn fig4_model() -> Model {
    fig4_model_sized(4)
}

/// [`fig4_model`] generalised to `n` lanes (the paper uses 4).
pub fn fig4_model_sized(n: usize) -> Model {
    let ty = SignalType::vector(DataType::I32, n);
    let mut b = ModelBuilder::new(format!("Fig4_{n}"));
    let a = b.inport("a", ty);
    let bb = b.inport("b", ty);
    let c = b.inport("c", ty);
    let d = b.inport("d", ty);
    let sub = b.add_actor("Sub", ActorKind::Sub);
    let addh = b.add_actor("AddH", ActorKind::Add);
    let shr = b.shift("Shr", ActorKind::Shr, 1);
    let mul = b.add_actor("Mul", ActorKind::Mul);
    let addm = b.add_actor("AddM", ActorKind::Add);
    let shr_out = b.outport("Shr_out");
    let add_out = b.outport("Add_out");
    b.connect(bb, 0, sub, 0);
    b.connect(c, 0, sub, 1);
    b.connect(a, 0, addh, 0);
    b.connect(sub, 0, addh, 1);
    b.connect(addh, 0, shr, 0);
    b.connect(shr, 0, shr_out, 0);
    b.connect(sub, 0, mul, 0);
    b.connect(d, 0, mul, 1);
    b.connect(sub, 0, addm, 0);
    b.connect(mul, 0, addm, 1);
    b.connect(addm, 0, add_out, 0);
    b.build().expect("library model is valid")
}

/// A model with exactly one batch actor — the §4.3 discussion case where
/// SIMD may lose to scalar code because of load/store overhead.
pub fn single_batch_model(n: usize) -> Model {
    let ty = SignalType::vector(DataType::I32, n);
    let mut b = ModelBuilder::new(format!("Single_{n}"));
    let x = b.inport("x", ty);
    let y2 = b.inport("y", ty);
    let add = b.add_actor("sum", ActorKind::Add);
    let o = b.outport("o");
    b.connect(x, 0, add, 0);
    b.connect(y2, 0, add, 1);
    b.connect(add, 0, o, 0);
    b.build().expect("library model is valid")
}

/// A deterministic pseudo-random model made of chained batch actors, for
/// property tests: all three generators must produce identical results on
/// it. Uses an internal xorshift PRNG so the model crate stays
/// dependency-free.
pub fn random_batch_model(seed: u64, n: usize, actor_count: usize) -> Model {
    let mut rng = XorShift::new(seed);
    let dtype = match rng.next() % 6 {
        0 | 1 => DataType::I32,
        2 | 3 => DataType::F32,
        4 => DataType::U16,
        _ => DataType::I8,
    };
    let ty = SignalType::vector(dtype, n);
    let mut b = ModelBuilder::new(format!("Rand_{seed}_{n}"));
    let mut values = vec![b.inport("in0", ty), b.inport("in1", ty)];
    let binary_int = [
        ActorKind::Add,
        ActorKind::Sub,
        ActorKind::Mul,
        ActorKind::Min,
        ActorKind::Max,
        ActorKind::Abd,
        ActorKind::BitAnd,
        ActorKind::BitOr,
        ActorKind::BitXor,
    ];
    let binary_float = [
        ActorKind::Add,
        ActorKind::Sub,
        ActorKind::Mul,
        ActorKind::Min,
        ActorKind::Max,
        ActorKind::Abd,
    ];
    let choices: &[ActorKind] = if dtype.is_float() {
        &binary_float
    } else {
        &binary_int
    };
    for i in 0..actor_count {
        let pick = |rng: &mut XorShift, vals: &[crate::actor::ActorId]| {
            vals[(rng.next() as usize) % vals.len()]
        };
        // Occasionally a unary op.
        if rng.next().is_multiple_of(4) {
            let kind = if dtype.is_float() || (dtype.is_signed() && rng.next().is_multiple_of(2)) {
                ActorKind::Abs
            } else {
                ActorKind::BitNot
            };
            let src = pick(&mut rng, &values);
            let a = b.add_actor(format!("u{i}"), kind);
            b.connect(src, 0, a, 0);
            values.push(a);
        } else {
            let kind = choices[(rng.next() as usize) % choices.len()];
            let s0 = pick(&mut rng, &values);
            let s1 = pick(&mut rng, &values);
            let a = b.add_actor(format!("b{i}"), kind);
            b.connect(s0, 0, a, 0);
            b.connect(s1, 0, a, 1);
            values.push(a);
        }
    }
    let o = b.outport("out");
    let last = *values.last().expect("at least the inports exist");
    b.connect(last, 0, o, 0);
    b.build().expect("random model construction is valid")
}

/// 2-D DCT benchmark (paper Table 1a lists 2-D transforms): an `r×c` image
/// block through `DCT2D`.
pub fn dct2d_model(rows: usize, cols: usize) -> Model {
    let mut b = ModelBuilder::new(format!("DCT2D_{rows}x{cols}"));
    let x = b.inport("block", SignalType::matrix(DataType::F32, rows, cols));
    let d = b.add_actor("dct2d", ActorKind::Dct2d);
    let y = b.outport("coeffs");
    b.connect(x, 0, d, 0);
    b.connect(d, 0, y, 0);
    b.build().expect("library model is valid")
}

/// 2-D FFT benchmark: an `r×c` real image through `FFT2D` (output is
/// `r×2c` interleaved complex rows).
pub fn fft2d_model(rows: usize, cols: usize) -> Model {
    let mut b = ModelBuilder::new(format!("FFT2D_{rows}x{cols}"));
    let x = b.inport("image", SignalType::matrix(DataType::F32, rows, cols));
    let f = b.add_actor("fft2d", ActorKind::Fft2d);
    let y = b.outport("spectrum");
    b.connect(x, 0, f, 0);
    b.connect(f, 0, y, 0);
    b.build().expect("library model is valid")
}

/// 2-D convolution benchmark: an `r×c` image convolved with a constant
/// `kr×kc` kernel.
pub fn conv2d_model(rows: usize, cols: usize, kr: usize, kc: usize) -> Model {
    let mut b = ModelBuilder::new(format!("Conv2D_{rows}x{cols}k{kr}x{kc}"));
    let x = b.inport("image", SignalType::matrix(DataType::F32, rows, cols));
    let h = b.constant(
        "psf",
        SignalType::matrix(DataType::F32, kr, kc),
        (0..kr * kc).map(|i| 1.0 / (1.0 + i as f64)).collect(),
    );
    let c = b.add_actor("conv2d", ActorKind::Conv2d);
    let y = b.outport("filtered");
    b.connect(x, 0, c, 0);
    b.connect(h, 0, c, 1);
    b.connect(c, 0, y, 0);
    b.build().expect("library model is valid")
}

/// Matrix-algebra pipeline (Table 1a): `P = A·B`, `Q = P⁻¹`, `d = det(Q)` —
/// exercises all three matrix actor kinds in one model.
pub fn matrix_pipeline_model(n: usize) -> Model {
    let ty = SignalType::matrix(DataType::F64, n, n);
    let mut b = ModelBuilder::new(format!("MatPipe_{n}"));
    let a = b.inport("A", ty);
    let bb = b.inport("B", ty);
    let mm = b.add_actor("prod", ActorKind::MatMul);
    let inv = b.add_actor("inv", ActorKind::MatInv);
    let det = b.add_actor("det", ActorKind::MatDet);
    let out_inv = b.outport("Qinv");
    let out_det = b.outport("d");
    b.connect(a, 0, mm, 0);
    b.connect(bb, 0, mm, 1);
    b.connect(mm, 0, inv, 0);
    b.connect(inv, 0, det, 0);
    b.connect(inv, 0, out_inv, 0);
    b.connect(det, 0, out_det, 0);
    b.build().expect("library model is valid")
}

/// A branch-logic model (the DFSynth specialty the paper's related work
/// discusses): per-element select between a scaled and a saturated path,
/// followed by a batch region.
pub fn switch_model(n: usize) -> Model {
    let ty = SignalType::vector(DataType::F32, n);
    let mut b = ModelBuilder::new(format!("Switch_{n}"));
    let x = b.inport("x", ty);
    let c = b.inport("ctl", ty);
    let gain = b.gain("boost", 2.0);
    let sat = b.add_actor("limit", ActorKind::Saturate);
    b.set_param(sat, "min", crate::types::Param::Float(-0.5));
    b.set_param(sat, "max", crate::types::Param::Float(0.5));
    let sw = b.add_actor("route", ActorKind::Switch);
    let post = b.add_actor("post", ActorKind::Add);
    let y = b.outport("y");
    b.connect(x, 0, gain, 0);
    b.connect(x, 0, sat, 0);
    b.connect(c, 0, sw, 0);
    b.connect(gain, 0, sw, 1);
    b.connect(sat, 0, sw, 2);
    b.connect(sw, 0, post, 0);
    b.connect(x, 0, post, 1);
    b.connect(post, 0, y, 0);
    b.build().expect("library model is valid")
}

/// A mixed-dtype model: an i16 batch front end cast to i32 for a second
/// batch region — exercises `Cast` between two regions of different lane
/// counts.
pub fn mixed_width_model(n: usize) -> Model {
    let narrow = SignalType::vector(DataType::I16, n);
    let mut b = ModelBuilder::new(format!("MixedWidth_{n}"));
    let x = b.inport("x", narrow);
    let y2 = b.inport("y", narrow);
    let add = b.add_actor("sum16", ActorKind::Add);
    let cast = b.add_actor("widen", ActorKind::Cast);
    b.set_param(cast, "to", crate::types::Param::Str("i32".into()));
    let sq = b.add_actor("sq32", ActorKind::Mul);
    let o = b.outport("o");
    b.connect(x, 0, add, 0);
    b.connect(y2, 0, add, 1);
    b.connect(add, 0, cast, 0);
    b.connect(cast, 0, sq, 0);
    b.connect(cast, 0, sq, 1);
    b.connect(sq, 0, o, 0);
    b.build().expect("library model is valid")
}

/// Hann window coefficients (used by [`fft_model`]).
fn hann(n: usize) -> Vec<f64> {
    if n == 1 {
        return vec![1.0];
    }
    (0..n)
        .map(|i| {
            let t = core::f64::consts::PI * 2.0 * i as f64 / (n as f64 - 1.0);
            0.5 * (1.0 - t.cos())
        })
        .collect()
}

/// Minimal xorshift64 PRNG for dependency-free deterministic model
/// generation.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::schedule;

    #[test]
    fn all_paper_benchmarks_validate_and_schedule() {
        for m in paper_benchmarks() {
            m.infer_types()
                .unwrap_or_else(|e| panic!("{}: {e}", m.name));
            schedule(&m).unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn fir_actor_counts_scale_with_taps() {
        let m1 = fir_model(64, 1);
        let m4 = fir_model(64, 4);
        assert!(m4.actors.len() > m1.actors.len());
        // taps=1: inport, constant, mul, outport.
        assert_eq!(m1.actors.len(), 4);
    }

    #[test]
    fn fig4_types_check() {
        let m = fig4_model();
        let t = m.infer_types().unwrap();
        let shr = m.actor_by_name("Shr").unwrap().id;
        assert_eq!(t.output(shr, 0), SignalType::vector(DataType::I32, 4));
    }

    #[test]
    fn fig2_has_mul_add_recp_chain() {
        let m = fig2_model();
        assert!(m.actor_by_name("prod").is_some());
        assert!(m.actor_by_name("recp").is_some());
        m.infer_types().unwrap();
    }

    #[test]
    fn random_models_are_valid_for_many_seeds() {
        for seed in 1..40 {
            let m = random_batch_model(seed, 16, 10);
            m.infer_types()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            schedule(&m).unwrap();
        }
    }

    #[test]
    fn random_model_is_deterministic() {
        let a = random_batch_model(7, 8, 6);
        let b = random_batch_model(7, 8, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn extended_models_validate_and_schedule() {
        let models = [
            dct2d_model(8, 8),
            fft2d_model(4, 8),
            conv2d_model(8, 8, 3, 3),
            matrix_pipeline_model(3),
            switch_model(32),
            mixed_width_model(24),
        ];
        for m in models {
            m.infer_types()
                .unwrap_or_else(|e| panic!("{}: {e}", m.name));
            schedule(&m).unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn fft2d_output_shape() {
        let m = fft2d_model(4, 8);
        let t = m.infer_types().unwrap();
        let f = m.actor_by_name("fft2d").unwrap().id;
        assert_eq!(t.output(f, 0), SignalType::matrix(DataType::F32, 4, 16));
    }

    #[test]
    fn conv2d_output_shape() {
        let m = conv2d_model(8, 8, 3, 3);
        let t = m.infer_types().unwrap();
        let c = m.actor_by_name("conv2d").unwrap().id;
        assert_eq!(t.output(c, 0), SignalType::matrix(DataType::F32, 10, 10));
    }

    #[test]
    fn matrix_pipeline_det_is_scalar() {
        let m = matrix_pipeline_model(4);
        let t = m.infer_types().unwrap();
        let d = m.actor_by_name("det").unwrap().id;
        assert_eq!(t.output(d, 0), SignalType::scalar(DataType::F64));
    }

    #[test]
    fn hann_window_edges() {
        let w = hann(8);
        assert!(w[0].abs() < 1e-12);
        assert!(w.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(hann(1), vec![1.0]);
    }

    #[test]
    fn model_files_roundtrip() {
        use crate::parser::{model_from_xml, model_to_xml};
        for m in paper_benchmarks() {
            let back = model_from_xml(&model_to_xml(&m)).unwrap();
            assert_eq!(back, m, "{}", m.name);
        }
    }
}
