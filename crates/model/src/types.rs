//! Scalar data types, signal shapes and parameter values for model signals.
//!
//! Simulink signals carry a numeric data type and a dimensionality. HCG's
//! actor dispatch (paper §3.1) and batch synthesis (paper §3.2.2, Algorithm 2)
//! both key on the *bit width* of the element type and the *input scale*
//! (vector length), so those two queries are first-class here.

use std::fmt;
use std::str::FromStr;

/// Element data type of a signal.
///
/// Covers the integer and floating-point types used by the paper's batch
/// computing actors (Table 1b operates on `i8`–`i64`, `f32`, `f64`) and by
/// the intensive computing actors (Table 1a operates on `f32`/`f64`).
///
/// # Examples
///
/// ```
/// use hcg_model::DataType;
/// assert_eq!(DataType::I32.bit_width(), 32);
/// assert!(DataType::F32.is_float());
/// assert_eq!("i32".parse::<DataType>().unwrap(), DataType::I32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 single-precision float.
    F32,
    /// IEEE-754 double-precision float.
    F64,
}

impl DataType {
    /// All supported data types, in a stable order.
    pub const ALL: [DataType; 10] = [
        DataType::I8,
        DataType::I16,
        DataType::I32,
        DataType::I64,
        DataType::U8,
        DataType::U16,
        DataType::U32,
        DataType::U64,
        DataType::F32,
        DataType::F64,
    ];

    /// Width of one element in bits (Algorithm 2 line 1 divides the vector
    /// register width by this to obtain the batch size).
    pub const fn bit_width(self) -> u32 {
        match self {
            DataType::I8 | DataType::U8 => 8,
            DataType::I16 | DataType::U16 => 16,
            DataType::I32 | DataType::U32 | DataType::F32 => 32,
            DataType::I64 | DataType::U64 | DataType::F64 => 64,
        }
    }

    /// `true` for `f32`/`f64`.
    pub const fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F64)
    }

    /// `true` for any integer type (signed or unsigned).
    pub const fn is_int(self) -> bool {
        !self.is_float()
    }

    /// `true` for signed integers and floats.
    pub const fn is_signed(self) -> bool {
        !matches!(
            self,
            DataType::U8 | DataType::U16 | DataType::U32 | DataType::U64
        )
    }

    /// The canonical lowercase name, e.g. `"i32"` — the spelling used by the
    /// instruction-set text format of paper §3.3.
    pub const fn name(self) -> &'static str {
        match self {
            DataType::I8 => "i8",
            DataType::I16 => "i16",
            DataType::I32 => "i32",
            DataType::I64 => "i64",
            DataType::U8 => "u8",
            DataType::U16 => "u16",
            DataType::U32 => "u32",
            DataType::U64 => "u64",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`DataType`], [`Shape`] or [`SignalType`]
/// from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTypeError {
    what: &'static str,
    input: String,
}

impl ParseTypeError {
    fn new(what: &'static str, input: &str) -> Self {
        ParseTypeError {
            what,
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} syntax: {:?}", self.what, self.input)
    }
}

impl std::error::Error for ParseTypeError {}

impl FromStr for DataType {
    type Err = ParseTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DataType::ALL
            .iter()
            .copied()
            .find(|d| d.name() == s)
            .ok_or_else(|| ParseTypeError::new("data type", s))
    }
}

/// Dimensionality of a signal.
///
/// The paper's batch computing actors take vector signals; the 2-D intensive
/// actors (matrix multiply, 2-D FFT/DCT/convolution) take matrix signals.
///
/// # Examples
///
/// ```
/// use hcg_model::Shape;
/// assert_eq!(Shape::Vector(1024).len(), 1024);
/// assert_eq!("4x4".parse::<Shape>().unwrap(), Shape::Matrix(4, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// A single element.
    Scalar,
    /// A 1-D array of the given length.
    Vector(usize),
    /// A row-major matrix with `(rows, cols)`.
    Matrix(usize, usize),
}

impl Shape {
    /// Total number of elements.
    pub const fn len(self) -> usize {
        match self {
            Shape::Scalar => 1,
            Shape::Vector(n) => n,
            Shape::Matrix(r, c) => r * c,
        }
    }

    /// `true` when the shape holds zero elements (a zero-length vector or a
    /// degenerate matrix).
    pub const fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// `true` for vectors and matrices — the "array input" condition that
    /// makes an actor eligible for batch/intensive dispatch (paper §3.1).
    pub const fn is_array(self) -> bool {
        !matches!(self, Shape::Scalar)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Scalar => f.write_str("1"),
            Shape::Vector(n) => write!(f, "{n}"),
            Shape::Matrix(r, c) => write!(f, "{r}x{c}"),
        }
    }
}

impl FromStr for Shape {
    type Err = ParseTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTypeError::new("shape", s);
        if let Some((r, c)) = s.split_once('x') {
            let r: usize = r.parse().map_err(|_| err())?;
            let c: usize = c.parse().map_err(|_| err())?;
            return Ok(Shape::Matrix(r, c));
        }
        let n: usize = s.parse().map_err(|_| err())?;
        Ok(if n == 1 {
            Shape::Scalar
        } else {
            Shape::Vector(n)
        })
    }
}

/// A fully resolved signal type: element data type plus shape.
///
/// # Examples
///
/// ```
/// use hcg_model::{DataType, Shape, SignalType};
/// let sig = SignalType::vector(DataType::F32, 1024);
/// assert_eq!(sig.to_string(), "f32*1024");
/// assert_eq!("f32*1024".parse::<SignalType>().unwrap(), sig);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalType {
    /// Element data type.
    pub dtype: DataType,
    /// Dimensionality.
    pub shape: Shape,
}

impl SignalType {
    /// A scalar signal of the given data type.
    pub const fn scalar(dtype: DataType) -> Self {
        SignalType {
            dtype,
            shape: Shape::Scalar,
        }
    }

    /// A vector signal of the given data type and length.
    pub const fn vector(dtype: DataType, len: usize) -> Self {
        SignalType {
            dtype,
            shape: Shape::Vector(len),
        }
    }

    /// A matrix signal of the given data type and dimensions.
    pub const fn matrix(dtype: DataType, rows: usize, cols: usize) -> Self {
        SignalType {
            dtype,
            shape: Shape::Matrix(rows, cols),
        }
    }

    /// Total number of elements carried per sample.
    pub const fn len(self) -> usize {
        self.shape.len()
    }

    /// `true` when the signal carries zero elements.
    pub const fn is_empty(self) -> bool {
        self.shape.is_empty()
    }
}

impl fmt::Display for SignalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}*{}", self.dtype, self.shape)
    }
}

impl FromStr for SignalType {
    type Err = ParseTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (d, sh) = s
            .split_once('*')
            .ok_or_else(|| ParseTypeError::new("signal type", s))?;
        Ok(SignalType {
            dtype: d.parse()?,
            shape: sh.parse()?,
        })
    }
}

/// A parameter value attached to an actor (e.g. a `Gain` factor, FIR
/// coefficients, the FFT length).
///
/// # Examples
///
/// ```
/// use hcg_model::Param;
/// let p = Param::FloatVec(vec![0.5, 0.25]);
/// assert_eq!(p.to_string(), "0.5,0.25");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// Integer array.
    IntVec(Vec<i64>),
    /// Floating-point array.
    FloatVec(Vec<f64>),
    /// Free-form string.
    Str(String),
}

impl Param {
    /// Interpret the parameter as an integer if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Param::Int(v) => Some(*v),
            Param::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Interpret the parameter as a float if possible.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Param::Int(v) => Some(*v as f64),
            Param::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the parameter as a float array if possible (scalars widen to
    /// a one-element array).
    pub fn as_float_vec(&self) -> Option<Vec<f64>> {
        match self {
            Param::Int(v) => Some(vec![*v as f64]),
            Param::Float(v) => Some(vec![*v]),
            Param::IntVec(v) => Some(v.iter().map(|&x| x as f64).collect()),
            Param::FloatVec(v) => Some(v.clone()),
            Param::Str(_) => None,
        }
    }

    /// Parse a parameter from its textual form: comma-separated numbers form
    /// arrays, single numbers form scalars, anything else is a string.
    pub fn parse(text: &str) -> Param {
        let parts: Vec<&str> = text.split(',').map(str::trim).collect();
        let ints: Option<Vec<i64>> = parts.iter().map(|p| p.parse().ok()).collect();
        if let Some(v) = ints {
            return if v.len() == 1 {
                Param::Int(v[0])
            } else {
                Param::IntVec(v)
            };
        }
        let floats: Option<Vec<f64>> = parts.iter().map(|p| p.parse().ok()).collect();
        if let Some(v) = floats {
            return if v.len() == 1 {
                Param::Float(v[0])
            } else {
                Param::FloatVec(v)
            };
        }
        Param::Str(text.to_owned())
    }
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Whole floats keep a trailing ".0" so that text round-trips back to
        // the same variant (`5.0` must not re-parse as `Int(5)`).
        fn write_f(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
            if v.is_finite() && v.fract() == 0.0 {
                write!(f, "{v:.1}")
            } else {
                write!(f, "{v}")
            }
        }
        match self {
            Param::Int(v) => write!(f, "{v}"),
            Param::Float(v) => write_f(f, *v),
            Param::IntVec(v) => {
                for (i, it) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{it}")?;
                }
                Ok(())
            }
            Param::FloatVec(v) => {
                for (i, it) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_f(f, *it)?;
                }
                Ok(())
            }
            Param::Str(s) => f.write_str(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(DataType::I8.bit_width(), 8);
        assert_eq!(DataType::U16.bit_width(), 16);
        assert_eq!(DataType::F32.bit_width(), 32);
        assert_eq!(DataType::I64.bit_width(), 64);
        assert_eq!(DataType::F64.bit_width(), 64);
    }

    #[test]
    fn classification_flags() {
        assert!(DataType::F32.is_float());
        assert!(!DataType::F32.is_int());
        assert!(DataType::I32.is_signed());
        assert!(!DataType::U32.is_signed());
        assert!(DataType::F64.is_signed());
    }

    #[test]
    fn dtype_roundtrip_all() {
        for d in DataType::ALL {
            assert_eq!(d.name().parse::<DataType>().unwrap(), d);
        }
    }

    #[test]
    fn dtype_parse_rejects_unknown() {
        assert!("i128".parse::<DataType>().is_err());
        assert!("".parse::<DataType>().is_err());
        assert!("F32".parse::<DataType>().is_err());
    }

    #[test]
    fn shape_lengths() {
        assert_eq!(Shape::Scalar.len(), 1);
        assert_eq!(Shape::Vector(7).len(), 7);
        assert_eq!(Shape::Matrix(3, 4).len(), 12);
        assert!(Shape::Vector(0).is_empty());
        assert!(!Shape::Scalar.is_array());
        assert!(Shape::Vector(2).is_array());
        assert!(Shape::Matrix(2, 2).is_array());
    }

    #[test]
    fn shape_roundtrip() {
        for s in [Shape::Scalar, Shape::Vector(16), Shape::Matrix(3, 3)] {
            assert_eq!(s.to_string().parse::<Shape>().unwrap(), s);
        }
        assert_eq!("1".parse::<Shape>().unwrap(), Shape::Scalar);
    }

    #[test]
    fn shape_parse_rejects_garbage() {
        assert!("x".parse::<Shape>().is_err());
        assert!("3x".parse::<Shape>().is_err());
        assert!("-1".parse::<Shape>().is_err());
    }

    #[test]
    fn signal_type_roundtrip() {
        let cases = [
            SignalType::scalar(DataType::I8),
            SignalType::vector(DataType::F32, 1024),
            SignalType::matrix(DataType::F64, 4, 4),
        ];
        for c in cases {
            assert_eq!(c.to_string().parse::<SignalType>().unwrap(), c);
        }
    }

    #[test]
    fn signal_type_parse_errors() {
        assert!("f32".parse::<SignalType>().is_err());
        assert!("f32*".parse::<SignalType>().is_err());
        assert!("q8*4".parse::<SignalType>().is_err());
    }

    #[test]
    fn param_parse_forms() {
        assert_eq!(Param::parse("42"), Param::Int(42));
        assert_eq!(Param::parse("1.5"), Param::Float(1.5));
        assert_eq!(Param::parse("1,2,3"), Param::IntVec(vec![1, 2, 3]));
        assert_eq!(Param::parse("0.5, 1.5"), Param::FloatVec(vec![0.5, 1.5]));
        assert_eq!(Param::parse("hann"), Param::Str("hann".into()));
    }

    #[test]
    fn param_conversions() {
        assert_eq!(Param::Int(3).as_float(), Some(3.0));
        assert_eq!(Param::Float(2.0).as_int(), Some(2));
        assert_eq!(Param::Float(2.5).as_int(), None);
        assert_eq!(Param::Str("x".into()).as_float_vec(), None);
        assert_eq!(
            Param::IntVec(vec![1, 2]).as_float_vec(),
            Some(vec![1.0, 2.0])
        );
    }

    #[test]
    fn param_display_roundtrip() {
        for p in [
            Param::Int(-7),
            Param::Float(0.25),
            Param::IntVec(vec![1, 2, 3]),
            Param::FloatVec(vec![0.5, 1.25]),
            Param::Str("blackman".into()),
        ] {
            assert_eq!(Param::parse(&p.to_string()), p);
        }
    }
}
