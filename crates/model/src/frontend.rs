//! Cached front-end artifacts for a model.
//!
//! Type inference and scheduling are the expensive, arch-independent parts
//! of compilation. [`FrontEnd`] bundles one run of both so a compile session
//! can compute them once and lend the results by reference to every
//! generator × architecture combination.

use crate::model::{Model, ModelError, TypeMap};
use crate::schedule::{schedule, Schedule};

/// The arch-independent analysis results for one model: its inferred signal
/// types and its deterministic topological schedule.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    /// Signal type of every output port (see [`Model::infer_types`]).
    pub types: TypeMap,
    /// Deterministic execution order (see [`schedule`]).
    pub schedule: Schedule,
}

impl Model {
    /// Run the full front end once: structural validation + type inference
    /// followed by scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when validation, inference or scheduling fails.
    pub fn front_end(&self) -> Result<FrontEnd, ModelError> {
        let types = self.infer_types()?;
        let schedule = schedule(self)?;
        Ok(FrontEnd { types, schedule })
    }
}

#[cfg(test)]
mod tests {
    use crate::library;

    #[test]
    fn front_end_matches_direct_calls() {
        let m = library::fig4_model();
        let fe = m.front_end().unwrap();
        assert_eq!(
            fe.schedule.order,
            crate::schedule::schedule(&m).unwrap().order
        );
        assert_eq!(fe.types, m.infer_types().unwrap());
    }
}
