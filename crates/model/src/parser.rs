//! The textual model file format (step ① of paper §2: "model parse
//! transforms model file into structured actor information").
//!
//! The format is an XML dialect mirroring the information HCG reads from a
//! Simulink model:
//!
//! ```xml
//! <model name="fir">
//!   <actor id="0" name="x" kind="Inport">
//!     <param name="type">i32*1024</param>
//!   </actor>
//!   <actor id="1" name="y" kind="Outport"/>
//!   <connect from="0:0" to="1:0"/>
//! </model>
//! ```

use crate::actor::{Actor, ActorId, ActorKind};
use crate::model::{Connection, Model, PortRef};
use crate::types::Param;
use crate::xml::{self, XmlElement, XmlError};
use std::collections::BTreeMap;
use std::fmt;

/// Error produced while reading a model file.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseModelError {
    /// The underlying XML was malformed.
    Xml(XmlError),
    /// The XML was well-formed but violated the model schema.
    Schema(String),
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseModelError::Xml(e) => write!(f, "{e}"),
            ParseModelError::Schema(m) => write!(f, "model schema error: {m}"),
        }
    }
}

impl std::error::Error for ParseModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseModelError::Xml(e) => Some(e),
            ParseModelError::Schema(_) => None,
        }
    }
}

impl From<XmlError> for ParseModelError {
    fn from(e: XmlError) -> Self {
        ParseModelError::Xml(e)
    }
}

fn schema_err(msg: impl Into<String>) -> ParseModelError {
    ParseModelError::Schema(msg.into())
}

/// Parse a model file.
///
/// # Errors
///
/// Returns [`ParseModelError`] for malformed XML or schema violations.
/// Structural/type validation is *not* performed here; call
/// [`Model::infer_types`] afterwards (as [`crate::ModelBuilder::build`]
/// does) to reject semantically invalid models.
pub fn model_from_xml(text: &str) -> Result<Model, ParseModelError> {
    let root = xml::parse(text)?;
    if root.name != "model" {
        return Err(schema_err(format!(
            "root element must be <model>, got <{}>",
            root.name
        )));
    }
    let name = root.attr("name").unwrap_or("unnamed").to_owned();
    let mut actors: Vec<Actor> = Vec::new();
    let mut connections = Vec::new();
    for child in &root.children {
        match child.name.as_str() {
            "actor" => actors.push(parse_actor(child, actors.len())?),
            "connect" => connections.push(parse_connect(child)?),
            other => return Err(schema_err(format!("unexpected element <{other}>"))),
        }
    }
    Ok(Model {
        name,
        actors,
        connections,
    })
}

fn parse_actor(el: &XmlElement, expected_id: usize) -> Result<Actor, ParseModelError> {
    let id: usize = el
        .attr("id")
        .ok_or_else(|| schema_err("<actor> missing id"))?
        .parse()
        .map_err(|_| schema_err("<actor> id must be an integer"))?;
    if id != expected_id {
        return Err(schema_err(format!(
            "actor ids must be dense and in order: expected {expected_id}, got {id}"
        )));
    }
    let name = el
        .attr("name")
        .ok_or_else(|| schema_err("<actor> missing name"))?
        .to_owned();
    let kind: ActorKind = el
        .attr("kind")
        .ok_or_else(|| schema_err("<actor> missing kind"))?
        .parse()
        .map_err(|e| schema_err(format!("{e}")))?;
    let mut params = BTreeMap::new();
    for p in el.children_named("param") {
        let pname = p
            .attr("name")
            .ok_or_else(|| schema_err("<param> missing name"))?;
        params.insert(pname.to_owned(), Param::parse(&p.text));
    }
    Ok(Actor {
        id: ActorId(id),
        name,
        kind,
        params,
    })
}

fn parse_port(spec: &str) -> Result<PortRef, ParseModelError> {
    let (a, p) = spec
        .split_once(':')
        .ok_or_else(|| schema_err(format!("port reference {spec:?} must be actor:port")))?;
    let actor: usize = a
        .parse()
        .map_err(|_| schema_err(format!("bad actor id in {spec:?}")))?;
    let port: usize = p
        .parse()
        .map_err(|_| schema_err(format!("bad port index in {spec:?}")))?;
    Ok(PortRef::new(ActorId(actor), port))
}

fn parse_connect(el: &XmlElement) -> Result<Connection, ParseModelError> {
    let from = parse_port(
        el.attr("from")
            .ok_or_else(|| schema_err("<connect> missing from"))?,
    )?;
    let to = parse_port(
        el.attr("to")
            .ok_or_else(|| schema_err("<connect> missing to"))?,
    )?;
    Ok(Connection { from, to })
}

/// Serialise a model to its file format. The output parses back to an equal
/// model via [`model_from_xml`].
pub fn model_to_xml(model: &Model) -> String {
    let mut root = XmlElement::new("model").with_attr("name", model.name.clone());
    for a in &model.actors {
        let mut el = XmlElement::new("actor")
            .with_attr("id", a.id.0.to_string())
            .with_attr("name", a.name.clone())
            .with_attr("kind", a.kind.name());
        for (k, v) in &a.params {
            let mut p = XmlElement::new("param").with_attr("name", k.clone());
            p.text = v.to_string();
            el.children.push(p);
        }
        root.children.push(el);
    }
    for c in &model.connections {
        root.children.push(
            XmlElement::new("connect")
                .with_attr("from", format!("{}:{}", c.from.actor.0, c.from.port))
                .with_attr("to", format!("{}:{}", c.to.actor.0, c.to.port)),
        );
    }
    root.to_xml()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::types::{DataType, SignalType};

    fn sample() -> Model {
        let mut b = ModelBuilder::new("sample");
        let x = b.inport("x", SignalType::vector(DataType::I32, 8));
        let s = b.shift("half", ActorKind::Shr, 1);
        let o = b.outport("y");
        b.connect(x, 0, s, 0);
        b.connect(s, 0, o, 0);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_model() {
        let m = sample();
        let text = model_to_xml(&m);
        let back = model_from_xml(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_minimal_document() {
        let m = model_from_xml(
            r#"<model name="t">
                 <actor id="0" name="x" kind="Inport"><param name="type">f32*4</param></actor>
                 <actor id="1" name="y" kind="Outport"/>
                 <connect from="0:0" to="1:0"/>
               </model>"#,
        )
        .unwrap();
        assert_eq!(m.name, "t");
        assert_eq!(m.actors.len(), 2);
        assert_eq!(m.connections.len(), 1);
        m.infer_types().unwrap();
    }

    #[test]
    fn non_dense_ids_rejected() {
        let e = model_from_xml(r#"<model name="t"><actor id="3" name="x" kind="Inport"/></model>"#)
            .unwrap_err();
        assert!(matches!(e, ParseModelError::Schema(_)));
    }

    #[test]
    fn unknown_kind_rejected() {
        let e = model_from_xml(r#"<model name="t"><actor id="0" name="x" kind="Warp"/></model>"#)
            .unwrap_err();
        assert!(matches!(e, ParseModelError::Schema(_)));
    }

    #[test]
    fn bad_port_spec_rejected() {
        let e = model_from_xml(
            r#"<model name="t">
                 <actor id="0" name="x" kind="Inport"><param name="type">f32*4</param></actor>
                 <connect from="0" to="0:0"/>
               </model>"#,
        )
        .unwrap_err();
        assert!(matches!(e, ParseModelError::Schema(_)));
    }

    #[test]
    fn xml_error_propagates() {
        assert!(matches!(
            model_from_xml("<model"),
            Err(ParseModelError::Xml(_))
        ));
    }

    #[test]
    fn unexpected_element_rejected() {
        let e = model_from_xml(r#"<model name="t"><blob/></model>"#).unwrap_err();
        assert!(matches!(e, ParseModelError::Schema(_)));
    }
}
