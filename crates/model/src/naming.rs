//! C-identifier naming for model entities.
//!
//! Actor names are free-form text; generated programs need valid, *unique*
//! C identifiers. [`sanitize_identifier`] performs the character mapping and
//! [`unique_identifier`] resolves post-sanitization collisions (`"a b"` and
//! `"a_b"` both sanitize to `a_b`) with a deterministic numeric suffix.

use std::collections::BTreeSet;

/// Make a name a valid C identifier: every character outside
/// `[A-Za-z0-9_]` becomes `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_identifier(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Claim `base` in `used`, appending `_2`, `_3`, … until the name is free.
///
/// The suffix sequence is deterministic, so generated programs are stable
/// across runs. The returned name is recorded in `used`.
pub fn unique_identifier(base: String, used: &mut BTreeSet<String>) -> String {
    if used.insert(base.clone()) {
        return base;
    }
    let mut n = 2usize;
    loop {
        let candidate = format!("{base}_{n}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
        n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_characters() {
        assert_eq!(sanitize_identifier("a b-c"), "a_b_c");
        assert_eq!(sanitize_identifier("3x"), "_3x");
        assert_eq!(sanitize_identifier("ok_name"), "ok_name");
    }

    #[test]
    fn unique_appends_numeric_suffix() {
        let mut used = BTreeSet::new();
        assert_eq!(unique_identifier("a_b".into(), &mut used), "a_b");
        assert_eq!(unique_identifier("a_b".into(), &mut used), "a_b_2");
        assert_eq!(unique_identifier("a_b".into(), &mut used), "a_b_3");
        // A literal `a_b_2` actor arriving later also dodges the taken name.
        assert_eq!(unique_identifier("a_b_2".into(), &mut used), "a_b_2_2");
    }
}
