//! Runtime signal values: a typed tensor with integer or floating-point
//! storage, used by the reference interpreter, the virtual machine and the
//! kernel library so that every execution path shares one value
//! representation.

use crate::op::{eval_binary_f, eval_binary_i, eval_unary_f, eval_unary_i, wrap_int, ElemOp};
use crate::types::{DataType, SignalType};
use std::fmt;

/// Element storage of a [`Tensor`]: floats in `f64`, integers in `i64`
/// (wrapped to the signal's declared bit width on every operation).
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// Floating-point elements.
    F(Vec<f64>),
    /// Integer elements (bit pattern of the declared type, sign-extended).
    I(Vec<i64>),
}

/// Error produced by tensor operations with incompatible operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorError(String);

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tensor error: {}", self.0)
    }
}

impl std::error::Error for TensorError {}

/// A typed runtime value: one sample of a model signal.
///
/// # Examples
///
/// ```
/// use hcg_model::{Tensor, SignalType, DataType, op::ElemOp};
/// let t = SignalType::vector(DataType::I32, 4);
/// let a = Tensor::from_i64(t, vec![1, 2, 3, 4]).unwrap();
/// let b = Tensor::from_i64(t, vec![10, 20, 30, 40]).unwrap();
/// let sum = a.binary(ElemOp::Add, &b).unwrap();
/// assert_eq!(sum.as_i64(), vec![11, 22, 33, 44]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// The declared signal type.
    pub ty: SignalType,
    data: TensorData,
}

impl Tensor {
    /// An all-zero tensor of the given type.
    pub fn zeros(ty: SignalType) -> Tensor {
        if ty.dtype.is_float() {
            Tensor {
                ty,
                data: TensorData::F(vec![0.0; ty.len()]),
            }
        } else {
            Tensor {
                ty,
                data: TensorData::I(vec![0; ty.len()]),
            }
        }
    }

    /// Build from `f64` values; integers are rounded and wrapped.
    ///
    /// # Errors
    ///
    /// Fails when the element count does not match the type.
    pub fn from_f64(ty: SignalType, values: Vec<f64>) -> Result<Tensor, TensorError> {
        if values.len() != ty.len() {
            return Err(TensorError(format!(
                "expected {} elements for {ty}, got {}",
                ty.len(),
                values.len()
            )));
        }
        Ok(if ty.dtype.is_float() {
            Tensor {
                ty,
                data: TensorData::F(values),
            }
        } else {
            Tensor {
                ty,
                data: TensorData::I(
                    values
                        .into_iter()
                        .map(|v| wrap_int(ty.dtype, v.round() as i64))
                        .collect(),
                ),
            }
        })
    }

    /// Build from `i64` values; float types convert losslessly where
    /// possible.
    ///
    /// # Errors
    ///
    /// Fails when the element count does not match the type.
    pub fn from_i64(ty: SignalType, values: Vec<i64>) -> Result<Tensor, TensorError> {
        if values.len() != ty.len() {
            return Err(TensorError(format!(
                "expected {} elements for {ty}, got {}",
                ty.len(),
                values.len()
            )));
        }
        Ok(if ty.dtype.is_float() {
            Tensor {
                ty,
                data: TensorData::F(values.into_iter().map(|v| v as f64).collect()),
            }
        } else {
            Tensor {
                ty,
                data: TensorData::I(values.into_iter().map(|v| wrap_int(ty.dtype, v)).collect()),
            }
        })
    }

    /// Borrow the raw storage.
    pub fn data(&self) -> &TensorData {
        &self.data
    }

    /// Elements as `f64` (integers convert exactly up to 2^53).
    pub fn as_f64(&self) -> Vec<f64> {
        match &self.data {
            TensorData::F(v) => v.clone(),
            TensorData::I(v) => v.iter().map(|&x| x as f64).collect(),
        }
    }

    /// Elements as `i64` (floats are rounded).
    pub fn as_i64(&self) -> Vec<i64> {
        match &self.data {
            TensorData::F(v) => v.iter().map(|&x| x.round() as i64).collect(),
            TensorData::I(v) => v.clone(),
        }
    }

    /// One element as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get_f64(&self, i: usize) -> f64 {
        match &self.data {
            TensorData::F(v) => v[i],
            TensorData::I(v) => v[i] as f64,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.data {
            TensorData::F(v) => v.len(),
            TensorData::I(v) => v.len(),
        }
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply a unary element-wise operation.
    ///
    /// # Errors
    ///
    /// Fails when the operation does not support the element type.
    pub fn unary(&self, op: ElemOp) -> Result<Tensor, TensorError> {
        if !op.supports(self.ty.dtype) {
            return Err(TensorError(format!(
                "{op} unsupported on {}",
                self.ty.dtype
            )));
        }
        let data = match &self.data {
            TensorData::F(v) => TensorData::F(v.iter().map(|&a| eval_unary_f(op, a)).collect()),
            TensorData::I(v) => TensorData::I(
                v.iter()
                    .map(|&a| eval_unary_i(op, self.ty.dtype, a))
                    .collect(),
            ),
        };
        Ok(Tensor { ty: self.ty, data })
    }

    /// Apply a binary element-wise operation with scalar broadcast: either
    /// operand may be scalar, otherwise shapes must match. The result takes
    /// the array operand's shape.
    ///
    /// # Errors
    ///
    /// Fails on dtype mismatch, unsupported dtype, or incompatible shapes.
    pub fn binary(&self, op: ElemOp, rhs: &Tensor) -> Result<Tensor, TensorError> {
        if self.ty.dtype != rhs.ty.dtype {
            return Err(TensorError(format!(
                "dtype mismatch {} vs {}",
                self.ty.dtype, rhs.ty.dtype
            )));
        }
        if !op.supports(self.ty.dtype) {
            return Err(TensorError(format!(
                "{op} unsupported on {}",
                self.ty.dtype
            )));
        }
        let (n, out_ty) = if self.len() == rhs.len() {
            (self.len(), self.ty)
        } else if self.len() == 1 {
            (rhs.len(), rhs.ty)
        } else if rhs.len() == 1 {
            (self.len(), self.ty)
        } else {
            return Err(TensorError(format!(
                "shape mismatch {} vs {}",
                self.ty, rhs.ty
            )));
        };
        let pick = |t: &Tensor, i: usize| if t.len() == 1 { 0 } else { i };
        let data = match (&self.data, &rhs.data) {
            (TensorData::F(a), TensorData::F(b)) => TensorData::F(
                (0..n)
                    .map(|i| eval_binary_f(op, a[pick(self, i)], b[pick(rhs, i)]))
                    .collect(),
            ),
            (TensorData::I(a), TensorData::I(b)) => TensorData::I(
                (0..n)
                    .map(|i| eval_binary_i(op, self.ty.dtype, a[pick(self, i)], b[pick(rhs, i)]))
                    .collect(),
            ),
            _ => unreachable!("dtype equality implies same storage"),
        };
        Ok(Tensor { ty: out_ty, data })
    }

    /// Convert element type (the `Cast` actor): float→int rounds and wraps,
    /// int→float converts, int→int re-wraps.
    pub fn cast(&self, to: DataType) -> Tensor {
        let ty = SignalType {
            dtype: to,
            shape: self.ty.shape,
        };
        let data = if to.is_float() {
            TensorData::F(self.as_f64())
        } else {
            TensorData::I(self.as_i64().into_iter().map(|v| wrap_int(to, v)).collect())
        };
        Tensor { ty, data }
    }

    /// Maximum absolute difference against another tensor (for approximate
    /// float comparisons in tests and the consistency checker).
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        let a = self.as_f64();
        let b = other.as_f64();
        a.iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Shape;

    fn vi32(vals: Vec<i64>) -> Tensor {
        let n = vals.len();
        Tensor::from_i64(SignalType::vector(DataType::I32, n), vals).unwrap()
    }

    fn vf32(vals: Vec<f64>) -> Tensor {
        let n = vals.len();
        Tensor::from_f64(SignalType::vector(DataType::F32, n), vals).unwrap()
    }

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(SignalType::matrix(DataType::F64, 2, 3));
        assert_eq!(t.len(), 6);
        assert_eq!(t.as_f64(), vec![0.0; 6]);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(Tensor::from_f64(SignalType::vector(DataType::F32, 3), vec![1.0]).is_err());
        assert!(Tensor::from_i64(SignalType::scalar(DataType::I8), vec![]).is_err());
    }

    #[test]
    fn int_storage_wraps_on_construction() {
        let t = Tensor::from_i64(SignalType::scalar(DataType::I8), vec![200]).unwrap();
        assert_eq!(t.as_i64(), vec![-56]);
    }

    #[test]
    fn binary_elementwise() {
        let a = vi32(vec![1, 2, 3]);
        let b = vi32(vec![10, 20, 30]);
        assert_eq!(
            a.binary(ElemOp::Add, &b).unwrap().as_i64(),
            vec![11, 22, 33]
        );
        assert_eq!(b.binary(ElemOp::Sub, &a).unwrap().as_i64(), vec![9, 18, 27]);
        assert_eq!(
            a.binary(ElemOp::Mul, &b).unwrap().as_i64(),
            vec![10, 40, 90]
        );
    }

    #[test]
    fn scalar_broadcast_both_sides() {
        let a = vf32(vec![1.0, 2.0, 4.0]);
        let k = Tensor::from_f64(SignalType::scalar(DataType::F32), vec![2.0]).unwrap();
        let left = k.binary(ElemOp::Mul, &a).unwrap();
        let right = a.binary(ElemOp::Mul, &k).unwrap();
        assert_eq!(left.as_f64(), vec![2.0, 4.0, 8.0]);
        assert_eq!(right.as_f64(), vec![2.0, 4.0, 8.0]);
        assert_eq!(left.ty.shape, Shape::Vector(3));
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let a = vi32(vec![1]);
        let b = vf32(vec![1.0]);
        assert!(a.binary(ElemOp::Add, &b).is_err());
    }

    #[test]
    fn unsupported_op_rejected() {
        let a = vi32(vec![1, 2]);
        assert!(a.unary(ElemOp::Sqrt).is_err());
        let b = vf32(vec![1.0]);
        assert!(b.unary(ElemOp::BitNot).is_err());
    }

    #[test]
    fn unary_ops() {
        let a = vf32(vec![4.0, 9.0]);
        assert_eq!(a.unary(ElemOp::Sqrt).unwrap().as_f64(), vec![2.0, 3.0]);
        let b = vi32(vec![-3, 5]);
        assert_eq!(b.unary(ElemOp::Abs).unwrap().as_i64(), vec![3, 5]);
        assert_eq!(b.unary(ElemOp::Neg).unwrap().as_i64(), vec![3, -5]);
    }

    #[test]
    fn cast_float_to_int_rounds_and_wraps() {
        let a = vf32(vec![1.6, 300.0]);
        let c = a.cast(DataType::I8);
        assert_eq!(c.as_i64(), vec![2, 44]);
        assert_eq!(c.ty.dtype, DataType::I8);
    }

    #[test]
    fn cast_int_widening() {
        let a = Tensor::from_i64(SignalType::vector(DataType::I8, 2), vec![-1, 7]).unwrap();
        let c = a.cast(DataType::I32);
        assert_eq!(c.as_i64(), vec![-1, 7]);
    }

    #[test]
    fn max_abs_diff() {
        let a = vf32(vec![1.0, 2.0]);
        let b = vf32(vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
