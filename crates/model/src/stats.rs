//! Front-end instrumentation: how many times the expensive model analyses
//! (type inference, scheduling) actually ran.
//!
//! The staged compilation pipeline caches both artifacts in a
//! `CompileSession` so that a fleet of generator × architecture runs shares
//! one computation per model. These counters make that reuse *testable*:
//! a session-cache test snapshots them, drives the whole fleet, and asserts
//! the delta is exactly one.
//!
//! Counters are thread-local so parallel test threads (and parallel fleet
//! shards) never observe each other's runs.

use std::cell::Cell;

thread_local! {
    static TYPE_INFERENCE_RUNS: Cell<u64> = const { Cell::new(0) };
    static SCHEDULE_RUNS: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`Model::infer_types`](crate::Model::infer_types) executions on
/// this thread since it started.
pub fn type_inference_runs() -> u64 {
    TYPE_INFERENCE_RUNS.with(Cell::get)
}

/// Number of [`schedule`](crate::schedule::schedule) executions on this
/// thread since it started.
pub fn schedule_runs() -> u64 {
    SCHEDULE_RUNS.with(Cell::get)
}

/// This thread's counters as an [`hcg_obs::MetricsSnapshot`], under the
/// `model.*` namespace — the bridge from the thread-local cells into the
/// unified metrics schema.
pub fn snapshot() -> hcg_obs::MetricsSnapshot {
    let mut s = hcg_obs::MetricsSnapshot::new();
    s.set_counter("model.type_inference_runs", type_inference_runs());
    s.set_counter("model.schedule_runs", schedule_runs());
    s
}

pub(crate) fn note_type_inference() {
    TYPE_INFERENCE_RUNS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn note_schedule() {
    SCHEDULE_RUNS.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::schedule::schedule;

    #[test]
    fn counters_track_runs() {
        let m = library::fig4_model();
        let t0 = type_inference_runs();
        let s0 = schedule_runs();
        m.infer_types().unwrap();
        m.infer_types().unwrap();
        schedule(&m).unwrap();
        assert_eq!(type_inference_runs() - t0, 2);
        assert_eq!(schedule_runs() - s0, 1);
    }
}
