//! # hcg-model — Simulink-like modeling front end
//!
//! The substrate that plays the role of Simulink's model layer in the HCG
//! reproduction (paper: *HCG: Optimizing Embedded Code Generation of
//! Simulink with SIMD Instruction Synthesis*, DAC 2022). It provides:
//!
//! * signal types: [`DataType`], [`Shape`], [`SignalType`], [`Param`];
//! * the actor inventory of paper Table 1 ([`ActorKind`]) and the
//!   element-wise operation vocabulary ([`op::ElemOp`]) with reference
//!   semantics;
//! * the [`Model`] container with structural validation and signal type
//!   inference, plus a fluent [`ModelBuilder`];
//! * a from-scratch [`xml`] reader/writer and the textual model [`parser`]
//!   (the paper parses `.slx` with TinyXML; this is the equivalent);
//! * [`schedule`] analysis (deterministic topological ordering with
//!   delay-broken feedback);
//! * runtime values ([`Tensor`]) shared by every execution path;
//! * the benchmark model [`library`] used throughout the evaluation.
//!
//! # Examples
//!
//! ```
//! use hcg_model::{library, schedule::schedule};
//!
//! # fn main() -> Result<(), hcg_model::ModelError> {
//! let model = library::lowpass_model(1024);
//! let types = model.infer_types()?;
//! let order = schedule(&model)?;
//! assert_eq!(order.order.len(), model.actors.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod actor;
mod builder;
mod frontend;
mod model;
mod tensor;
mod types;

pub mod delta;
pub mod library;
pub mod naming;
pub mod op;
pub mod parser;
pub mod schedule;
pub mod stats;
pub mod xml;

pub use actor::{Actor, ActorId, ActorKind, KindClass, ParseActorKindError};
pub use builder::ModelBuilder;
pub use delta::{EditOp, ModelDelta};
pub use frontend::FrontEnd;
pub use model::{Connection, Model, ModelError, PortRef, TypeMap};
pub use tensor::{Tensor, TensorData, TensorError};
pub use types::{DataType, Param, ParseTypeError, Shape, SignalType};
