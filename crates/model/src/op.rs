//! The element-wise operation vocabulary shared by the dataflow graph, the
//! instruction-set descriptions and the virtual machine, together with its
//! reference scalar semantics.
//!
//! Keeping the semantics in one place guarantees that scalar code (the
//! baselines), SIMD code (HCG) and the golden reference interpreter agree —
//! the paper's §4.1 consistency claim is checked against these functions.

use crate::actor::ActorKind;
use crate::types::DataType;
use std::fmt;

/// An element-wise operation over one or two operands.
///
/// This is the vocabulary of the batch computing actors (paper Table 1b)
/// plus the basic element-wise actors (`Neg`, `Gain`-style scaling is
/// expressed as `Mul` with a constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElemOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division by zero yields 0 by definition).
    Div,
    /// Shift right by a compile-time constant (arithmetic for signed types,
    /// logical for unsigned).
    Shr(u32),
    /// Shift left by a compile-time constant.
    Shl(u32),
    /// Bitwise NOT.
    BitNot,
    /// Bitwise AND.
    BitAnd,
    /// Bitwise OR.
    BitOr,
    /// Bitwise XOR.
    BitXor,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Absolute value.
    Abs,
    /// Absolute difference `|a − b|`.
    Abd,
    /// Reciprocal (floats only).
    Recp,
    /// Square root (floats only).
    Sqrt,
    /// Negation.
    Neg,
}

impl ElemOp {
    /// Number of operands (1 or 2).
    pub const fn arity(self) -> usize {
        use ElemOp::*;
        match self {
            Shr(_) | Shl(_) | BitNot | Abs | Recp | Sqrt | Neg => 1,
            _ => 2,
        }
    }

    /// `true` when the operation is commutative (`a op b == b op a`), which
    /// the subgraph matcher uses to try operand swaps.
    pub const fn commutative(self) -> bool {
        use ElemOp::*;
        matches!(self, Add | Mul | BitAnd | BitOr | BitXor | Min | Max | Abd)
    }

    /// `true` when only floating-point element types are legal.
    pub const fn float_only(self) -> bool {
        matches!(self, ElemOp::Recp | ElemOp::Sqrt)
    }

    /// `true` when only integer element types are legal.
    pub const fn int_only(self) -> bool {
        use ElemOp::*;
        matches!(self, Shr(_) | Shl(_) | BitNot | BitAnd | BitOr | BitXor)
    }

    /// `true` when the operation is legal on the given element type.
    pub fn supports(self, dtype: DataType) -> bool {
        if self.float_only() {
            dtype.is_float()
        } else if self.int_only() {
            dtype.is_int()
        } else if matches!(self, ElemOp::Neg | ElemOp::Abs) {
            dtype.is_signed()
        } else {
            true
        }
    }

    /// The base mnemonic, ignoring any shift amount (used by the
    /// instruction-set text format, e.g. `Shr` for `Shr(1)`).
    pub const fn mnemonic(self) -> &'static str {
        use ElemOp::*;
        match self {
            Add => "Add",
            Sub => "Sub",
            Mul => "Mul",
            Div => "Div",
            Shr(_) => "Shr",
            Shl(_) => "Shl",
            BitNot => "BitNot",
            BitAnd => "BitAnd",
            BitOr => "BitOr",
            BitXor => "BitXor",
            Min => "Min",
            Max => "Max",
            Abs => "Abs",
            Abd => "Abd",
            Recp => "Recp",
            Sqrt => "Sqrt",
            Neg => "Neg",
        }
    }

    /// The batch-actor kind corresponding to this operation, if any.
    pub const fn actor_kind(self) -> Option<ActorKind> {
        use ElemOp::*;
        Some(match self {
            Add => ActorKind::Add,
            Sub => ActorKind::Sub,
            Mul => ActorKind::Mul,
            Div => ActorKind::Div,
            Shr(_) => ActorKind::Shr,
            Shl(_) => ActorKind::Shl,
            BitNot => ActorKind::BitNot,
            BitAnd => ActorKind::BitAnd,
            BitOr => ActorKind::BitOr,
            BitXor => ActorKind::BitXor,
            Min => ActorKind::Min,
            Max => ActorKind::Max,
            Abs => ActorKind::Abs,
            Abd => ActorKind::Abd,
            Recp => ActorKind::Recp,
            Sqrt => ActorKind::Sqrt,
            Neg => ActorKind::Neg,
        })
    }

    /// The element operation implemented by a batch-capable actor kind, with
    /// the shift amount taken from the actor's `amount` parameter.
    pub fn from_actor(kind: ActorKind, shift_amount: u32) -> Option<ElemOp> {
        use ActorKind::*;
        Some(match kind {
            Add => ElemOp::Add,
            Sub => ElemOp::Sub,
            Mul => ElemOp::Mul,
            Div => ElemOp::Div,
            Shr => ElemOp::Shr(shift_amount),
            Shl => ElemOp::Shl(shift_amount),
            BitNot => ElemOp::BitNot,
            BitAnd => ElemOp::BitAnd,
            BitOr => ElemOp::BitOr,
            BitXor => ElemOp::BitXor,
            Min => ElemOp::Min,
            Max => ElemOp::Max,
            Abs => ElemOp::Abs,
            Abd => ElemOp::Abd,
            Recp => ElemOp::Recp,
            Sqrt => ElemOp::Sqrt,
            Neg => ElemOp::Neg,
            _ => return None,
        })
    }
}

impl fmt::Display for ElemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemOp::Shr(n) => write!(f, "Shr[{n}]"),
            ElemOp::Shl(n) => write!(f, "Shl[{n}]"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// Wrap an `i64` value into the representable range of an integer `dtype`
/// (two's-complement truncation, then sign- or zero-extension).
///
/// # Examples
///
/// ```
/// use hcg_model::{op::wrap_int, DataType};
/// assert_eq!(wrap_int(DataType::I8, 130), -126);
/// assert_eq!(wrap_int(DataType::U8, 300), 44);
/// ```
pub fn wrap_int(dtype: DataType, v: i64) -> i64 {
    let bits = dtype.bit_width();
    if bits == 64 {
        return v; // u64 is stored as the bit-equivalent i64.
    }
    let mask = (1i64 << bits) - 1;
    let t = v & mask;
    if dtype.is_signed() && (t >> (bits - 1)) & 1 == 1 {
        t | !mask
    } else {
        t
    }
}

/// Reference semantics of a unary operation on one float element.
///
/// # Panics
///
/// Panics on integer-only operations (callers dispatch on dtype first).
pub fn eval_unary_f(op: ElemOp, a: f64) -> f64 {
    match op {
        ElemOp::Abs => a.abs(),
        ElemOp::Recp => 1.0 / a,
        ElemOp::Sqrt => a.sqrt(),
        ElemOp::Neg => -a,
        other => panic!("{other} is not a float unary op"),
    }
}

/// Reference semantics of a binary operation on float elements.
///
/// # Panics
///
/// Panics on integer-only operations.
pub fn eval_binary_f(op: ElemOp, a: f64, b: f64) -> f64 {
    match op {
        ElemOp::Add => a + b,
        ElemOp::Sub => a - b,
        ElemOp::Mul => a * b,
        ElemOp::Div => a / b,
        ElemOp::Min => a.min(b),
        ElemOp::Max => a.max(b),
        ElemOp::Abd => (a - b).abs(),
        other => panic!("{other} is not a float binary op"),
    }
}

/// Reference semantics of a unary operation on one integer element of the
/// given type; the result is wrapped back into the type's range.
///
/// # Panics
///
/// Panics on float-only operations.
pub fn eval_unary_i(op: ElemOp, dtype: DataType, a: i64) -> i64 {
    let a = wrap_int(dtype, a);
    let r = match op {
        ElemOp::Abs => a.wrapping_abs(),
        ElemOp::Neg => a.wrapping_neg(),
        ElemOp::BitNot => !a,
        ElemOp::Shl(n) => a.wrapping_shl(n),
        ElemOp::Shr(n) => {
            if dtype.is_signed() {
                a >> n.min(63)
            } else {
                let bits = dtype.bit_width();
                let mask = if bits == 64 {
                    !0i64
                } else {
                    (1i64 << bits) - 1
                };
                ((a & mask) as u64 >> n.min(63)) as i64
            }
        }
        other => panic!("{other} is not an int unary op"),
    };
    wrap_int(dtype, r)
}

/// Reference semantics of a binary operation on integer elements of the
/// given type; the result is wrapped back into the type's range. Division by
/// zero yields 0 (embedded targets commonly trap; a total function keeps the
/// generators comparable).
///
/// # Panics
///
/// Panics on float-only operations.
pub fn eval_binary_i(op: ElemOp, dtype: DataType, a: i64, b: i64) -> i64 {
    let a = wrap_int(dtype, a);
    let b = wrap_int(dtype, b);
    let r = match op {
        ElemOp::Add => a.wrapping_add(b),
        ElemOp::Sub => a.wrapping_sub(b),
        ElemOp::Mul => a.wrapping_mul(b),
        ElemOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        ElemOp::BitAnd => a & b,
        ElemOp::BitOr => a | b,
        ElemOp::BitXor => a ^ b,
        ElemOp::Min => a.min(b),
        ElemOp::Max => a.max(b),
        ElemOp::Abd => a.wrapping_sub(b).wrapping_abs(),
        other => panic!("{other} is not an int binary op"),
    };
    wrap_int(dtype, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_flags() {
        assert_eq!(ElemOp::Add.arity(), 2);
        assert_eq!(ElemOp::Shr(1).arity(), 1);
        assert!(ElemOp::Add.commutative());
        assert!(!ElemOp::Sub.commutative());
        assert!(ElemOp::Recp.float_only());
        assert!(ElemOp::BitAnd.int_only());
    }

    #[test]
    fn supports_matrix() {
        assert!(ElemOp::Add.supports(DataType::I32));
        assert!(ElemOp::Add.supports(DataType::F32));
        assert!(!ElemOp::Sqrt.supports(DataType::I32));
        assert!(!ElemOp::Shr(1).supports(DataType::F32));
        assert!(!ElemOp::Neg.supports(DataType::U8));
        assert!(ElemOp::Neg.supports(DataType::I8));
    }

    #[test]
    fn actor_kind_roundtrip() {
        for op in [
            ElemOp::Add,
            ElemOp::Sub,
            ElemOp::Mul,
            ElemOp::Div,
            ElemOp::Shr(3),
            ElemOp::Shl(2),
            ElemOp::BitNot,
            ElemOp::BitAnd,
            ElemOp::BitOr,
            ElemOp::BitXor,
            ElemOp::Min,
            ElemOp::Max,
            ElemOp::Abs,
            ElemOp::Abd,
            ElemOp::Recp,
            ElemOp::Sqrt,
            ElemOp::Neg,
        ] {
            let kind = op.actor_kind().unwrap();
            let shift = match op {
                ElemOp::Shr(n) | ElemOp::Shl(n) => n,
                _ => 0,
            };
            assert_eq!(ElemOp::from_actor(kind, shift), Some(op));
        }
        assert_eq!(ElemOp::from_actor(ActorKind::Fft, 0), None);
    }

    #[test]
    fn wrap_int_boundaries() {
        assert_eq!(wrap_int(DataType::I8, 127), 127);
        assert_eq!(wrap_int(DataType::I8, 128), -128);
        assert_eq!(wrap_int(DataType::I8, -129), 127);
        assert_eq!(wrap_int(DataType::U8, 255), 255);
        assert_eq!(wrap_int(DataType::U8, 256), 0);
        assert_eq!(wrap_int(DataType::U8, -1), 255);
        assert_eq!(wrap_int(DataType::I64, i64::MIN), i64::MIN);
        assert_eq!(wrap_int(DataType::U16, 65536 + 5), 5);
    }

    #[test]
    fn int_add_wraps() {
        assert_eq!(eval_binary_i(ElemOp::Add, DataType::I8, 120, 10), -126);
        assert_eq!(eval_binary_i(ElemOp::Add, DataType::I32, 1, 2), 3);
    }

    #[test]
    fn int_div_by_zero_is_zero() {
        assert_eq!(eval_binary_i(ElemOp::Div, DataType::I32, 5, 0), 0);
    }

    #[test]
    fn shr_arithmetic_vs_logical() {
        // -4 >> 1 arithmetic = -2 for signed.
        assert_eq!(eval_unary_i(ElemOp::Shr(1), DataType::I32, -4), -2);
        // For u8, 0xFC >> 1 = 0x7E.
        assert_eq!(eval_unary_i(ElemOp::Shr(1), DataType::U8, 0xFC), 0x7E);
    }

    #[test]
    fn vhadd_semantics_reference() {
        // The ARM vhadd instruction of the paper: (a + b) >> 1 on i32.
        let a = 7;
        let b = 4;
        let sum = eval_binary_i(ElemOp::Add, DataType::I32, a, b);
        assert_eq!(eval_unary_i(ElemOp::Shr(1), DataType::I32, sum), 5);
    }

    #[test]
    fn float_ops() {
        assert_eq!(eval_binary_f(ElemOp::Abd, 3.0, 5.0), 2.0);
        assert_eq!(eval_unary_f(ElemOp::Recp, 4.0), 0.25);
        assert_eq!(eval_binary_f(ElemOp::Min, 1.0, 2.0), 1.0);
        assert!(eval_unary_f(ElemOp::Sqrt, -1.0).is_nan());
    }

    #[test]
    #[should_panic]
    fn float_eval_rejects_int_only_op() {
        eval_binary_f(ElemOp::BitAnd, 1.0, 2.0);
    }
}
