//! Disk round trips for instruction-set files and cross-checks between the
//! bundled sets and the text format.

use hcg_isa::parse::{instr_set_from_file, instr_set_from_text, instr_set_to_file};
use hcg_isa::{sets, Arch};

#[test]
fn builtin_sets_roundtrip_through_disk() {
    let dir = std::env::temp_dir().join(format!("hcg_isa_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for arch in Arch::ALL {
        let set = sets::builtin(arch);
        let path = dir.join(format!("{arch}.isa"));
        instr_set_to_file(&set, &path).expect("writes");
        let back = instr_set_from_file(&path).expect("reads");
        assert_eq!(set, back, "{arch}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_a_parse_error() {
    let e = instr_set_from_file("/nonexistent/path/to.isa").unwrap_err();
    assert_eq!(e.line, 0);
    assert!(e.message.contains("cannot read"));
}

#[test]
fn bundled_source_text_matches_builtin() {
    // The include_str! constants and the builtin() loader must agree.
    assert_eq!(
        instr_set_from_text(sets::NEON128_TEXT).expect("parses"),
        sets::builtin(Arch::Neon128)
    );
    assert_eq!(
        instr_set_from_text(sets::SSE128_TEXT).expect("parses"),
        sets::builtin(Arch::Sse128)
    );
    assert_eq!(
        instr_set_from_text(sets::AVX256_TEXT).expect("parses"),
        sets::builtin(Arch::Avx256)
    );
}

#[test]
fn comments_and_blank_lines_ignored() {
    let set = instr_set_from_text(
        "# leading comment\n\nset t arch neon128\n# mid comment\n\nGraph: Add, i32, 4, I1, I2, O1 ; Code: O1 = f(I1, I2);\n",
    )
    .expect("parses");
    assert_eq!(set.len(), 1);
}
