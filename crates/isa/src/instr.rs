//! SIMD instruction descriptors and instruction sets.
//!
//! Each instruction carries its computing graph (a [`Pattern`]) and a code
//! template, exactly as the paper's external instruction-set files do
//! (§3.3): *"the SIMD instruction synthesizer just needs to replace the I/O
//! variable for code generation on different architectures."*

use crate::arch::Arch;
use crate::pattern::Pattern;
use hcg_model::DataType;
use std::fmt;

/// One SIMD instruction available for selection by Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdInstr {
    /// Intrinsic name, e.g. `vmlaq_s32`.
    pub name: String,
    /// Element type the instruction operates on.
    pub dtype: DataType,
    /// Number of lanes processed per issue.
    pub lanes: usize,
    /// The computing graph this instruction implements.
    pub pattern: Pattern,
    /// Code template with `I1…In` input and `O1` output placeholders and an
    /// optional `#A` placeholder for a matched shift amount.
    pub code: String,
    /// Relative issue cost in cycles (used by the cost model and by the
    /// largest-subgraph-first ordering of Algorithm 2).
    pub cost: u32,
}

impl SimdInstr {
    /// Render the code template, substituting input/output variable names
    /// and the shift amount.
    ///
    /// # Examples
    ///
    /// ```
    /// use hcg_isa::{sets, Arch};
    /// let set = sets::builtin(Arch::Neon128);
    /// let vadd = set.find("vaddq_s32").unwrap();
    /// assert_eq!(
    ///     vadd.render(&["a_batch".into(), "b_batch".into()], "c_batch", 0),
    ///     "c_batch = vaddq_s32(a_batch, b_batch);"
    /// );
    /// ```
    pub fn render(&self, inputs: &[String], output: &str, shift_amount: u32) -> String {
        let mut out = String::with_capacity(self.code.len() + 16);
        let bytes = self.code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'I' | b'O'
                    if i + 1 < bytes.len()
                        && bytes[i + 1].is_ascii_digit()
                        && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric()) =>
                {
                    let kind = bytes[i];
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    let idx: usize = self.code[i + 1..j].parse().expect("digits");
                    if kind == b'O' {
                        out.push_str(output);
                    } else {
                        out.push_str(
                            inputs
                                .get(idx - 1)
                                .map(String::as_str)
                                .unwrap_or("/*missing*/"),
                        );
                    }
                    i = j;
                }
                b'#' if i + 1 < bytes.len() && bytes[i + 1] == b'A' => {
                    out.push_str(&shift_amount.to_string());
                    i += 2;
                }
                c => {
                    out.push(c as char);
                    i += 1;
                }
            }
        }
        out
    }
}

impl fmt::Display for SimdInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}x{}] = {}",
            self.name, self.dtype, self.lanes, self.pattern
        )
    }
}

/// A named set of SIMD instructions for one architecture — the `InsSet`
/// input of paper Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrSet {
    /// Set name (usually the architecture name).
    pub name: String,
    /// Target architecture.
    pub arch: Arch,
    /// The instructions, in file order.
    pub instrs: Vec<SimdInstr>,
}

impl InstrSet {
    /// An empty set for an architecture.
    pub fn new(name: impl Into<String>, arch: Arch) -> Self {
        InstrSet {
            name: name.into(),
            arch,
            instrs: Vec::new(),
        }
    }

    /// Find an instruction by intrinsic name.
    pub fn find(&self, name: &str) -> Option<&SimdInstr> {
        self.instrs.iter().find(|i| i.name == name)
    }

    /// Instructions applicable to the given element type and lane count.
    pub fn candidates<'a>(
        &'a self,
        dtype: DataType,
        lanes: usize,
    ) -> impl Iterator<Item = &'a SimdInstr> + 'a {
        self.instrs
            .iter()
            .filter(move |i| i.dtype == dtype && i.lanes == lanes)
    }

    /// The deepest computing graph in the set (Algorithm 2 bounds subgraph
    /// extension by this).
    ///
    /// This is the reference linear scan; the pipeline serves the same
    /// value from [`crate::InstrIndex::max_depth`]'s per-(dtype, lanes)
    /// cache instead of re-scanning per region.
    pub fn max_depth(&self, dtype: DataType, lanes: usize) -> usize {
        self.candidates(dtype, lanes)
            .map(|i| i.pattern.depth())
            .max()
            .unwrap_or(0)
    }

    /// The largest node count among computing graphs in the set (reference
    /// linear scan; cached by [`crate::InstrIndex::max_nodes`]).
    pub fn max_nodes(&self, dtype: DataType, lanes: usize) -> usize {
        self.candidates(dtype, lanes)
            .map(|i| i.pattern.node_count())
            .max()
            .unwrap_or(0)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the set has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::op::ElemOp;

    fn vadd() -> SimdInstr {
        SimdInstr {
            name: "vaddq_s32".into(),
            dtype: DataType::I32,
            lanes: 4,
            pattern: Pattern::single(ElemOp::Add),
            code: "O1 = vaddq_s32(I1, I2);".into(),
            cost: 1,
        }
    }

    #[test]
    fn render_substitutes_io() {
        let i = vadd();
        assert_eq!(
            i.render(&["x".into(), "y".into()], "z", 0),
            "z = vaddq_s32(x, y);"
        );
    }

    #[test]
    fn render_shift_amount() {
        let shl = SimdInstr {
            name: "vshlq_n_s32".into(),
            dtype: DataType::I32,
            lanes: 4,
            pattern: Pattern::single(ElemOp::Shl(0)),
            code: "O1 = vshlq_n_s32(I1, #A);".into(),
            cost: 1,
        };
        assert_eq!(shl.render(&["x".into()], "y", 3), "y = vshlq_n_s32(x, 3);");
    }

    #[test]
    fn render_does_not_touch_identifiers() {
        // The `I1` inside `vI1x` must not be replaced (preceded by an
        // alphanumeric character).
        let odd = SimdInstr {
            name: "weird".into(),
            dtype: DataType::I32,
            lanes: 4,
            pattern: Pattern::single(ElemOp::Abs),
            code: "O1 = vI1x(I1);".into(),
            cost: 1,
        };
        assert_eq!(odd.render(&["a".into()], "b", 0), "b = vI1x(a);");
    }

    #[test]
    fn set_queries() {
        let mut set = InstrSet::new("t", Arch::Neon128);
        set.instrs.push(vadd());
        set.instrs.push(SimdInstr {
            name: "vmlaq_s32".into(),
            dtype: DataType::I32,
            lanes: 4,
            pattern: "Add(I1, Mul(I2, I3))".parse().unwrap(),
            code: "O1 = vmlaq_s32(I1, I2, I3);".into(),
            cost: 2,
        });
        assert_eq!(set.len(), 2);
        assert!(set.find("vaddq_s32").is_some());
        assert!(set.find("nope").is_none());
        assert_eq!(set.candidates(DataType::I32, 4).count(), 2);
        assert_eq!(set.candidates(DataType::F32, 4).count(), 0);
        assert_eq!(set.max_depth(DataType::I32, 4), 2);
        assert_eq!(set.max_nodes(DataType::I32, 4), 2);
        assert_eq!(set.max_depth(DataType::F32, 4), 0);
    }
}
