//! Process-wide work counters for the expensive one-time ISA artifacts:
//! `.isa` text parses and [`crate::InstrIndex`] bucket builds.
//!
//! Both operations are cheap enough for a single compile but wasteful when
//! repeated per fleet job or per service request; the shared registries in
//! [`crate::sets`] exist to pay them once per process. These counters make
//! that property *testable*: a cache gate can snapshot them, drive N
//! compiles, and assert the deltas stayed at the expected one-per-key.

use std::sync::atomic::{AtomicU64, Ordering};

static PARSE_RUNS: AtomicU64 = AtomicU64::new(0);
static INDEX_BUILDS: AtomicU64 = AtomicU64::new(0);
static REGISTRY_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total `.isa` text parses ([`crate::parse::instr_set_from_text`]) this
/// process has performed.
pub fn parse_runs() -> u64 {
    PARSE_RUNS.load(Ordering::Relaxed)
}

/// Total [`crate::InstrIndex::build`] invocations this process has
/// performed.
pub fn index_builds() -> u64 {
    INDEX_BUILDS.load(Ordering::Relaxed)
}

/// Total entries constructed by the [`crate::sets::shared_indexed`]
/// registry — exactly one per distinct `(arch, cost-overlay)` key ever
/// requested, no matter how many compiles asked.
pub fn registry_builds() -> u64 {
    REGISTRY_BUILDS.load(Ordering::Relaxed)
}

pub(crate) fn record_parse() {
    PARSE_RUNS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_index_build() {
    INDEX_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_registry_build() {
    REGISTRY_BUILDS.fetch_add(1, Ordering::Relaxed);
}
