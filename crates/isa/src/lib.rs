//! # hcg-isa — SIMD instruction-set descriptions
//!
//! The `InsSet` input of the HCG paper's Algorithm 2: each instruction carries
//! a *computing graph* ([`Pattern`]) describing what it computes and a code
//! template with `I/O` placeholders, loaded from external text files in the
//! paper's §3.3 format. Built-in sets cover ARM NEON, Intel SSE4 and Intel
//! AVX2 ([`sets::builtin`]).
//!
//! # Examples
//!
//! ```
//! use hcg_isa::{sets, Arch};
//!
//! let neon = sets::builtin(Arch::Neon128);
//! let mla = neon.find("vmlaq_s32").expect("NEON has multiply-accumulate");
//! assert_eq!(mla.pattern.to_string(), "Add(I1, Mul(I2, I3))");
//! assert_eq!(
//!     mla.render(&["acc".into(), "x".into(), "y".into()], "out", 0),
//!     "out = vmlaq_s32(acc, x, y);"
//! );
//! ```

#![warn(missing_docs)]

mod arch;
mod calibrate;
mod index;
mod instr;
mod pattern;

pub mod parse;
pub mod sets;
pub mod stats;

pub use arch::{Arch, ParseArchError};
pub use calibrate::{CalibrateError, CostCalibrator, CostOverlay};
pub use index::{GraphBounds, InstrIndex};
pub use instr::{InstrSet, SimdInstr};
pub use parse::ParseIsaError;
pub use pattern::{ParsePatternError, Pattern, PatternArg, SHIFT_ANY};
