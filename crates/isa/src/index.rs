//! Pre-bucketed instruction lookup for Algorithm 2's hot path.
//!
//! The iterative mapping loop calls `find_instruction` once per candidate
//! subgraph, and the linear [`InstrSet::candidates`] filter re-scans the
//! whole instruction set every time — plus the set's `max_depth`/`max_nodes`
//! bounds were re-derived by two more full scans per region. An
//! [`InstrIndex`] is built once per (set, pipeline) and answers both
//! queries from pre-computed buckets:
//!
//! * instructions bucketed by **(root op, element type, lanes)** — a
//!   pattern can only ever match a tree whose root operation agrees with
//!   the pattern root (shift amounts normalised so `Shr[1]` and wildcard
//!   `Shr` land in one bucket that serves any `Shr(k)` root);
//! * each bucket pre-sorted by **(cost, file order)**, so the *first* match
//!   in bucket order is exactly the instruction the linear scan's
//!   min-by-cost/first-by-file-order selection returns — byte-identical
//!   selection, without visiting instructions that cannot match;
//! * cached **`max_depth`/`max_nodes`** per (dtype, lanes).
//!
//! The index stores positions into the originating set's `instrs` vector
//! rather than borrowing it, so it can live in pipeline state next to the
//! owned [`InstrSet`]; queries take the set again and are debug-asserted
//! against it.

use crate::instr::{InstrSet, SimdInstr};
use crate::pattern::SHIFT_ANY;
use hcg_model::op::ElemOp;
use hcg_model::DataType;
use std::collections::HashMap;

/// Cached subgraph-extension bounds for one (dtype, lanes) slice of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphBounds {
    /// Deepest computing graph among applicable instructions.
    pub max_depth: usize,
    /// Largest node count among applicable instructions.
    pub max_nodes: usize,
}

/// Normalise an operation to its bucket key: shift amounts are erased so a
/// dataflow `Shr(k)` root finds both exact-amount (`Shr[1]`) and wildcard
/// (`Shr`) patterns in one bucket.
fn op_key(op: ElemOp) -> ElemOp {
    match op {
        ElemOp::Shr(_) => ElemOp::Shr(SHIFT_ANY),
        ElemOp::Shl(_) => ElemOp::Shl(SHIFT_ANY),
        other => other,
    }
}

/// Pre-bucketed lookup structure over one [`InstrSet`].
///
/// # Examples
///
/// ```
/// use hcg_isa::{sets, Arch, InstrIndex};
/// use hcg_model::{op::ElemOp, DataType};
///
/// let neon = sets::builtin(Arch::Neon128);
/// let index = InstrIndex::build(&neon);
/// // Bounds served from cache, identical to the linear scans.
/// assert_eq!(index.bounds(DataType::I32, 4).max_depth, neon.max_depth(DataType::I32, 4));
/// // Only Add-rooted patterns are visited for an Add-rooted tree.
/// let adds: Vec<_> = index
///     .candidates(&neon, ElemOp::Add, DataType::I32, 4)
///     .map(|i| i.name.as_str())
///     .collect();
/// assert!(adds.contains(&"vaddq_s32"));
/// assert!(!adds.contains(&"vsubq_s32"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstrIndex {
    /// (normalised root op, dtype, lanes) → positions into `set.instrs`,
    /// sorted ascending by (cost, position).
    buckets: HashMap<(ElemOp, DataType, usize), Vec<u32>>,
    /// (dtype, lanes) → cached extension bounds.
    bounds: HashMap<(DataType, usize), GraphBounds>,
    /// Instruction count of the set the index was built from, used to
    /// debug-assert that queries pair the index with the same set.
    set_len: usize,
}

impl InstrIndex {
    /// Build the index over `set`. O(n log n) once, amortised across every
    /// `find_instruction` call of a pipeline run.
    pub fn build(set: &InstrSet) -> Self {
        crate::stats::record_index_build();
        let mut buckets: HashMap<(ElemOp, DataType, usize), Vec<u32>> = HashMap::new();
        let mut bounds: HashMap<(DataType, usize), GraphBounds> = HashMap::new();
        for (pos, instr) in set.instrs.iter().enumerate() {
            buckets
                .entry((op_key(instr.pattern.op), instr.dtype, instr.lanes))
                .or_default()
                .push(pos as u32);
            let b = bounds.entry((instr.dtype, instr.lanes)).or_default();
            b.max_depth = b.max_depth.max(instr.pattern.depth());
            b.max_nodes = b.max_nodes.max(instr.pattern.node_count());
        }
        for bucket in buckets.values_mut() {
            // Stable selection order: cheapest first, file order on ties —
            // the first *match* in this order is the linear scan's winner.
            bucket.sort_by_key(|&pos| (set.instrs[pos as usize].cost, pos));
        }
        InstrIndex {
            buckets,
            bounds,
            set_len: set.instrs.len(),
        }
    }

    /// Positions (into the originating set's `instrs`) of instructions
    /// whose pattern root can match `root` at (dtype, lanes), cheapest
    /// first. Empty when no instruction qualifies.
    pub fn candidate_positions(&self, root: ElemOp, dtype: DataType, lanes: usize) -> &[u32] {
        self.buckets
            .get(&(op_key(root), dtype, lanes))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The bucket's instructions resolved against `set` (which must be the
    /// set this index was built from).
    pub fn candidates<'s>(
        &'s self,
        set: &'s InstrSet,
        root: ElemOp,
        dtype: DataType,
        lanes: usize,
    ) -> impl Iterator<Item = &'s SimdInstr> + 's {
        debug_assert_eq!(
            set.instrs.len(),
            self.set_len,
            "InstrIndex paired with a different InstrSet"
        );
        self.candidate_positions(root, dtype, lanes)
            .iter()
            .map(move |&pos| &set.instrs[pos as usize])
    }

    /// Cached extension bounds for (dtype, lanes) — the values
    /// [`InstrSet::max_depth`]/[`InstrSet::max_nodes`] scan for.
    pub fn bounds(&self, dtype: DataType, lanes: usize) -> GraphBounds {
        self.bounds
            .get(&(dtype, lanes))
            .copied()
            .unwrap_or_default()
    }

    /// Cached [`InstrSet::max_depth`].
    pub fn max_depth(&self, dtype: DataType, lanes: usize) -> usize {
        self.bounds(dtype, lanes).max_depth
    }

    /// Cached [`InstrSet::max_nodes`].
    pub fn max_nodes(&self, dtype: DataType, lanes: usize) -> usize {
        self.bounds(dtype, lanes).max_nodes
    }

    /// Instruction count of the set this index was built from.
    pub fn set_len(&self) -> usize {
        self.set_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;
    use crate::sets;

    #[test]
    fn bounds_agree_with_linear_scans_everywhere() {
        for arch in Arch::ALL {
            let set = sets::builtin(arch);
            let index = InstrIndex::build(&set);
            for dtype in [
                DataType::I8,
                DataType::I16,
                DataType::I32,
                DataType::U8,
                DataType::U16,
                DataType::U32,
                DataType::F32,
                DataType::F64,
            ] {
                for lanes in [1, 2, 4, 8, 16] {
                    assert_eq!(
                        index.max_depth(dtype, lanes),
                        set.max_depth(dtype, lanes),
                        "{arch} {dtype} x{lanes}"
                    );
                    assert_eq!(
                        index.max_nodes(dtype, lanes),
                        set.max_nodes(dtype, lanes),
                        "{arch} {dtype} x{lanes}"
                    );
                }
            }
        }
    }

    #[test]
    fn buckets_partition_the_candidate_filter() {
        // Union of all root buckets at (dtype, lanes) == the linear
        // candidates() filter, and every bucketed instruction's root key
        // matches its bucket.
        for arch in Arch::ALL {
            let set = sets::builtin(arch);
            let index = InstrIndex::build(&set);
            for instr in &set.instrs {
                let bucket = index.candidate_positions(instr.pattern.op, instr.dtype, instr.lanes);
                assert!(
                    bucket
                        .iter()
                        .any(|&p| std::ptr::eq(&set.instrs[p as usize], instr)),
                    "{arch}: {} missing from its bucket",
                    instr.name
                );
            }
            let linear = set.candidates(DataType::I32, 4).count();
            let bucketed: usize = index
                .buckets
                .iter()
                .filter(|((_, d, l), _)| *d == DataType::I32 && *l == 4)
                .map(|(_, b)| b.len())
                .sum();
            assert_eq!(linear, bucketed, "{arch}");
        }
    }

    #[test]
    fn buckets_sorted_cheapest_then_file_order() {
        for arch in Arch::ALL {
            let set = sets::builtin(arch);
            let index = InstrIndex::build(&set);
            for bucket in index.buckets.values() {
                for w in bucket.windows(2) {
                    let a = (set.instrs[w[0] as usize].cost, w[0]);
                    let b = (set.instrs[w[1] as usize].cost, w[1]);
                    assert!(a < b, "{arch}: bucket not sorted");
                }
            }
        }
    }

    #[test]
    fn shift_roots_share_a_bucket() {
        let set = sets::builtin(Arch::Neon128);
        let index = InstrIndex::build(&set);
        // vhaddq_s32's pattern root is Shr[1]; a dataflow Shr(1) root and a
        // Shr(3) root both resolve to the same (normalised) bucket.
        let b1 = index.candidate_positions(ElemOp::Shr(1), DataType::I32, 4);
        let b3 = index.candidate_positions(ElemOp::Shr(3), DataType::I32, 4);
        assert_eq!(b1, b3);
        assert!(b1
            .iter()
            .any(|&p| set.instrs[p as usize].name == "vhaddq_s32"));
    }

    #[test]
    fn missing_bucket_is_empty() {
        let set = sets::builtin(Arch::Neon128);
        let index = InstrIndex::build(&set);
        assert!(index
            .candidate_positions(ElemOp::Div, DataType::I32, 4)
            .is_empty());
        assert_eq!(index.bounds(DataType::F64, 64), GraphBounds::default());
    }

    #[test]
    fn bounds_prune_per_dtype_slice() {
        // Extension bounds are per (dtype, lanes): a slice whose largest
        // pattern is a single node caps candidate enumeration at one node
        // even when another slice of the same set has fused patterns.
        let set = crate::parse::instr_set_from_text(concat!(
            "set tiny arch neon128\n",
            "Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = a(I1, I2); ; Cost: 1\n",
            "Graph: Add(I1, Mul(I2, I3)), i32, 4, O1 ; Code: O1 = b(I1, I2, I3); ; Cost: 2\n",
            "Graph: Add, f32, 4, I1, I2, O1 ; Code: O1 = c(I1, I2); ; Cost: 1\n",
        ))
        .unwrap();
        let index = InstrIndex::build(&set);
        assert_eq!(
            index.bounds(DataType::I32, 4),
            GraphBounds {
                max_depth: 2,
                max_nodes: 2
            }
        );
        assert_eq!(
            index.bounds(DataType::F32, 4),
            GraphBounds {
                max_depth: 1,
                max_nodes: 1
            }
        );
        // An absent slice prunes everything (zero bounds, clamped to one
        // node by the mapping loop).
        assert_eq!(index.bounds(DataType::I16, 8), GraphBounds::default());
    }
}
