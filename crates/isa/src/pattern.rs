//! Instruction computing graphs (paper §3.2.2 / Figure 4(c)): the small
//! expression trees that describe what a compound SIMD instruction computes,
//! which the synthesiser matches against subgraphs of the model's dataflow
//! graph.

use hcg_model::op::ElemOp;
use std::fmt;

/// Shift-amount wildcard: a pattern node `Shr` / `Shl` written *without* a
/// bracketed amount carries this value and matches a dataflow node with any
/// constant amount (the instruction's `#A` template placeholder receives the
/// matched amount). `Shr[1]` matches only shift-by-one (the `vhadd` family).
pub const SHIFT_ANY: u32 = u32::MAX;

/// One operand of a pattern node: either an external input slot (`I1`,
/// `I2`, …) or a nested operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternArg {
    /// External input slot, 0-based (`I1` is slot 0).
    Input(usize),
    /// Result of a nested operation.
    Node(Box<Pattern>),
}

/// An instruction computing graph: a rooted expression tree over
/// [`ElemOp`]s.
///
/// The tree shape mirrors the paper's notation: `vmlaq_s32` computes
/// `Add(I1, Mul(I2, I3))`, `vhaddq_s32` computes `Shr[1](Add(I1, I2))`.
///
/// # Examples
///
/// ```
/// use hcg_isa::Pattern;
/// let mla: Pattern = "Add(I1, Mul(I2, I3))".parse()?;
/// assert_eq!(mla.node_count(), 2);
/// assert_eq!(mla.depth(), 2);
/// assert_eq!(mla.input_count(), 3);
/// # Ok::<(), hcg_isa::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    /// Operation at the root of this (sub)tree.
    pub op: ElemOp,
    /// Operands, one per arity slot.
    pub args: Vec<PatternArg>,
}

impl Pattern {
    /// A single-operation pattern with inputs `I1..=In` in order.
    pub fn single(op: ElemOp) -> Pattern {
        Pattern {
            op,
            args: (0..op.arity()).map(PatternArg::Input).collect(),
        }
    }

    /// Number of operation nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .args
            .iter()
            .map(|a| match a {
                PatternArg::Input(_) => 0,
                PatternArg::Node(n) => n.node_count(),
            })
            .sum::<usize>()
    }

    /// Height of the tree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .args
            .iter()
            .map(|a| match a {
                PatternArg::Input(_) => 0,
                PatternArg::Node(n) => n.depth(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of distinct external input slots referenced.
    pub fn input_count(&self) -> usize {
        let mut slots = Vec::new();
        self.collect_inputs(&mut slots);
        slots.sort_unstable();
        slots.dedup();
        slots.len()
    }

    fn collect_inputs(&self, out: &mut Vec<usize>) {
        for a in &self.args {
            match a {
                PatternArg::Input(i) => out.push(*i),
                PatternArg::Node(n) => n.collect_inputs(out),
            }
        }
    }

    /// All operations in the tree, root first (used to pre-filter candidate
    /// instructions by op multiset).
    pub fn ops(&self) -> Vec<ElemOp> {
        let mut out = vec![self.op];
        for a in &self.args {
            if let PatternArg::Node(n) = a {
                out.extend(n.ops());
            }
        }
        out
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            ElemOp::Shr(SHIFT_ANY) | ElemOp::Shl(SHIFT_ANY) => {
                write!(f, "{}(", self.op.mnemonic())?
            }
            op => write!(f, "{op}(")?,
        }
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match a {
                PatternArg::Input(slot) => write!(f, "I{}", slot + 1)?,
                PatternArg::Node(n) => write!(f, "{n}")?,
            }
        }
        f.write_str(")")
    }
}

/// Error parsing a pattern expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.message)
    }
}

impl std::error::Error for ParsePatternError {}

impl std::str::FromStr for Pattern {
    type Err = ParsePatternError;

    /// Parse the expression syntax used by instruction-set files:
    /// `Op(arg, …)` where `Op` is an [`ElemOp`] mnemonic (shifts written
    /// `Shr[1]`), and each arg is `In` or a nested expression. A bare `Op`
    /// with no parentheses means [`Pattern::single`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = PatParser {
            s: s.as_bytes(),
            pos: 0,
        };
        let pat = p.parse_expr()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(ParsePatternError {
                message: format!("trailing input at byte {}", p.pos),
            });
        }
        Ok(pat)
    }
}

struct PatParser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> PatParser<'a> {
    fn err(&self, message: impl Into<String>) -> ParsePatternError {
        ParsePatternError {
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .s
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self
            .s
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.s[start..self.pos]).into_owned()
    }

    fn parse_op(&mut self) -> Result<ElemOp, ParsePatternError> {
        let name = self.ident();
        let amount = if self.s.get(self.pos) == Some(&b'[') {
            self.pos += 1;
            let num = self.ident();
            if self.s.get(self.pos) != Some(&b']') {
                return Err(self.err("expected ']'"));
            }
            self.pos += 1;
            num.parse::<u32>()
                .map_err(|_| self.err("bad shift amount"))?
        } else {
            SHIFT_ANY
        };
        let op = match name.as_str() {
            "Add" => ElemOp::Add,
            "Sub" => ElemOp::Sub,
            "Mul" => ElemOp::Mul,
            "Div" => ElemOp::Div,
            "Shr" => ElemOp::Shr(amount),
            "Shl" => ElemOp::Shl(amount),
            "BitNot" => ElemOp::BitNot,
            "BitAnd" => ElemOp::BitAnd,
            "BitOr" => ElemOp::BitOr,
            "BitXor" => ElemOp::BitXor,
            "Min" => ElemOp::Min,
            "Max" => ElemOp::Max,
            "Abs" => ElemOp::Abs,
            "Abd" => ElemOp::Abd,
            "Recp" => ElemOp::Recp,
            "Sqrt" => ElemOp::Sqrt,
            "Neg" => ElemOp::Neg,
            other => return Err(self.err(format!("unknown op {other:?}"))),
        };
        Ok(op)
    }

    fn parse_expr(&mut self) -> Result<Pattern, ParsePatternError> {
        self.skip_ws();
        let op = self.parse_op()?;
        self.skip_ws();
        if self.s.get(self.pos) != Some(&b'(') {
            return Ok(Pattern::single(op));
        }
        self.pos += 1;
        let mut args = Vec::new();
        loop {
            self.skip_ws();
            if self.s.get(self.pos) == Some(&b'I')
                && self.s.get(self.pos + 1).is_some_and(|c| c.is_ascii_digit())
            {
                self.pos += 1;
                let num = self.ident();
                let slot: usize = num.parse().map_err(|_| self.err("bad input index"))?;
                if slot == 0 {
                    return Err(self.err("input slots start at I1"));
                }
                args.push(PatternArg::Input(slot - 1));
            } else {
                args.push(PatternArg::Node(Box::new(self.parse_expr()?)));
            }
            self.skip_ws();
            match self.s.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ')'")),
            }
        }
        if args.len() != op.arity() {
            return Err(self.err(format!(
                "{} takes {} operand(s), got {}",
                op,
                op.arity(),
                args.len()
            )));
        }
        Ok(Pattern { op, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_op_patterns() {
        let p: Pattern = "Add".parse().unwrap();
        assert_eq!(p, Pattern::single(ElemOp::Add));
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.input_count(), 2);
    }

    #[test]
    fn explicit_inputs() {
        let p: Pattern = "Sub(I1, I2)".parse().unwrap();
        assert_eq!(p, Pattern::single(ElemOp::Sub));
    }

    #[test]
    fn mla_pattern() {
        let p: Pattern = "Add(I1, Mul(I2, I3))".parse().unwrap();
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.input_count(), 3);
        assert_eq!(p.ops(), vec![ElemOp::Add, ElemOp::Mul]);
    }

    #[test]
    fn vhadd_pattern_with_shift() {
        let p: Pattern = "Shr[1](Add(I1, I2))".parse().unwrap();
        assert_eq!(p.op, ElemOp::Shr(1));
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.input_count(), 2);
    }

    #[test]
    fn repeated_input_slot_counts_once() {
        // Squaring accumulate: Add(I1, Mul(I2, I2)).
        let p: Pattern = "Add(I1, Mul(I2, I2))".parse().unwrap();
        assert_eq!(p.input_count(), 2);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "Add(I1, I2)",
            "Add(I1, Mul(I2, I3))",
            "Shr[1](Add(I1, I2))",
            "Abd(I1, I2)",
            "Sqrt(I1)",
        ] {
            let p: Pattern = s.parse().unwrap();
            let again: Pattern = p.to_string().parse().unwrap();
            assert_eq!(p, again, "{s}");
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!("Add(I1)".parse::<Pattern>().is_err());
        assert!("Abs(I1, I2)".parse::<Pattern>().is_err());
    }

    #[test]
    fn malformed_rejected() {
        assert!("".parse::<Pattern>().is_err());
        assert!("Frob(I1)".parse::<Pattern>().is_err());
        assert!("Add(I0, I1)".parse::<Pattern>().is_err());
        assert!("Add(I1, I2) junk".parse::<Pattern>().is_err());
        assert!("Shr[x](I1)".parse::<Pattern>().is_err());
    }

    #[test]
    fn deep_nesting() {
        let p: Pattern = "Add(Mul(I1, I2), Mul(I3, I4))".parse().unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.input_count(), 4);
    }
}
