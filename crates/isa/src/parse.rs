//! Reader/writer for external instruction-set files.
//!
//! Paper §3.3 defines the line format
//! `Graph: Add, i32, 4, I1, I2, O1; Code: O1 = vaddq_s32(I1, I2);` — one
//! line per instruction. This module accepts that exact flat form plus a
//! nested-expression extension for compound instructions, and adds an
//! optional `Cost:` field:
//!
//! ```text
//! # <set-name> for <arch>
//! set neon128 arch neon128
//! Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = vaddq_s32(I1, I2); ; Cost: 1
//! Graph: Add(I1, Mul(I2, I3)), i32, 4, O1 ; Code: O1 = vmlaq_s32(I1, I2, I3); ; Cost: 2
//! ```

use crate::arch::Arch;
use crate::instr::{InstrSet, SimdInstr};
use crate::pattern::Pattern;
use hcg_model::DataType;
use std::fmt;

/// Error reading an instruction-set file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIsaError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseIsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instruction set file, line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseIsaError {}

fn err(line: usize, message: impl Into<String>) -> ParseIsaError {
    ParseIsaError {
        line,
        message: message.into(),
    }
}

/// Parse an instruction-set file.
///
/// # Errors
///
/// Returns [`ParseIsaError`] with a line number on any malformed directive,
/// graph, or code template.
pub fn instr_set_from_text(text: &str) -> Result<InstrSet, ParseIsaError> {
    crate::stats::record_parse();
    let mut set: Option<InstrSet> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("set ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(lineno, "set directive needs a name"))?;
            let arch = match (parts.next(), parts.next()) {
                (Some("arch"), Some(a)) => {
                    a.parse::<Arch>().map_err(|e| err(lineno, e.to_string()))?
                }
                _ => return Err(err(lineno, "expected `set <name> arch <arch>`")),
            };
            set = Some(InstrSet::new(name, arch));
            continue;
        }
        let set_ref = set
            .as_mut()
            .ok_or_else(|| err(lineno, "instruction line before `set` directive"))?;
        set_ref.instrs.push(parse_instr_line(lineno, line)?);
    }
    set.ok_or_else(|| err(0, "file contains no `set` directive"))
}

/// Parse one `Graph: …; Code: …; [Cost: …]` line.
pub fn parse_instr_line(lineno: usize, line: &str) -> Result<SimdInstr, ParseIsaError> {
    let mut graph = None;
    let mut code = None;
    let mut cost = 1u32;
    // Fields are separated by " ; " — the code template itself contains
    // semicolons, so split on the field keywords instead.
    for field in split_fields(line) {
        let field = field.trim();
        if let Some(g) = field.strip_prefix("Graph:") {
            graph = Some(g.trim().to_owned());
        } else if let Some(c) = field.strip_prefix("Code:") {
            code = Some(c.trim().to_owned());
        } else if let Some(c) = field.strip_prefix("Cost:") {
            cost = c
                .trim()
                .parse()
                .map_err(|_| err(lineno, "bad Cost value"))?;
        } else if !field.is_empty() {
            return Err(err(lineno, format!("unknown field {field:?}")));
        }
    }
    let graph = graph.ok_or_else(|| err(lineno, "missing Graph field"))?;
    let code = code.ok_or_else(|| err(lineno, "missing Code field"))?;
    // Normalise the template to end in exactly one ';' regardless of how
    // many the field separator trimming consumed.
    let code = format!(
        "{};",
        code.trim_end_matches(|c: char| c == ';' || c.is_whitespace())
    );

    let (pattern, dtype, lanes) = parse_graph_field(lineno, &graph)?;
    let name = code
        .split('(')
        .next()
        .and_then(|head| {
            head.rsplit(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                .next()
        })
        .filter(|s| !s.is_empty())
        .ok_or_else(|| err(lineno, "cannot derive instruction name from Code"))?
        .to_owned();
    Ok(SimdInstr {
        name,
        dtype,
        lanes,
        pattern,
        code,
        cost,
    })
}

/// Split a line into `Graph:`/`Code:`/`Cost:` fields at the keyword
/// boundaries (the code template may itself contain `;`).
fn split_fields(line: &str) -> Vec<&str> {
    let mut cuts: Vec<usize> = ["Graph:", "Code:", "Cost:"]
        .iter()
        .flat_map(|kw| line.match_indices(kw).map(|(i, _)| i))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut out = Vec::new();
    for (i, &start) in cuts.iter().enumerate() {
        let end = cuts.get(i + 1).copied().unwrap_or(line.len());
        out.push(
            line[start..end]
                .trim_end_matches([' ', '\t', ';'])
                .trim_start(),
        );
    }
    out
}

/// Parse the `Graph:` payload. Two forms:
///
/// * flat (exactly the paper's): `Add, i32, 4, I1, I2, O1`
/// * nested: `Add(I1, Mul(I2, I3)), i32, 4, O1`
fn parse_graph_field(
    lineno: usize,
    text: &str,
) -> Result<(Pattern, DataType, usize), ParseIsaError> {
    // Split at top-level commas only (commas inside parentheses belong to
    // the expression).
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(text[start..].trim());
    if parts.len() < 3 {
        return Err(err(lineno, "Graph needs at least op, dtype, lanes"));
    }
    let dtype: DataType = parts[1].parse().map_err(|e| err(lineno, format!("{e}")))?;
    let lanes: usize = parts[2]
        .parse()
        .map_err(|_| err(lineno, "bad lane count"))?;

    let expr = parts[0];
    let pattern: Pattern = if expr.contains('(') {
        // Nested form: remaining parts must be just O1.
        expr.parse().map_err(|e| err(lineno, format!("{e}")))?
    } else {
        // Flat form: op name alone; I/O part is informative (paper style),
        // validated against arity below.
        let io: Vec<&str> = parts[3..].to_vec();
        let p: Pattern = expr.parse().map_err(|e| err(lineno, format!("{e}")))?;
        let declared_inputs = io.iter().filter(|s| s.starts_with('I')).count();
        if declared_inputs != 0 && declared_inputs != p.op.arity() {
            return Err(err(
                lineno,
                format!(
                    "{} declares {} inputs but {} takes {}",
                    expr,
                    declared_inputs,
                    p.op,
                    p.op.arity()
                ),
            ));
        }
        p
    };
    Ok((pattern, dtype, lanes))
}

/// Load an instruction-set file from disk.
///
/// # Errors
///
/// Returns [`ParseIsaError`] for unreadable files (reported at line 0) or
/// malformed content.
///
/// # Examples
///
/// ```no_run
/// use hcg_isa::parse::instr_set_from_file;
/// let set = instr_set_from_file("targets/mydsp.isa")?;
/// # Ok::<(), hcg_isa::ParseIsaError>(())
/// ```
pub fn instr_set_from_file(path: impl AsRef<std::path::Path>) -> Result<InstrSet, ParseIsaError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| err(0, format!("cannot read {}: {e}", path.as_ref().display())))?;
    instr_set_from_text(&text)
}

/// Write an instruction set to disk in the file format.
///
/// # Errors
///
/// Returns [`ParseIsaError`] (line 0) on I/O failure.
pub fn instr_set_to_file(
    set: &InstrSet,
    path: impl AsRef<std::path::Path>,
) -> Result<(), ParseIsaError> {
    std::fs::write(path.as_ref(), instr_set_to_text(set))
        .map_err(|e| err(0, format!("cannot write {}: {e}", path.as_ref().display())))
}

/// Serialise a set back to the file format (round-trips through
/// [`instr_set_from_text`]).
pub fn instr_set_to_text(set: &InstrSet) -> String {
    let mut out = format!(
        "# {} instruction set\nset {} arch {}\n",
        set.name, set.name, set.arch
    );
    for i in &set.instrs {
        out.push_str(&format!(
            "Graph: {}, {}, {}, O1 ; Code: {} ; Cost: {}\n",
            i.pattern, i.dtype, i.lanes, i.code, i.cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::op::ElemOp;

    #[test]
    fn paper_flat_form() {
        let i = parse_instr_line(
            1,
            "Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = vaddq_s32(I1, I2);",
        )
        .unwrap();
        assert_eq!(i.name, "vaddq_s32");
        assert_eq!(i.dtype, DataType::I32);
        assert_eq!(i.lanes, 4);
        assert_eq!(i.pattern, Pattern::single(ElemOp::Add));
        assert_eq!(i.cost, 1);
    }

    #[test]
    fn nested_form_with_cost() {
        let i = parse_instr_line(
            1,
            "Graph: Add(I1, Mul(I2, I3)), i32, 4, O1 ; Code: O1 = vmlaq_s32(I1, I2, I3); ; Cost: 2",
        )
        .unwrap();
        assert_eq!(i.name, "vmlaq_s32");
        assert_eq!(i.pattern.node_count(), 2);
        assert_eq!(i.cost, 2);
    }

    #[test]
    fn vhadd_line() {
        let i = parse_instr_line(
            1,
            "Graph: Shr[1](Add(I1, I2)), i32, 4, O1 ; Code: O1 = vhaddq_s32(I1, I2);",
        )
        .unwrap();
        assert_eq!(i.name, "vhaddq_s32");
        assert_eq!(i.pattern.op, ElemOp::Shr(1));
    }

    #[test]
    fn arity_mismatch_in_flat_form() {
        assert!(parse_instr_line(1, "Graph: Add, i32, 4, I1, O1 ; Code: O1 = f(I1);").is_err());
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(parse_instr_line(1, "Code: O1 = f(I1);").is_err());
        assert!(parse_instr_line(1, "Graph: Add, i32, 4, I1, I2, O1").is_err());
    }

    #[test]
    fn whole_file_parses() {
        let text = "\
# test set
set mini arch neon128

Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = vaddq_s32(I1, I2);
Graph: Sub, i32, 4, I1, I2, O1 ; Code: O1 = vsubq_s32(I1, I2);
Graph: Add(I1, Mul(I2, I3)), i32, 4, O1 ; Code: O1 = vmlaq_s32(I1, I2, I3); ; Cost: 2
";
        let set = instr_set_from_text(text).unwrap();
        assert_eq!(set.name, "mini");
        assert_eq!(set.arch, Arch::Neon128);
        assert_eq!(set.len(), 3);
        assert!(set.find("vmlaq_s32").is_some());
    }

    #[test]
    fn file_without_set_directive_rejected() {
        let e = instr_set_from_text("Graph: Add, i32, 4, I1, I2, O1 ; Code: O1 = f(I1, I2);")
            .unwrap_err();
        assert!(e.message.contains("set"));
    }

    #[test]
    fn bad_arch_rejected() {
        assert!(instr_set_from_text("set x arch sparc\n").is_err());
    }

    #[test]
    fn roundtrip_text() {
        let text = "\
set mini arch avx256
Graph: Add, f32, 8, I1, I2, O1 ; Code: O1 = _mm256_add_ps(I1, I2);
Graph: Add(I1, Mul(I2, I3)), f32, 8, O1 ; Code: O1 = _mm256_fmadd_ps(I2, I3, I1); ; Cost: 2
";
        let set = instr_set_from_text(text).unwrap();
        let back = instr_set_from_text(&instr_set_to_text(&set)).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn line_numbers_in_errors() {
        let text = "set m arch neon128\n\nGraph: Zap, i32, 4, I1, O1 ; Code: O1 = z(I1);\n";
        let e = instr_set_from_text(text).unwrap_err();
        assert_eq!(e.line, 3);
    }
}
