//! Target architecture descriptions: vector register width and the textual
//! spelling of vector types, loads and stores used when rendering generated
//! code (paper §3.3: only the instruction-set file changes per target).

use hcg_model::DataType;
use std::fmt;
use std::str::FromStr;

/// A SIMD target architecture.
///
/// The paper evaluates ARM (NEON, 128-bit) and Intel (SSE/AVX). `Sse128`
/// and `Avx256` model the Intel target with the two vector widths Simulink
/// Coder and HCG emit for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// ARM NEON, 128-bit vector registers (`int32x4_t`, `vaddq_s32`, …).
    Neon128,
    /// Intel SSE4, 128-bit vector registers (`__m128i`, `_mm_add_epi32`, …).
    Sse128,
    /// Intel AVX2, 256-bit vector registers (`__m256i`, `_mm256_add_epi32`,
    /// …) with FMA.
    Avx256,
}

impl Arch {
    /// All architectures with built-in instruction sets.
    pub const ALL: [Arch; 3] = [Arch::Neon128, Arch::Sse128, Arch::Avx256];

    /// Vector register width in bits (the `VectorWidth` input of paper
    /// Algorithm 2).
    pub const fn vector_bits(self) -> u32 {
        match self {
            Arch::Neon128 | Arch::Sse128 => 128,
            Arch::Avx256 => 256,
        }
    }

    /// Lanes of the given element type per vector register (the `BatchSize`
    /// of Algorithm 2 line 1).
    pub const fn lanes(self, dtype: DataType) -> usize {
        (self.vector_bits() / dtype.bit_width()) as usize
    }

    /// Canonical lowercase name (`neon128`, `sse128`, `avx256`).
    pub const fn name(self) -> &'static str {
        match self {
            Arch::Neon128 => "neon128",
            Arch::Sse128 => "sse128",
            Arch::Avx256 => "avx256",
        }
    }

    /// The C spelling of the vector register type holding `dtype` lanes.
    pub fn vector_type(self, dtype: DataType) -> String {
        match self {
            Arch::Neon128 => {
                let base = match dtype {
                    d if d.is_float() => "float",
                    d if d.is_signed() => "int",
                    _ => "uint",
                };
                format!("{}{}x{}_t", base, dtype.bit_width(), self.lanes(dtype))
            }
            Arch::Sse128 => match dtype {
                DataType::F32 => "__m128".to_owned(),
                DataType::F64 => "__m128d".to_owned(),
                _ => "__m128i".to_owned(),
            },
            Arch::Avx256 => match dtype {
                DataType::F32 => "__m256".to_owned(),
                DataType::F64 => "__m256d".to_owned(),
                _ => "__m256i".to_owned(),
            },
        }
    }

    /// NEON-style type suffix (`s32`, `u8`, `f32`) used by intrinsic names.
    pub fn neon_suffix(dtype: DataType) -> String {
        let c = if dtype.is_float() {
            'f'
        } else if dtype.is_signed() {
            's'
        } else {
            'u'
        };
        format!("{}{}", c, dtype.bit_width())
    }

    /// The C expression loading one vector register from `ptr`.
    pub fn load_expr(self, dtype: DataType, ptr: &str) -> String {
        match self {
            Arch::Neon128 => format!("vld1q_{}({})", Self::neon_suffix(dtype), ptr),
            Arch::Sse128 => match dtype {
                DataType::F32 => format!("_mm_loadu_ps({ptr})"),
                DataType::F64 => format!("_mm_loadu_pd({ptr})"),
                _ => format!("_mm_loadu_si128((const __m128i*){ptr})"),
            },
            Arch::Avx256 => match dtype {
                DataType::F32 => format!("_mm256_loadu_ps({ptr})"),
                DataType::F64 => format!("_mm256_loadu_pd({ptr})"),
                _ => format!("_mm256_loadu_si256((const __m256i*){ptr})"),
            },
        }
    }

    /// The C statement storing vector register `reg` to `ptr`.
    pub fn store_stmt(self, dtype: DataType, ptr: &str, reg: &str) -> String {
        match self {
            Arch::Neon128 => format!("vst1q_{}({}, {});", Self::neon_suffix(dtype), ptr, reg),
            Arch::Sse128 => match dtype {
                DataType::F32 => format!("_mm_storeu_ps({ptr}, {reg});"),
                DataType::F64 => format!("_mm_storeu_pd({ptr}, {reg});"),
                _ => format!("_mm_storeu_si128((__m128i*){ptr}, {reg});"),
            },
            Arch::Avx256 => match dtype {
                DataType::F32 => format!("_mm256_storeu_ps({ptr}, {reg});"),
                DataType::F64 => format!("_mm256_storeu_pd({ptr}, {reg});"),
                _ => format!("_mm256_storeu_si256((__m256i*){ptr}, {reg});"),
            },
        }
    }

    /// The C scalar element type name (`int32_t`, `float`, …), shared by all
    /// generators when emitting scalar code.
    pub fn c_scalar_type(dtype: DataType) -> &'static str {
        match dtype {
            DataType::I8 => "int8_t",
            DataType::I16 => "int16_t",
            DataType::I32 => "int32_t",
            DataType::I64 => "int64_t",
            DataType::U8 => "uint8_t",
            DataType::U16 => "uint16_t",
            DataType::U32 => "uint32_t",
            DataType::U64 => "uint64_t",
            DataType::F32 => "float",
            DataType::F64 => "double",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an [`Arch`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArchError(pub String);

impl fmt::Display for ParseArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown architecture: {:?}", self.0)
    }
}

impl std::error::Error for ParseArchError {}

impl FromStr for Arch {
    type Err = ParseArchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Arch::ALL
            .iter()
            .copied()
            .find(|a| a.name() == s)
            .ok_or_else(|| ParseArchError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts() {
        assert_eq!(Arch::Neon128.lanes(DataType::I32), 4);
        assert_eq!(Arch::Neon128.lanes(DataType::I8), 16);
        assert_eq!(Arch::Avx256.lanes(DataType::F32), 8);
        assert_eq!(Arch::Avx256.lanes(DataType::F64), 4);
        assert_eq!(Arch::Sse128.lanes(DataType::F64), 2);
    }

    #[test]
    fn neon_type_names() {
        assert_eq!(Arch::Neon128.vector_type(DataType::I32), "int32x4_t");
        assert_eq!(Arch::Neon128.vector_type(DataType::F32), "float32x4_t");
        assert_eq!(Arch::Neon128.vector_type(DataType::U8), "uint8x16_t");
    }

    #[test]
    fn intel_type_names() {
        assert_eq!(Arch::Sse128.vector_type(DataType::I32), "__m128i");
        assert_eq!(Arch::Avx256.vector_type(DataType::F32), "__m256");
        assert_eq!(Arch::Avx256.vector_type(DataType::F64), "__m256d");
    }

    #[test]
    fn load_store_spelling() {
        assert_eq!(Arch::Neon128.load_expr(DataType::I32, "a"), "vld1q_s32(a)");
        assert_eq!(
            Arch::Neon128.store_stmt(DataType::I32, "&out[i]", "v"),
            "vst1q_s32(&out[i], v);"
        );
        assert!(Arch::Sse128
            .load_expr(DataType::I32, "a")
            .contains("_mm_loadu_si128"));
        assert!(Arch::Avx256
            .store_stmt(DataType::F32, "p", "v")
            .contains("_mm256_storeu_ps"));
    }

    #[test]
    fn name_roundtrip() {
        for a in Arch::ALL {
            assert_eq!(a.name().parse::<Arch>().unwrap(), a);
        }
        assert!("mips".parse::<Arch>().is_err());
    }
}
