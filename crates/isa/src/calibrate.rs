//! Profile-guided cost-table calibration.
//!
//! The built-in `.isa` cost tables are issue-count estimates. The VM
//! execution profiler (`hcg_vm::profile`) reports what each instruction
//! *actually* costs under a concrete platform model — including effects
//! the static table cannot see, such as the extra latency an in-order
//! core pays on a fused multiply-accumulate's accumulator chain. A
//! [`CostCalibrator`] ingests that per-instruction evidence (either
//! programmatically via [`CostCalibrator::record`] or from `CycleProfile`
//! JSON via [`CostCalibrator::ingest_profile_json`]) and produces a
//! [`CostOverlay`]: a per-architecture map of calibrated per-issue costs
//! that [`CostOverlay::apply`] patches over an [`InstrSet`] before the
//! mapping stage runs.
//!
//! This closes the loop the paper leaves open: profile the greedy
//! program, calibrate the table, re-map with the beam search
//! (`hcg_core::MappingSearch`) — the search then sees fused instructions
//! at their observed price and splits the ones that no longer pay.
//!
//! Calibration is deliberately separate from the deterministic
//! `Meter::OpCount` path used by the kernel autotuner — reproducible
//! tests keep their op-count costs; calibration is an opt-in overlay.

use crate::arch::Arch;
use crate::instr::InstrSet;
use std::collections::BTreeMap;
use std::fmt;

/// Calibrated per-issue costs, keyed by (architecture, instruction name).
///
/// Entries for other architectures are ignored by [`CostOverlay::apply`],
/// so one overlay can carry a whole multi-arch calibration run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostOverlay {
    entries: BTreeMap<(Arch, String), u32>,
}

impl CostOverlay {
    /// An empty overlay (applying it is the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the calibrated per-issue cost of one instruction.
    pub fn set_cost(&mut self, arch: Arch, name: &str, cost: u32) {
        self.entries.insert((arch, name.to_owned()), cost.max(1));
    }

    /// The calibrated cost for an instruction, when one was recorded.
    pub fn cost(&self, arch: Arch, name: &str) -> Option<u32> {
        self.entries.get(&(arch, name.to_owned())).copied()
    }

    /// Number of calibrated entries (across all architectures).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A copy of `set` with every calibrated cost patched in. Instructions
    /// without an entry (and entries for other architectures) are left
    /// untouched; patterns and code templates are never modified, so the
    /// overlaid set selects among the same instructions — only the cost
    /// ranking changes.
    pub fn apply(&self, set: &InstrSet) -> InstrSet {
        let mut out = set.clone();
        for instr in &mut out.instrs {
            if let Some(cost) = self.cost(set.arch, &instr.name) {
                instr.cost = cost;
            }
        }
        out
    }

    /// A stable textual fingerprint of this overlay's content: entries in
    /// sorted `(arch, name)` order as `arch:name=cost` segments. Equal
    /// overlays fingerprint identically, so the fingerprint works as a
    /// cache key for per-`(arch, overlay)` shared artifacts (see
    /// [`crate::sets::shared_indexed`]).
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for ((arch, name), cost) in &self.entries {
            if !out.is_empty() {
                out.push(';');
            }
            out.push_str(&format!("{arch}:{name}={cost}"));
        }
        out
    }

    /// Entries that differ from the costs in `set` — the interesting rows
    /// of a calibration report, as `(name, table cost, calibrated cost)`.
    pub fn deltas(&self, set: &InstrSet) -> Vec<(String, u32, u32)> {
        set.instrs
            .iter()
            .filter_map(|i| {
                self.cost(set.arch, &i.name)
                    .filter(|&c| c != i.cost)
                    .map(|c| (i.name.clone(), i.cost, c))
            })
            .collect()
    }
}

/// One aggregated per-instruction observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Observation {
    count: u64,
    cycles: u64,
}

/// Error ingesting `CycleProfile` JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrateError {
    /// A structural marker (`"arch"`, `"instrs"`) was present but its
    /// value could not be read.
    Malformed(&'static str),
    /// The profile names an architecture this crate does not know.
    UnknownArch(String),
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::Malformed(what) => write!(f, "malformed profile JSON: {what}"),
            CalibrateError::UnknownArch(a) => write!(f, "unknown architecture {a:?} in profile"),
        }
    }
}

impl std::error::Error for CalibrateError {}

/// Aggregates per-instruction cycle observations and derives a
/// [`CostOverlay`] (observed per-issue cost = `ceil(cycles / count)`).
///
/// # Examples
///
/// ```
/// use hcg_isa::{sets, Arch, CostCalibrator};
///
/// let mut cal = CostCalibrator::new();
/// // 256 fused multiply-accumulates cost 1024 cycles → 4 cycles/issue.
/// cal.record(Arch::Neon128, "vmlaq_s32", 256, 1024);
/// let overlay = cal.overlay();
/// assert_eq!(overlay.cost(Arch::Neon128, "vmlaq_s32"), Some(4));
/// let calibrated = overlay.apply(&sets::builtin(Arch::Neon128));
/// assert_eq!(calibrated.find("vmlaq_s32").unwrap().cost, 4);
/// // Unobserved instructions keep their table cost.
/// assert_eq!(calibrated.find("vaddq_s32").unwrap().cost, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostCalibrator {
    observed: BTreeMap<(Arch, String), Observation>,
}

impl CostCalibrator {
    /// An empty calibrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `count` issues of `name` on `arch` costing `cycles` total.
    /// Repeated records for one instruction accumulate.
    pub fn record(&mut self, arch: Arch, name: &str, count: u64, cycles: u64) {
        let slot = self.observed.entry((arch, name.to_owned())).or_default();
        slot.count += count;
        slot.cycles += cycles;
    }

    /// Number of distinct (arch, instruction) observations.
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }

    /// Ingest the per-instruction stats of `CycleProfile` JSON (a single
    /// profile object or a whole `repro -- profile` report — every
    /// `"arch"`/`"instrs"` pair found is consumed). Returns the number of
    /// instruction records ingested.
    ///
    /// The reader is a purpose-built scanner over the profiler's own
    /// deterministic rendering, not a general JSON parser — the repo
    /// vendors no serde, and the profiler's output shape is pinned by
    /// tests.
    ///
    /// # Errors
    ///
    /// [`CalibrateError`] when an `"arch"` value is unknown or a marker is
    /// unterminated.
    pub fn ingest_profile_json(&mut self, json: &str) -> Result<usize, CalibrateError> {
        const ARCH_KEY: &str = "\"arch\": \"";
        const INSTRS_KEY: &str = "\"instrs\": [";
        let mut ingested = 0usize;
        let mut rest = json;
        while let Some(at) = rest.find(ARCH_KEY) {
            let after = &rest[at + ARCH_KEY.len()..];
            let end = after
                .find('"')
                .ok_or(CalibrateError::Malformed("unterminated arch string"))?;
            let arch: Arch = after[..end]
                .parse()
                .map_err(|_| CalibrateError::UnknownArch(after[..end].to_owned()))?;
            // This profile object's instrs block: between here and the
            // next profile's "arch" key (profiles render instrs last).
            let scope_end = after.find(ARCH_KEY).unwrap_or(after.len());
            let scope = &after[..scope_end];
            if let Some(i) = scope.find(INSTRS_KEY) {
                let block = &scope[i + INSTRS_KEY.len()..];
                let close = block
                    .find(']')
                    .ok_or(CalibrateError::Malformed("unterminated instrs array"))?;
                for obj in block[..close].split('{').skip(1) {
                    let name = scan_str(obj, "\"name\": \"")
                        .ok_or(CalibrateError::Malformed("instr without name"))?;
                    let count = scan_num(obj, "\"count\": ")
                        .ok_or(CalibrateError::Malformed("instr without count"))?;
                    let cycles = scan_num(obj, "\"cycles\": ")
                        .ok_or(CalibrateError::Malformed("instr without cycles"))?;
                    if count > 0 {
                        self.record(arch, name, count, cycles);
                        ingested += 1;
                    }
                }
            }
            rest = &rest[at + ARCH_KEY.len() + end..];
        }
        Ok(ingested)
    }

    /// Derive the calibrated overlay: for every observed instruction, the
    /// per-issue cost rounded up (`ceil(cycles / count)`, floor 1).
    pub fn overlay(&self) -> CostOverlay {
        let mut out = CostOverlay::new();
        for ((arch, name), obs) in &self.observed {
            if obs.count == 0 {
                continue;
            }
            let per_issue = obs.cycles.div_ceil(obs.count).clamp(1, u32::MAX as u64);
            out.set_cost(*arch, name, per_issue as u32);
        }
        out
    }
}

fn scan_str<'a>(hay: &'a str, key: &str) -> Option<&'a str> {
    let at = hay.find(key)? + key.len();
    let end = hay[at..].find('"')?;
    Some(&hay[at..at + end])
}

fn scan_num(hay: &str, key: &str) -> Option<u64> {
    let at = hay.find(key)? + key.len();
    let digits: String = hay[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets;

    #[test]
    fn overlay_applies_only_to_its_arch_and_named_instrs() {
        let mut ov = CostOverlay::new();
        ov.set_cost(Arch::Neon128, "vmlaq_s32", 4);
        ov.set_cost(Arch::Avx256, "_mm256_fmadd_ps", 5);
        assert_eq!(ov.len(), 2);

        let neon = ov.apply(&sets::builtin(Arch::Neon128));
        assert_eq!(neon.find("vmlaq_s32").unwrap().cost, 4);
        assert_eq!(neon.find("vaddq_s32").unwrap().cost, 1);
        assert_eq!(
            ov.deltas(&sets::builtin(Arch::Neon128)),
            vec![("vmlaq_s32".to_owned(), 2, 4)]
        );

        // The AVX entry does not leak into the NEON set and vice versa.
        let avx = ov.apply(&sets::builtin(Arch::Avx256));
        assert_eq!(avx.find("_mm256_fmadd_ps").unwrap().cost, 5);
        assert!(avx.find("vmlaq_s32").is_none());
    }

    #[test]
    fn calibrator_accumulates_and_rounds_up() {
        let mut cal = CostCalibrator::new();
        cal.record(Arch::Neon128, "vmlaq_s32", 100, 250);
        cal.record(Arch::Neon128, "vmlaq_s32", 100, 250);
        // 500 cycles over 200 issues → ceil(2.5) = 3.
        assert_eq!(cal.overlay().cost(Arch::Neon128, "vmlaq_s32"), Some(3));
        // Zero-count observations never produce an entry.
        cal.record(Arch::Avx256, "ghost", 0, 10);
        assert_eq!(cal.overlay().cost(Arch::Avx256, "ghost"), None);
    }

    #[test]
    fn ingest_reads_profile_json() {
        let json = concat!(
            "{\"model\": \"FIR_1024t4\", \"generator\": \"hcg\", \"arch\": \"neon128\", ",
            "\"compiler\": \"gcc\", \"total_cycles\": 9, \"actors\": [",
            "{\"actor\": \"m1\", \"cycles\": 9, \"stmts\": 1}], \"regions\": [], ",
            "\"instrs\": [{\"name\": \"vmlaq_s32\", \"count\": 256, \"cycles\": 1024}, ",
            "{\"name\": \"vmulq_s32\", \"count\": 256, \"cycles\": 256}]}"
        );
        let mut cal = CostCalibrator::new();
        assert_eq!(cal.ingest_profile_json(json).unwrap(), 2);
        let ov = cal.overlay();
        assert_eq!(ov.cost(Arch::Neon128, "vmlaq_s32"), Some(4));
        assert_eq!(ov.cost(Arch::Neon128, "vmulq_s32"), Some(1));
        // Ingesting a report with two profile objects scopes each instrs
        // block to its own arch.
        let two = format!("{json}, {}", json.replace("neon128", "avx256"));
        let mut cal2 = CostCalibrator::new();
        assert_eq!(cal2.ingest_profile_json(&two).unwrap(), 4);
        assert_eq!(cal2.overlay().cost(Arch::Avx256, "vmlaq_s32"), Some(4));
    }

    #[test]
    fn ingest_rejects_unknown_arch_and_tolerates_no_instrs() {
        let mut cal = CostCalibrator::new();
        let err = cal
            .ingest_profile_json("{\"arch\": \"mips64\", \"instrs\": []}")
            .unwrap_err();
        assert!(matches!(err, CalibrateError::UnknownArch(_)), "{err}");
        // A profile without an instrs key ingests zero records.
        assert_eq!(
            cal.ingest_profile_json("{\"arch\": \"neon128\", \"total_cycles\": 3}")
                .unwrap(),
            0
        );
    }
}
