//! Built-in instruction sets, loaded from the external `.isa` files shipped
//! with the crate (paper §3.3: instruction-set information lives in external
//! files so that supporting a new architecture only means writing a new
//! file).

use crate::arch::Arch;
use crate::calibrate::CostOverlay;
use crate::index::InstrIndex;
use crate::instr::InstrSet;
use crate::parse::instr_set_from_text;

/// Source text of the ARM NEON instruction-set file.
pub const NEON128_TEXT: &str = include_str!("../data/neon128.isa");
/// Source text of the Intel SSE4 instruction-set file.
pub const SSE128_TEXT: &str = include_str!("../data/sse128.isa");
/// Source text of the Intel AVX2+FMA instruction-set file.
pub const AVX256_TEXT: &str = include_str!("../data/avx256.isa");

/// Load the built-in instruction set of an architecture.
///
/// # Panics
///
/// Panics if a bundled `.isa` file fails to parse — that is a packaging bug,
/// covered by tests.
///
/// # Examples
///
/// ```
/// use hcg_isa::{sets, Arch};
/// let neon = sets::builtin(Arch::Neon128);
/// assert!(neon.find("vmlaq_s32").is_some());
/// assert!(neon.find("vhaddq_s32").is_some());
/// ```
pub fn builtin(arch: Arch) -> InstrSet {
    let text = match arch {
        Arch::Neon128 => NEON128_TEXT,
        Arch::Sse128 => SSE128_TEXT,
        Arch::Avx256 => AVX256_TEXT,
    };
    let set = instr_set_from_text(text).expect("bundled .isa files are valid");
    debug_assert_eq!(set.arch, arch);
    set
}

/// The built-in instruction set of an architecture together with its
/// [`InstrIndex`], parsed and bucketed once per process and shared behind a
/// `'static` reference.
///
/// [`builtin`] re-parses the `.isa` text on every call, which is fine for a
/// single compile but wasteful when a fleet of jobs (or an incremental
/// session recompiling after every edit) all want the same set. Call sites
/// that need ownership can still clone the pieces cheaply relative to a
/// re-parse.
pub fn builtin_indexed(arch: Arch) -> (&'static InstrSet, &'static InstrIndex) {
    use std::sync::OnceLock;
    static NEON: OnceLock<(InstrSet, InstrIndex)> = OnceLock::new();
    static SSE: OnceLock<(InstrSet, InstrIndex)> = OnceLock::new();
    static AVX: OnceLock<(InstrSet, InstrIndex)> = OnceLock::new();
    let cell = match arch {
        Arch::Neon128 => &NEON,
        Arch::Sse128 => &SSE,
        Arch::Avx256 => &AVX,
    };
    let pair = cell.get_or_init(|| {
        let set = builtin(arch);
        let index = InstrIndex::build(&set);
        (set, index)
    });
    (&pair.0, &pair.1)
}

/// The process-wide registry of `(arch, cost-overlay)` → shared
/// `(InstrSet, InstrIndex)` pairs.
///
/// [`builtin_indexed`] covers the common no-overlay case, but calibrated
/// compiles (`HcgOptions.cost_overlay`) used to re-patch the set and
/// rebuild the index *per compile* — per job on the fleet, per request in
/// a compile service. `shared_indexed` interns each distinct key once:
///
/// * `overlay == None` (or an empty overlay) delegates straight to the
///   [`builtin_indexed`] statics;
/// * a non-empty overlay is keyed by `(arch, overlay.fingerprint())`; the
///   first request patches a copy of the shared builtin set, builds its
///   index, and leaks the pair into a `'static` registry entry every later
///   request borrows.
///
/// Entries live for the rest of the process (they are deliberately leaked
/// — the registry is meant for the handful of calibration overlays a
/// process ever sees, exactly like the builtin statics). One registry
/// entry is built per key no matter how many threads race on it, pinned by
/// [`crate::stats::registry_builds`].
pub fn shared_indexed(
    arch: Arch,
    overlay: Option<&CostOverlay>,
) -> (&'static InstrSet, &'static InstrIndex) {
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    let overlay = match overlay {
        Some(ov) if !ov.is_empty() => ov,
        _ => return builtin_indexed(arch),
    };

    type Registry = BTreeMap<(Arch, String), &'static (InstrSet, InstrIndex)>;
    static REGISTRY: Mutex<Registry> = Mutex::new(BTreeMap::new());
    let key = (arch, overlay.fingerprint());
    let mut registry = REGISTRY.lock().expect("isa registry lock poisoned");
    let pair = registry.entry(key).or_insert_with(|| {
        crate::stats::record_registry_build();
        let set = overlay.apply(builtin_indexed(arch).0);
        let index = InstrIndex::build(&set);
        Box::leak(Box::new((set, index)))
    });
    (&pair.0, &pair.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::op::ElemOp;
    use hcg_model::DataType;

    #[test]
    fn builtin_indexed_is_shared_and_matches_fresh_build() {
        for arch in Arch::ALL {
            let (set1, idx1) = builtin_indexed(arch);
            let (set2, idx2) = builtin_indexed(arch);
            assert!(std::ptr::eq(set1, set2), "one parse per process");
            assert!(std::ptr::eq(idx1, idx2));
            assert_eq!(*set1, builtin(arch));
            assert_eq!(*idx1, crate::index::InstrIndex::build(set1));
        }
    }

    #[test]
    fn shared_indexed_without_overlay_is_the_builtin_static() {
        for arch in Arch::ALL {
            let (set, idx) = shared_indexed(arch, None);
            let (bset, bidx) = builtin_indexed(arch);
            assert!(std::ptr::eq(set, bset), "{arch}");
            assert!(std::ptr::eq(idx, bidx), "{arch}");
            // An empty overlay is the identity and must not mint a key.
            let (eset, _) = shared_indexed(arch, Some(&CostOverlay::new()));
            assert!(std::ptr::eq(eset, bset), "{arch}");
        }
    }

    #[test]
    fn shared_indexed_builds_once_per_arch_overlay_key() {
        // A fingerprint no other test uses, so the registry-build counter
        // delta below is exactly this test's own work even when the test
        // binary runs in parallel.
        let mut ov = CostOverlay::new();
        ov.set_cost(Arch::Neon128, "vmlaq_s32", 91);
        ov.set_cost(Arch::Avx256, "vfmadd_ps", 91);

        let before = crate::stats::registry_builds();
        let (s1, i1) = shared_indexed(Arch::Neon128, Some(&ov));
        let (s2, i2) = shared_indexed(Arch::Neon128, Some(&ov));
        let (s3, _) = shared_indexed(Arch::Neon128, Some(&ov));
        assert!(std::ptr::eq(s1, s2) && std::ptr::eq(s1, s3));
        assert!(std::ptr::eq(i1, i2));
        // One parse-equivalent build for three requests of the same key …
        assert_eq!(crate::stats::registry_builds() - before, 1);
        // … and a second key (same overlay, different arch) builds its own.
        let (s4, _) = shared_indexed(Arch::Avx256, Some(&ov));
        assert_eq!(crate::stats::registry_builds() - before, 2);
        assert_eq!(s4.arch, Arch::Avx256);
        // The entry really carries the patched costs.
        assert_eq!(s1.find("vmlaq_s32").unwrap().cost, 91);
        assert_eq!(*s1, ov.apply(&builtin(Arch::Neon128)));
        assert_eq!(*i1, crate::index::InstrIndex::build(s1));
    }

    #[test]
    fn overlay_fingerprints_are_stable_and_content_keyed() {
        let mut a = CostOverlay::new();
        a.set_cost(Arch::Neon128, "vaddq_s32", 3);
        a.set_cost(Arch::Sse128, "padd_w", 2);
        let mut b = CostOverlay::new();
        // Insertion order must not matter.
        b.set_cost(Arch::Sse128, "padd_w", 2);
        b.set_cost(Arch::Neon128, "vaddq_s32", 3);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), "neon128:vaddq_s32=3;sse128:padd_w=2");
        b.set_cost(Arch::Neon128, "vaddq_s32", 4);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(CostOverlay::new().fingerprint(), "");
    }

    #[test]
    fn all_builtin_sets_parse() {
        for arch in Arch::ALL {
            let set = builtin(arch);
            assert_eq!(set.arch, arch);
            assert!(!set.is_empty(), "{arch}");
        }
    }

    #[test]
    fn lane_counts_match_arch() {
        for arch in Arch::ALL {
            for i in &builtin(arch).instrs {
                assert_eq!(
                    i.lanes,
                    arch.lanes(i.dtype),
                    "{arch}: {} has {} lanes, register fits {}",
                    i.name,
                    i.lanes,
                    arch.lanes(i.dtype)
                );
            }
        }
    }

    #[test]
    fn patterns_respect_dtype_rules() {
        for arch in Arch::ALL {
            for i in &builtin(arch).instrs {
                for op in i.pattern.ops() {
                    assert!(
                        op.supports(i.dtype),
                        "{arch}: {} uses {op} on {}",
                        i.name,
                        i.dtype
                    );
                }
            }
        }
    }

    #[test]
    fn neon_has_paper_instructions() {
        let neon = builtin(Arch::Neon128);
        // Listing 1 of the paper.
        for name in ["vsubq_s32", "vhaddq_s32", "vmlaq_s32", "vaddq_s32"] {
            assert!(neon.find(name).is_some(), "{name}");
        }
        let vhadd = neon.find("vhaddq_s32").unwrap();
        assert_eq!(vhadd.pattern.op, ElemOp::Shr(1));
        assert_eq!(vhadd.pattern.node_count(), 2);
    }

    #[test]
    fn sse_has_no_compound_instructions() {
        let sse = builtin(Arch::Sse128);
        assert!(sse.instrs.iter().all(|i| i.pattern.node_count() == 1));
    }

    #[test]
    fn avx_has_fma_only_for_floats() {
        let avx = builtin(Arch::Avx256);
        let compounds: Vec<_> = avx
            .instrs
            .iter()
            .filter(|i| i.pattern.node_count() > 1)
            .collect();
        assert!(!compounds.is_empty());
        assert!(compounds.iter().all(|i| i.dtype.is_float()));
    }

    #[test]
    fn integer_division_absent_everywhere() {
        for arch in Arch::ALL {
            for i in &builtin(arch).instrs {
                if i.pattern.ops().contains(&ElemOp::Div) {
                    assert!(i.dtype.is_float(), "{arch}: {}", i.name);
                }
            }
        }
    }

    #[test]
    fn builtin_sets_roundtrip_through_text() {
        use crate::parse::{instr_set_from_text, instr_set_to_text};
        for arch in Arch::ALL {
            let set = builtin(arch);
            let back = instr_set_from_text(&instr_set_to_text(&set)).unwrap();
            assert_eq!(set, back, "{arch}");
        }
    }

    #[test]
    fn max_graph_bounds() {
        let neon = builtin(Arch::Neon128);
        assert_eq!(neon.max_depth(DataType::I32, 4), 2);
        assert_eq!(neon.max_nodes(DataType::I32, 4), 2);
        let sse = builtin(Arch::Sse128);
        assert_eq!(sse.max_depth(DataType::I32, 4), 1);
    }
}
