//! The staged pipeline layer: named generator [`Pass`]es run over a
//! [`PipelineCtx`] by a [`PassManager`] that times every stage, tracks
//! counter deltas, and runs the analyzer between stages.
//!
//! Each [`crate::CodeGenerator`] describes itself as a list of passes
//! (HCG: `dispatch` → `region-formation` → `instruction-mapping` →
//! `compose`; the baselines have their own stage lists). The manager
//! produces the final [`Program`] plus a [`StageReport`] — the per-stage
//! breakdown behind `repro -- gentime`.

use crate::batch::{BatchRegion, RegionPlan};
use crate::dispatch::{classify_all, Dispatch};
use crate::generator::{debug_lint_stage, GenContext, GenError};
use hcg_isa::{Arch, InstrIndex, InstrSet};
use hcg_model::schedule::Schedule;
use hcg_model::{Model, TypeMap};
use hcg_vm::{Program, Stmt};
use std::borrow::Cow;
use std::fmt;
use std::time::Instant;

/// Work counters accumulated across a pipeline run. Each [`StageRecord`]
/// stores the *delta* its stage contributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCounters {
    /// Actors routed through dispatch classification.
    pub actors_dispatched: u64,
    /// Batch regions formed.
    pub regions_formed: u64,
    /// SIMD instructions selected by graph mapping.
    pub instructions_selected: u64,
    /// Dataflow nodes folded into compound instructions (nodes minus
    /// selected instructions, over all SIMD-mapped regions).
    pub nodes_fused: u64,
    /// Intensive-actor kernel calls emitted.
    pub kernel_calls: u64,
}

impl StageCounters {
    /// Component-wise `self - earlier` (saturating; counters only grow).
    pub fn delta(self, earlier: StageCounters) -> StageCounters {
        StageCounters {
            actors_dispatched: self
                .actors_dispatched
                .saturating_sub(earlier.actors_dispatched),
            regions_formed: self.regions_formed.saturating_sub(earlier.regions_formed),
            instructions_selected: self
                .instructions_selected
                .saturating_sub(earlier.instructions_selected),
            nodes_fused: self.nodes_fused.saturating_sub(earlier.nodes_fused),
            kernel_calls: self.kernel_calls.saturating_sub(earlier.kernel_calls),
        }
    }

    /// Component-wise accumulate `other` into `self` — the single summing
    /// primitive behind [`StageReport::totals`] and registry emission.
    pub fn add(&mut self, other: StageCounters) {
        self.actors_dispatched += other.actors_dispatched;
        self.regions_formed += other.regions_formed;
        self.instructions_selected += other.instructions_selected;
        self.nodes_fused += other.nodes_fused;
        self.kernel_calls += other.kernel_calls;
    }

    /// Record every counter into a metrics registry under
    /// `<prefix>.<field>` names.
    pub fn record(&self, registry: &hcg_obs::MetricsRegistry, prefix: &str) {
        registry.counter_add(
            &format!("{prefix}.actors_dispatched"),
            self.actors_dispatched,
        );
        registry.counter_add(&format!("{prefix}.regions_formed"), self.regions_formed);
        registry.counter_add(
            &format!("{prefix}.instructions_selected"),
            self.instructions_selected,
        );
        registry.counter_add(&format!("{prefix}.nodes_fused"), self.nodes_fused);
        registry.counter_add(&format!("{prefix}.kernel_calls"), self.kernel_calls);
    }
}

/// What one pass did: wall-clock time, counter deltas, statements added,
/// and the inter-pass lint outcome.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Pass name (e.g. `region-formation`).
    pub name: &'static str,
    /// Wall-clock duration of the pass in microseconds.
    pub micros: u64,
    /// Counter increments attributable to this pass.
    pub counters: StageCounters,
    /// Statements (including loop bodies) added by this pass.
    pub stmts_emitted: u64,
    /// Warnings from the inter-pass lint hook (`None` in release builds,
    /// where the hook is compiled out).
    pub lint_warnings: Option<usize>,
}

/// The per-stage breakdown of one `generate` run.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Generator name.
    pub generator: String,
    /// Model name.
    pub model: String,
    /// Target architecture.
    pub arch: Arch,
    /// One record per pass, in execution order.
    pub stages: Vec<StageRecord>,
}

impl StageReport {
    /// Total wall-clock microseconds across all stages.
    pub fn total_micros(&self) -> u64 {
        self.stages.iter().map(|s| s.micros).sum()
    }

    /// Sum of all stage counter deltas.
    pub fn totals(&self) -> StageCounters {
        let mut t = StageCounters::default();
        for s in &self.stages {
            t.add(s.counters);
        }
        t
    }

    /// Record this run's totals into a metrics registry: the summed
    /// counters under `pipeline.*` plus run/stage/microsecond tallies.
    pub fn record_metrics(&self, registry: &hcg_obs::MetricsRegistry) {
        self.totals().record(registry, "pipeline");
        registry.counter_add("pipeline.runs", 1);
        registry.counter_add("pipeline.stages", self.stages.len() as u64);
        registry.counter_add("pipeline.micros", self.total_micros());
    }

    /// Render as a fixed-width table (one line per stage plus a total row).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} @ {} on {} — {} stage(s)\n",
            self.generator,
            self.arch,
            self.model,
            self.stages.len()
        );
        out.push_str(&format!(
            "  {:<20} {:>9} {:>10} {:>8} {:>7} {:>6} {:>8} {:>6} {:>5}\n",
            "stage", "µs", "dispatch", "regions", "instrs", "fused", "kernels", "stmts", "lint"
        ));
        for s in &self.stages {
            let lint = match s.lint_warnings {
                Some(w) => format!("{w}w"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  {:<20} {:>9} {:>10} {:>8} {:>7} {:>6} {:>8} {:>6} {:>5}\n",
                s.name,
                s.micros,
                s.counters.actors_dispatched,
                s.counters.regions_formed,
                s.counters.instructions_selected,
                s.counters.nodes_fused,
                s.counters.kernel_calls,
                s.stmts_emitted,
                lint
            ));
        }
        let t = self.totals();
        out.push_str(&format!(
            "  {:<20} {:>9} {:>10} {:>8} {:>7} {:>6} {:>8} {:>6} {:>5}\n",
            "total",
            self.total_micros(),
            t.actors_dispatched,
            t.regions_formed,
            t.instructions_selected,
            t.nodes_fused,
            t.kernel_calls,
            self.stages.iter().map(|s| s.stmts_emitted).sum::<u64>(),
            ""
        ));
        out
    }
}

/// The program as it moves through the pipeline: under construction inside
/// a [`GenContext`], then finished.
#[derive(Debug)]
enum Built<'m> {
    Building(GenContext<'m>),
    Finished(Program),
}

/// Everything a pass can see and mutate: the program under construction,
/// shared scratch artifacts handed from stage to stage, and the run's
/// counters.
#[derive(Debug)]
pub struct PipelineCtx<'m> {
    built: Option<Built<'m>>,
    /// Dispatch classification — pre-seeded (borrowed) by a
    /// [`crate::CompileSession`], or computed by [`dispatch_pass`].
    pub dispatch: Option<Cow<'m, [Dispatch]>>,
    /// Batch regions, produced by a region-formation stage.
    pub regions: Option<Vec<BatchRegion>>,
    /// Per-region emission plans, parallel to `regions`.
    pub plans: Option<Vec<RegionPlan>>,
    /// The instruction set resolved for the target. Borrowed from the
    /// process-wide [`hcg_isa::sets::builtin_indexed`] statics unless the
    /// generator overrides the set, so concurrent fleet jobs share one
    /// parse.
    pub instr_set: Option<Cow<'static, InstrSet>>,
    /// Pre-bucketed lookup over `instr_set`, built once (or borrowed from
    /// the shared statics) by the region-formation stage and reused by
    /// every mapping query.
    pub instr_index: Option<Cow<'static, InstrIndex>>,
    /// Monotonic work counters (the manager records per-stage deltas).
    pub counters: StageCounters,
}

impl<'m> PipelineCtx<'m> {
    /// A standalone context: computes type inference and schedule on the
    /// spot (the compatibility path behind [`crate::CodeGenerator::generate`]).
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when the model is invalid.
    pub fn standalone(model: &'m Model, arch: Arch, generator: &str) -> Result<Self, GenError> {
        Ok(Self::from_ctx(GenContext::new(model, arch, generator)?))
    }

    /// A context over session-cached artifacts (no recomputation).
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when buffer allocation fails.
    pub fn with_artifacts(
        model: &'m Model,
        types: &'m TypeMap,
        schedule: &'m Schedule,
        arch: Arch,
        generator: &str,
    ) -> Result<Self, GenError> {
        Ok(Self::from_ctx(GenContext::with_artifacts(
            model, types, schedule, arch, generator,
        )?))
    }

    fn from_ctx(ctx: GenContext<'m>) -> Self {
        PipelineCtx {
            built: Some(Built::Building(ctx)),
            dispatch: None,
            regions: None,
            plans: None,
            instr_set: None,
            instr_index: None,
            counters: StageCounters::default(),
        }
    }

    /// The generation context (program under construction).
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Internal`] when the pipeline already finished.
    pub fn building(&self) -> Result<&GenContext<'m>, GenError> {
        match &self.built {
            Some(Built::Building(ctx)) => Ok(ctx),
            _ => Err(GenError::Internal(
                "pipeline is not in the building state".into(),
            )),
        }
    }

    /// Mutable access to the generation context.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Internal`] when the pipeline already finished.
    pub fn building_mut(&mut self) -> Result<&mut GenContext<'m>, GenError> {
        match &mut self.built {
            Some(Built::Building(ctx)) => Ok(ctx),
            _ => Err(GenError::Internal(
                "pipeline is not in the building state".into(),
            )),
        }
    }

    /// The finished program, for post-composition passes (e.g. loop
    /// folding).
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Internal`] before [`PipelineCtx::finish`] ran.
    pub fn program_mut(&mut self) -> Result<&mut Program, GenError> {
        match &mut self.built {
            Some(Built::Finished(prog)) => Ok(prog),
            _ => Err(GenError::Internal("pipeline has not finished yet".into())),
        }
    }

    /// Target architecture.
    pub fn arch(&self) -> Arch {
        self.current_program().arch
    }

    /// The dispatch classification, whoever computed it.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Internal`] when no dispatch stage ran.
    pub fn dispatch_slice(&self) -> Result<&[Dispatch], GenError> {
        self.dispatch
            .as_deref()
            .ok_or_else(|| GenError::Internal("dispatch classification not computed".into()))
    }

    /// Take ownership of the dispatch classification (compose stages
    /// consume it to avoid borrow conflicts with the context).
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Internal`] when no dispatch stage ran.
    pub fn take_dispatch(&mut self) -> Result<Cow<'m, [Dispatch]>, GenError> {
        self.dispatch
            .take()
            .ok_or_else(|| GenError::Internal("dispatch classification not computed".into()))
    }

    /// Run [`GenContext::finish`] (outport copies, delay latches) and move
    /// the pipeline into the finished state.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Internal`] when called twice.
    pub fn finish(&mut self) -> Result<(), GenError> {
        match self.built.take() {
            Some(Built::Building(ctx)) => {
                self.built = Some(Built::Finished(ctx.finish()));
                Ok(())
            }
            other => {
                self.built = other;
                Err(GenError::Internal("pipeline already finished".into()))
            }
        }
    }

    /// Whether [`PipelineCtx::finish`] has run.
    pub fn is_finished(&self) -> bool {
        matches!(self.built, Some(Built::Finished(_)))
    }

    /// The program as it currently stands (building or finished).
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within [`PipelineCtx::finish`]
    /// (not possible from pass code).
    pub fn current_program(&self) -> &Program {
        match self.built.as_ref().expect("pipeline state present") {
            Built::Building(ctx) => &ctx.prog,
            Built::Finished(prog) => prog,
        }
    }

    fn into_program(self) -> Result<Program, GenError> {
        match self.built {
            Some(Built::Finished(prog)) => Ok(prog),
            _ => Err(GenError::Internal(
                "pipeline ended without a finished program — the generator's last pass must call finish()".into(),
            )),
        }
    }
}

/// The boxed stage function a [`Pass`] runs over the pipeline context.
pub type PassFn<'g> = Box<dyn Fn(&mut PipelineCtx<'_>) -> Result<(), GenError> + 'g>;

/// One named pipeline stage.
pub struct Pass<'g> {
    name: &'static str,
    run: PassFn<'g>,
}

impl<'g> Pass<'g> {
    /// A pass from a name and a stage function.
    pub fn new<F>(name: &'static str, run: F) -> Self
    where
        F: Fn(&mut PipelineCtx<'_>) -> Result<(), GenError> + 'g,
    {
        Pass {
            name,
            run: Box::new(run),
        }
    }

    /// The stage name as shown in reports.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Debug for Pass<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pass").field("name", &self.name).finish()
    }
}

/// The shared `dispatch` stage: classify every actor unless a session
/// already seeded the classification, and count the actors routed through
/// dispatch either way.
pub fn dispatch_pass<'g>() -> Pass<'g> {
    Pass::new("dispatch", |p| {
        if p.dispatch.is_none() {
            let ctx = p.building()?;
            let d = classify_all(ctx.model, &ctx.types);
            p.dispatch = Some(Cow::Owned(d));
        }
        p.counters.actors_dispatched += p.dispatch_slice()?.len() as u64;
        Ok(())
    })
}

/// Runs the generator passes in order, timing each one, computing counter
/// and statement deltas, and invoking the inter-pass lint hook.
#[derive(Debug)]
pub struct PassManager<'g> {
    passes: Vec<Pass<'g>>,
}

impl<'g> PassManager<'g> {
    /// A manager over a generator's pass list.
    pub fn new(passes: Vec<Pass<'g>>) -> Self {
        PassManager { passes }
    }

    /// Run all passes over `ctx` and return the finished program with its
    /// stage report.
    ///
    /// # Errors
    ///
    /// Returns the first pass error, or [`GenError::Internal`] when the
    /// last pass leaves the pipeline unfinished.
    pub fn run(self, mut ctx: PipelineCtx<'_>) -> Result<(Program, StageReport), GenError> {
        let (generator, model) = {
            let prog = ctx.current_program();
            (prog.generator.clone(), prog.name.clone())
        };
        let arch = ctx.arch();
        let _run_span = hcg_obs::span_with("pipeline", || format!("{generator}/{model}@{arch}"));
        let mut stages = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let counters_before = ctx.counters;
            let stmts_before = stmt_count(&ctx.current_program().body);
            let pass_span = hcg_obs::span_with("pass", || format!("{generator}/{}", pass.name));
            let t0 = Instant::now();
            (pass.run)(&mut ctx)?;
            let micros = t0.elapsed().as_micros() as u64;
            drop(pass_span);
            let prog = ctx.current_program();
            let lint_warnings = debug_lint_stage(prog, ctx.is_finished());
            stages.push(StageRecord {
                name: pass.name,
                micros,
                counters: ctx.counters.delta(counters_before),
                stmts_emitted: (stmt_count(&prog.body).saturating_sub(stmts_before)) as u64,
                lint_warnings,
            });
        }
        let report = StageReport {
            generator,
            model,
            arch,
            stages,
        };
        report.record_metrics(hcg_obs::MetricsRegistry::global());
        Ok((ctx.into_program()?, report))
    }
}

/// Total statement count, descending into loop bodies.
fn stmt_count(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::Loop { body, .. } => 1 + stmt_count(body),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::library;

    #[test]
    fn manager_times_and_orders_stages() {
        use crate::conventional::{emit_conventional, LoopStyle};
        use hcg_model::ActorKind;
        let m = library::fig4_model();
        let ctx = PipelineCtx::standalone(&m, Arch::Neon128, "test").unwrap();
        let passes = vec![
            dispatch_pass(),
            Pass::new("compose", |p: &mut PipelineCtx<'_>| {
                let ctx = p.building_mut()?;
                for idx in 0..ctx.schedule.order.len() {
                    let aid = ctx.schedule.order[idx];
                    let actor = ctx.model.actor(aid).clone();
                    if matches!(
                        actor.kind,
                        ActorKind::Inport
                            | ActorKind::Outport
                            | ActorKind::Constant
                            | ActorKind::UnitDelay
                    ) {
                        continue;
                    }
                    emit_conventional(ctx, &actor, LoopStyle::LOOPS)?;
                }
                p.finish()
            }),
        ];
        let (prog, report) = PassManager::new(passes).run(ctx).unwrap();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "dispatch");
        assert_eq!(report.stages[1].name, "compose");
        assert_eq!(
            report.stages[0].counters.actors_dispatched,
            m.actors.len() as u64
        );
        // finish() emitted the outport copies.
        assert!(report.stages[1].stmts_emitted > 0);
        assert_eq!(prog.name, m.name);
        assert!(report.render().contains("dispatch"));
    }

    #[test]
    fn unfinished_pipeline_is_an_error() {
        let m = library::fig4_model();
        let ctx = PipelineCtx::standalone(&m, Arch::Neon128, "test").unwrap();
        let err = PassManager::new(vec![dispatch_pass()])
            .run(ctx)
            .unwrap_err();
        assert!(matches!(err, GenError::Internal(_)));
    }

    #[test]
    fn counter_deltas_are_per_stage() {
        let a = StageCounters {
            actors_dispatched: 5,
            regions_formed: 2,
            ..StageCounters::default()
        };
        let b = StageCounters {
            actors_dispatched: 8,
            regions_formed: 2,
            instructions_selected: 3,
            ..StageCounters::default()
        };
        let d = b.delta(a);
        assert_eq!(d.actors_dispatched, 3);
        assert_eq!(d.regions_formed, 0);
        assert_eq!(d.instructions_selected, 3);
    }
}
