//! `MappingSearch`: beam-search / branch-and-bound exploration of region
//! tilings — the opt-in alternative to Algorithm 2's greedy first-match
//! selection.
//!
//! The greedy mapper commits to the largest candidate subgraph whose tree
//! matches *any* instruction and never reconsiders, which is only locally
//! optimal: once profile-guided calibration adjusts the cost table (see
//! `hcg_isa::CostCalibrator`), a fused instruction can be dearer than the
//! sequence it replaces — an in-order core serialises a three-operand
//! multiply-accumulate on its accumulator operand, while the split
//! multiply/add pair pipelines. `MappingSearch` explores alternative
//! tilings: every candidate subgraph × every matching instruction,
//! enumerated cheapest-first through `MatchMemo::find_all`, keeping the
//! `width` best partial tilings per round. A tiling is scored by the sum
//! of its per-issue instruction costs — exactly what
//! `CostModel::stmt_cycles` charges the `VOp` each step will emit, so
//! minimising the score minimises the modeled cycles of the region body.
//!
//! Guarantees:
//!
//! * the search seeds its incumbent with the greedy tiling, so the result
//!   is **never worse** than greedy under the scoring cost table, and is
//!   *exactly* the greedy plan when no strictly cheaper tiling exists
//!   (ties never replace the incumbent);
//! * [`MappingStrategy::Beam`] with `width <= 1` short-circuits to the
//!   greedy mapper itself — byte-identical programs by construction
//!   (pinned by the `beam1_identical_to_greedy` property test);
//! * an admissible lower bound — `ceil(pending / max_nodes) ×
//!   cheapest-applicable-instruction-cost` — prunes partial tilings that
//!   cannot strictly beat the incumbent, making the search
//!   branch-and-bound rather than purely heuristic.
//!
//! The search reports `search.*` counters (states expanded, prunes,
//! completed tilings, memo traffic) to the global
//! [`hcg_obs::MetricsRegistry`] and runs under a `search` span.

use crate::batch::{map_graph, MatchOrder, PlanStep};
use crate::generator::GenError;
use hcg_graph::extend::{extend_subgraphs, top_left_node, MapState};
use hcg_graph::matching::MatchMemo;
use hcg_graph::Dfg;
use hcg_isa::{InstrIndex, InstrSet};

/// How Algorithm 2 chooses the instruction tiling of a batch region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MappingStrategy {
    /// The paper's greedy largest-subgraph, first-match selection.
    #[default]
    Greedy,
    /// Beam search over whole-region tilings, seeded with the greedy plan
    /// (never worse, strictly better when the cost table rewards a
    /// different tiling).
    Beam {
        /// Partial tilings kept per search round. `width <= 1` delegates
        /// to the greedy mapper and is byte-identical to
        /// [`MappingStrategy::Greedy`].
        width: usize,
    },
}

impl MappingStrategy {
    /// Short stable label for reports, cache keys and metrics
    /// (`"greedy"`, `"beam4"`).
    pub fn label(&self) -> String {
        match self {
            MappingStrategy::Greedy => "greedy".to_owned(),
            MappingStrategy::Beam { width } => format!("beam{width}"),
        }
    }
}

/// One partial tiling: which nodes are covered, the steps so far, and the
/// summed per-issue cost of those steps.
#[derive(Debug, Clone)]
struct BeamNode {
    state: MapState,
    plan: Vec<PlanStep>,
    cost: u64,
}

/// The beam-search region-mapping engine (see module docs).
///
/// Borrowed over one `(set, index, lanes)` configuration; [`run`] maps one
/// region dataflow graph per call. Construction is free — all state lives
/// per run.
///
/// [`run`]: MappingSearch::run
#[derive(Debug)]
pub struct MappingSearch<'a> {
    set: &'a InstrSet,
    index: &'a InstrIndex,
    lanes: usize,
    width: usize,
    order: MatchOrder,
}

impl<'a> MappingSearch<'a> {
    /// A search over `set`/`index` at `lanes`, keeping `width` partial
    /// tilings per round. `order` seeds the greedy incumbent (the paper
    /// default is largest-first).
    pub fn new(
        set: &'a InstrSet,
        index: &'a InstrIndex,
        lanes: usize,
        width: usize,
        order: MatchOrder,
    ) -> Self {
        MappingSearch {
            set,
            index,
            lanes,
            width: width.max(1),
            order,
        }
    }

    /// Map one region graph: greedy incumbent first, then beam rounds with
    /// lower-bound pruning. Returns the cheapest tiling found.
    pub(crate) fn run(&self, g: &Dfg) -> Result<Vec<PlanStep>, GenError> {
        let _span = hcg_obs::span("search", "beam");
        // Incumbent: the greedy tiling. The search only ever improves on
        // it, so beam-mapped programs are never worse than greedy under
        // the scoring cost table.
        let greedy = map_graph(g, self.set, self.index, self.lanes, self.order)?;
        let mut best_cost = plan_cost(&greedy);
        let mut best_plan = greedy;

        let bounds = self.index.bounds(g.dtype, self.lanes);
        let max_nodes = bounds.max_nodes.max(1);
        let max_depth = bounds.max_depth.max(1);
        // Admissible completion bound: any tiling of `pending` nodes needs
        // at least ceil(pending / max_nodes) instructions, each costing at
        // least the cheapest applicable instruction.
        let min_cost = self
            .set
            .candidates(g.dtype, self.lanes)
            .map(|i| i.cost as u64)
            .min()
            .unwrap_or(1)
            .max(1);
        let lower_bound = |pending: usize| (pending as u64).div_ceil(max_nodes as u64) * min_cost;

        let mut memo = MatchMemo::new();
        let mut frontier = vec![BeamNode {
            state: MapState::new(g),
            plan: Vec::new(),
            cost: 0,
        }];
        let (mut expanded, mut pruned, mut completed, mut improved) = (0u64, 0u64, 0u64, false);
        while !frontier.is_empty() {
            let mut next: Vec<BeamNode> = Vec::new();
            for node in frontier.drain(..) {
                let Some(start) = top_left_node(g, &node.state) else {
                    // A complete tiling; strict improvement only, so ties
                    // keep the greedy incumbent.
                    completed += 1;
                    if node.cost < best_cost {
                        best_cost = node.cost;
                        best_plan = node.plan;
                        improved = true;
                    }
                    continue;
                };
                expanded += 1;
                // Successors in greedy preference order (largest candidate
                // first, cheapest instruction first): on equal optimistic
                // scores the stable sort below keeps this order, so the
                // beam degenerates gracefully toward the greedy path.
                let candidates = extend_subgraphs(g, &node.state, start, max_nodes, max_depth);
                for c in &candidates {
                    for (instr, matched) in
                        memo.find_all(self.set, self.index, g.dtype, self.lanes, &c.tree)
                    {
                        let cost = node.cost + instr.cost as u64;
                        let mut state = node.state.clone();
                        state.mark_computed(&c.nodes);
                        if cost + lower_bound(state.pending()) >= best_cost {
                            pruned += 1;
                            continue;
                        }
                        let mut plan = node.plan.clone();
                        plan.push(PlanStep {
                            candidate: c.clone(),
                            instr: instr.clone(),
                            matched,
                        });
                        next.push(BeamNode { state, plan, cost });
                    }
                }
            }
            // Beam selection by optimistic score; the sort is stable, so
            // ties resolve to generation order. States covering the same
            // node set keep only their cheapest representative.
            next.sort_by_cached_key(|n| n.cost + lower_bound(n.state.pending()));
            let mut kept: Vec<BeamNode> = Vec::with_capacity(self.width);
            for n in next {
                if kept.len() >= self.width {
                    break;
                }
                if kept.iter().any(|k| k.state == n.state) {
                    continue;
                }
                kept.push(n);
            }
            frontier = kept;
        }

        let reg = hcg_obs::MetricsRegistry::global();
        reg.counter_add("search.runs", 1);
        reg.counter_add("search.states_expanded", expanded);
        reg.counter_add("search.pruned_lb", pruned);
        reg.counter_add("search.tilings_completed", completed);
        reg.counter_add("search.memo_hits", memo.hits());
        reg.counter_add("search.memo_misses", memo.misses());
        if improved {
            reg.counter_add("search.improved", 1);
        }
        Ok(best_plan)
    }
}

/// Score of a tiling: summed per-issue instruction cost, the quantity
/// `CostModel::stmt_cycles` charges each emitted `VOp`.
pub(crate) fn plan_cost(plan: &[PlanStep]) -> u64 {
    plan.iter().map(|s| s.instr.cost as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{form_regions_indexed, plan_region_indexed, BatchOptions};
    use crate::generator::GenContext;
    use hcg_isa::{sets, Arch};
    use hcg_model::library;

    #[test]
    fn strategy_labels_are_stable() {
        assert_eq!(MappingStrategy::Greedy.label(), "greedy");
        assert_eq!(MappingStrategy::Beam { width: 4 }.label(), "beam4");
        assert_eq!(MappingStrategy::default(), MappingStrategy::Greedy);
    }

    /// Under the builtin cost tables greedy is already optimal on the
    /// bundled models (fused instructions cost no more than the split
    /// sequence), so the beam keeps the greedy incumbent exactly.
    #[test]
    fn beam_keeps_greedy_plan_under_builtin_costs() {
        for (model, arch) in [
            (library::fig4_model(), Arch::Neon128),
            (library::fir_model(64, 4), Arch::Neon128),
            (library::lowpass_model(64), Arch::Avx256),
        ] {
            let ctx = GenContext::new(&model, arch, "test").unwrap();
            let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
            let (set, index) = sets::builtin_indexed(arch);
            let greedy_opts = BatchOptions::default();
            let beam_opts = BatchOptions {
                mapping: MappingStrategy::Beam { width: 8 },
                ..BatchOptions::default()
            };
            for region in &form_regions_indexed(&ctx, &d, set, index) {
                let a = plan_region_indexed(&ctx, region, set, index, greedy_opts).unwrap();
                let b = plan_region_indexed(&ctx, region, set, index, beam_opts).unwrap();
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{} on {arch}",
                    model.name
                );
            }
        }
    }

    /// When the cost table charges fused multiply-accumulate more than the
    /// split pair, the beam finds the cheaper split tiling while greedy
    /// (structure-driven) stays fused.
    #[test]
    fn beam_splits_fusions_when_cost_table_penalises_them() {
        let model = library::fir_model(64, 4);
        let ctx = GenContext::new(&model, Arch::Neon128, "test").unwrap();
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let mut set = sets::builtin(Arch::Neon128);
        for i in &mut set.instrs {
            if i.name == "vmlaq_s32" {
                i.cost = 4; // dearer than vmulq (1) + vaddq (1)
            }
        }
        let index = hcg_isa::InstrIndex::build(&set);
        let regions = form_regions_indexed(&ctx, &d, &set, &index);
        let plan_all = |opts: BatchOptions| {
            regions
                .iter()
                .map(|r| plan_region_indexed(&ctx, r, &set, &index, opts).unwrap())
                .collect::<Vec<_>>()
        };
        let greedy = plan_all(BatchOptions::default());
        let beam = plan_all(BatchOptions {
            mapping: MappingStrategy::Beam { width: 8 },
            ..BatchOptions::default()
        });
        let steps = |plans: &[crate::batch::RegionPlan]| {
            plans
                .iter()
                .filter_map(|p| p.simd_step_count())
                .sum::<usize>()
        };
        let fused =
            |plans: &[crate::batch::RegionPlan]| format!("{plans:?}").matches("vmlaq_s32").count();
        // Greedy still fuses (fewer, dearer steps); the beam splits every
        // fused multiply-accumulate into the cheaper single-op pair.
        assert!(fused(&greedy) > 0, "greedy keeps the fused selection");
        assert_eq!(fused(&beam), 0);
        assert!(steps(&beam) > steps(&greedy));
    }
}
