//! Conventional (scalar) translation — "the conventional translation
//! method of the built-in Simulink Coder" used by HCG for basic actors and
//! remainder data (paper §3, Algorithm 2 line 4), and by the baselines for
//! everything.

use crate::generator::{GenContext, GenError};
use hcg_model::op::ElemOp;
use hcg_model::{Actor, ActorKind, PortRef, Shape};
use hcg_vm::{BufferId, ElemRef, IndexExpr, ScalarOp, Stmt};

/// How per-element code is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopStyle {
    /// Arrays up to this length are fully unrolled into per-element
    /// statements (Simulink Coder's expression-folded style, Figure 2);
    /// longer arrays get a `for` loop (DFSynth's structured-loop style).
    pub unroll_limit: usize,
}

impl LoopStyle {
    /// Always loop (DFSynth style).
    pub const LOOPS: LoopStyle = LoopStyle { unroll_limit: 0 };
    /// Unroll small arrays (Simulink Coder style, Figure 2 of the paper
    /// unrolls 4 elements).
    pub const CODER: LoopStyle = LoopStyle { unroll_limit: 8 };
}

/// An operand for element-wise emission: a buffer plus whether it
/// broadcasts (scalar operand against array output).
#[derive(Debug, Clone, Copy)]
struct Operand {
    buf: BufferId,
    broadcast: bool,
}

impl Operand {
    fn at(&self, index: IndexExpr) -> ElemRef {
        ElemRef {
            buf: self.buf,
            index: if self.broadcast {
                IndexExpr::Const(0)
            } else {
                index
            },
        }
    }
}

/// Emit one element-wise statement group: `dst[i] = op(srcs[i]…)` for all
/// `len` elements, unrolled or looped per `style`.
fn emit_elementwise(
    ctx: &mut GenContext<'_>,
    op: ScalarOp,
    dst: BufferId,
    srcs: &[Operand],
    len: usize,
    style: LoopStyle,
) {
    let make = |index: IndexExpr, op: &ScalarOp| Stmt::Scalar {
        op: op.clone(),
        dst: ElemRef { buf: dst, index },
        srcs: srcs.iter().map(|s| s.at(index)).collect(),
    };
    if len <= style.unroll_limit.max(1) {
        for i in 0..len {
            ctx.prog.body.push(make(IndexExpr::Const(i), &op));
        }
    } else {
        ctx.prog.body.push(Stmt::Loop {
            start: 0,
            end: len,
            step: 1,
            body: vec![make(IndexExpr::Loop(0), &op)],
        });
    }
}

/// Conventionally translate one actor (anything except `Inport`,
/// `Constant`, `Outport` and `UnitDelay`, whose lowering lives in the
/// shared context / finish pass). Intensive actors are *not* handled here
/// — the caller chooses between Algorithm 1 (HCG) and a fixed general
/// implementation (baselines) and emits the `KernelCall` itself.
///
/// # Errors
///
/// Returns [`GenError`] for unconnected inputs or unsupported kinds.
pub fn emit_conventional(
    ctx: &mut GenContext<'_>,
    actor: &Actor,
    style: LoopStyle,
) -> Result<(), GenError> {
    let id = actor.id;
    let out_ty = ctx.types.output(id, 0);
    let len = out_ty.len();
    let dst = ctx.actor_buffer(id);
    let operand = |ctx: &GenContext<'_>, port: usize| -> Result<Operand, GenError> {
        let src = ctx.model.driver(PortRef::new(id, port)).ok_or_else(|| {
            GenError::Internal(format!("unconnected input {port} of {}", actor.name))
        })?;
        let src_ty = ctx.types.output(src.actor, src.port);
        Ok(Operand {
            buf: ctx.actor_buffer(src.actor),
            broadcast: src_ty.shape == Shape::Scalar && out_ty.shape != Shape::Scalar,
        })
    };

    let amount = actor.param("amount").and_then(|p| p.as_int()).unwrap_or(0) as u32;
    use ActorKind::*;
    let op: ScalarOp = match actor.kind {
        Gain => {
            // Materialise the gain factor as a one-element constant and
            // multiply by it.
            let g = actor
                .param("gain")
                .and_then(|p| p.as_float())
                .ok_or_else(|| GenError::Internal(format!("{} missing gain", actor.name)))?;
            let gbuf = ctx.prog.add_buffer(
                format!("{}_gain", crate::generator::sanitize(&actor.name)),
                hcg_model::SignalType::scalar(out_ty.dtype),
                hcg_vm::BufferKind::Const,
                Some(vec![g]),
            );
            let srcs = [
                operand(ctx, 0)?,
                Operand {
                    buf: gbuf,
                    broadcast: true,
                },
            ];
            emit_elementwise(ctx, ScalarOp::Elem(ElemOp::Mul), dst, &srcs, len, style);
            return Ok(());
        }
        Saturate => {
            let lo = actor
                .param("min")
                .and_then(|p| p.as_float())
                .unwrap_or(f64::MIN);
            let hi = actor
                .param("max")
                .and_then(|p| p.as_float())
                .unwrap_or(f64::MAX);
            ScalarOp::Clamp { lo, hi }
        }
        Cast => ScalarOp::Cast,
        Switch => ScalarOp::Select,
        UnitDelay | Inport | Outport | Constant => {
            return Err(GenError::Internal(format!(
                "{} is lowered by the shared context, not conventional translation",
                actor.kind
            )));
        }
        kind if kind.class() == hcg_model::KindClass::Intensive => {
            return Err(GenError::Internal(format!(
                "intensive actor {} must be lowered via a kernel call",
                actor.name
            )));
        }
        kind => {
            let op = ElemOp::from_actor(kind, amount)
                .ok_or_else(|| GenError::Internal(format!("no scalar semantics for {kind}")))?;
            ScalarOp::Elem(op)
        }
    };

    let n_in = actor.kind.input_count();
    let mut srcs = Vec::with_capacity(n_in);
    for p in 0..n_in {
        srcs.push(operand(ctx, p)?);
    }
    emit_elementwise(ctx, op, dst, &srcs, len, style);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_isa::Arch;
    use hcg_kernels::CodeLibrary;
    use hcg_model::{library, DataType, ModelBuilder, SignalType, Tensor};
    use hcg_vm::Machine;

    /// Lower a whole model conventionally (intensive actors via the general
    /// kernel) — a miniature generator used by these tests.
    fn lower_all(model: &hcg_model::Model, style: LoopStyle) -> hcg_vm::Program {
        let mut ctx = GenContext::new(model, Arch::Neon128, "conv-test").unwrap();
        for idx in 0..ctx.schedule.order.len() {
            let aid = ctx.schedule.order[idx];
            let actor = ctx.model.actor(aid).clone();
            match actor.kind {
                ActorKind::Inport
                | ActorKind::Outport
                | ActorKind::Constant
                | ActorKind::UnitDelay => {}
                k if k.class() == hcg_model::KindClass::Intensive => {
                    let lib = CodeLibrary::new();
                    let general = lib.general_for(k).unwrap();
                    let inputs: Vec<_> = (0..k.input_count())
                        .map(|p| ctx.value_buffer(hcg_model::PortRef::new(aid, p)).unwrap())
                        .collect();
                    let output = ctx.actor_buffer(aid);
                    ctx.prog.body.push(Stmt::KernelCall {
                        actor: k,
                        impl_name: general.name.into(),
                        inputs,
                        output,
                    });
                }
                _ => emit_conventional(&mut ctx, &actor, style).unwrap(),
            }
        }
        ctx.finish()
    }

    #[test]
    fn unrolled_vs_looped_same_values() {
        let m = library::fig4_model();
        let lib = CodeLibrary::new();
        let unrolled = lower_all(&m, LoopStyle::CODER);
        let looped = lower_all(&m, LoopStyle::LOOPS);
        assert!(unrolled.stmt_stats().loops < looped.stmt_stats().loops);

        let ty = SignalType::vector(DataType::I32, 4);
        let mk = |vals: Vec<i64>| Tensor::from_i64(ty, vals).unwrap();
        for prog in [&unrolled, &looped] {
            let mut mach = Machine::new(prog, &lib);
            mach.set_input("a", &mk(vec![1, 2, 3, 4])).unwrap();
            mach.set_input("b", &mk(vec![10, 20, 30, 40])).unwrap();
            mach.set_input("c", &mk(vec![5, 5, 5, 5])).unwrap();
            mach.set_input("d", &mk(vec![2, 2, 2, 2])).unwrap();
            mach.step().unwrap();
            // s = b - c; Shr_out = (a + s) >> 1; Add_out = s + s*d.
            let s = [5i64, 15, 25, 35];
            let shr: Vec<i64> = s
                .iter()
                .zip([1, 2, 3, 4])
                .map(|(s, a)| (a + s) >> 1)
                .collect();
            let add: Vec<i64> = s.iter().map(|s| s + s * 2).collect();
            assert_eq!(mach.read_buffer("Shr_out").unwrap().as_i64(), shr);
            assert_eq!(mach.read_buffer("Add_out").unwrap().as_i64(), add);
        }
    }

    #[test]
    fn gain_uses_constant_multiplier() {
        let mut b = ModelBuilder::new("g");
        let x = b.inport("x", SignalType::vector(DataType::F32, 8));
        let g = b.gain("scale", 2.5);
        let o = b.outport("o");
        b.connect(x, 0, g, 0);
        b.connect(g, 0, o, 0);
        let m = b.build().unwrap();
        let prog = lower_all(&m, LoopStyle::LOOPS);
        let lib = CodeLibrary::new();
        let mut mach = Machine::new(&prog, &lib);
        let ty = SignalType::vector(DataType::F32, 8);
        mach.set_input("x", &Tensor::from_f64(ty, vec![2.0; 8]).unwrap())
            .unwrap();
        mach.step().unwrap();
        assert_eq!(mach.read_buffer("o").unwrap().as_f64(), vec![5.0; 8]);
    }

    #[test]
    fn lowpass_steps_track_reference_recurrence() {
        let m = library::lowpass_model(8);
        let prog = lower_all(&m, LoopStyle::LOOPS);
        let lib = CodeLibrary::new();
        let mut mach = Machine::new(&prog, &lib);
        let ty = SignalType::vector(DataType::F32, 8);
        let mut y = vec![0.0f64; 8];
        for step in 0..5 {
            let x = vec![(step as f64) + 1.0; 8];
            mach.set_input("x", &Tensor::from_f64(ty, x.clone()).unwrap())
                .unwrap();
            mach.step().unwrap();
            for (yy, xx) in y.iter_mut().zip(&x) {
                // f32 storage rounds alpha; compare loosely.
                *yy += 0.2 * (xx - *yy);
            }
            let got = mach.read_buffer("y").unwrap().as_f64();
            for (g, e) in got.iter().zip(&y) {
                assert!((g - e).abs() < 1e-3, "step {step}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn broadcast_scalar_second_operand() {
        let mut b = ModelBuilder::new("bc");
        let x = b.inport("x", SignalType::vector(DataType::I32, 6));
        let k = b.inport("k", SignalType::scalar(DataType::I32));
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("o");
        b.connect(x, 0, add, 0);
        b.connect(k, 0, add, 1);
        b.connect(add, 0, o, 0);
        let m = b.build().unwrap();
        let prog = lower_all(&m, LoopStyle::LOOPS);
        let lib = CodeLibrary::new();
        let mut mach = Machine::new(&prog, &lib);
        mach.set_input(
            "x",
            &Tensor::from_i64(SignalType::vector(DataType::I32, 6), vec![1, 2, 3, 4, 5, 6])
                .unwrap(),
        )
        .unwrap();
        mach.set_input(
            "k",
            &Tensor::from_i64(SignalType::scalar(DataType::I32), vec![100]).unwrap(),
        )
        .unwrap();
        mach.step().unwrap();
        assert_eq!(
            mach.read_buffer("o").unwrap().as_i64(),
            vec![101, 102, 103, 104, 105, 106]
        );
    }
}
