//! The HCG code generator: the full pipeline of paper Figure 3 — model
//! parse → actor dispatch → SIMD instruction synthesis (Algorithm 1 for
//! intensive actors, Algorithm 2 for batch actors) → code composition.

use crate::batch::{
    emit_region_plan, form_regions_indexed, plan_region_indexed, BatchOptions, BatchRegion,
    MatchOrder, RegionPlan,
};
use crate::conventional::{emit_conventional, LoopStyle};
use crate::dispatch::Dispatch;
use crate::generator::{CodeGenerator, GenContext, GenError};
use crate::intensive::emit_intensive;
use crate::pass::{dispatch_pass, Pass};
use crate::search::MappingStrategy;
use hcg_isa::{sets, Arch, CostOverlay, InstrIndex, InstrSet};
use hcg_kernels::{Autotuner, CodeLibrary, Meter};
use hcg_model::ActorKind;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeSet;

/// Configuration of the HCG generator.
#[derive(Debug, Clone)]
pub struct HcgOptions {
    /// Minimum region size to vectorise (see [`BatchOptions::simd_threshold`]).
    pub simd_threshold: usize,
    /// Candidate ordering during Algorithm 2 matching (ablation knob).
    pub match_order: MatchOrder,
    /// Cost measurement for Algorithm 1.
    pub meter: Meter,
    /// Loop style for conventionally translated actors.
    pub fallback_style: LoopStyle,
    /// Override the built-in instruction set (e.g. one loaded from a custom
    /// `.isa` file). `None` uses [`sets::builtin`] for the target.
    pub instr_set: Option<InstrSet>,
    /// How Algorithm 2 tiles each region with instructions: the paper's
    /// greedy pass, or the opt-in beam search (see
    /// [`crate::MappingSearch`]).
    pub mapping: MappingStrategy,
    /// Profile-calibrated cost overrides patched over the instruction set
    /// before mapping (see [`hcg_isa::CostCalibrator`]). `None` keeps the
    /// `.isa` table costs.
    pub cost_overlay: Option<CostOverlay>,
}

impl Default for HcgOptions {
    fn default() -> Self {
        HcgOptions {
            simd_threshold: 1,
            match_order: MatchOrder::LargestFirst,
            meter: Meter::OpCount,
            fallback_style: LoopStyle::CODER,
            instr_set: None,
            mapping: MappingStrategy::Greedy,
            cost_overlay: None,
        }
    }
}

/// The HCG generator (the paper's primary contribution).
///
/// # Examples
///
/// ```
/// use hcg_core::{CodeGenerator, HcgGen};
/// use hcg_isa::Arch;
/// use hcg_model::library;
///
/// # fn main() -> Result<(), hcg_core::GenError> {
/// let model = library::fig4_model();
/// let gen = HcgGen::new();
/// let prog = gen.generate(&model, Arch::Neon128)?;
/// // The Fig. 4 model maps to exactly three SIMD instructions (Listing 1).
/// assert_eq!(prog.stmt_stats().vops, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HcgGen {
    /// Generator configuration.
    pub options: HcgOptions,
    lib: CodeLibrary,
    tuner: RefCell<Autotuner>,
}

impl Default for HcgGen {
    fn default() -> Self {
        Self::new()
    }
}

impl HcgGen {
    /// An HCG generator with default options.
    pub fn new() -> Self {
        Self::with_options(HcgOptions::default())
    }

    /// An HCG generator with explicit options.
    pub fn with_options(options: HcgOptions) -> Self {
        let tuner = Autotuner::new(options.meter);
        HcgGen {
            options,
            lib: CodeLibrary::new(),
            tuner: RefCell::new(tuner),
        }
    }

    /// The kernel library used for intensive actors.
    pub fn library(&self) -> &CodeLibrary {
        &self.lib
    }

    /// Number of remembered Algorithm-1 selections (grows across
    /// `generate` calls — the paper's quick-search history).
    pub fn history_len(&self) -> usize {
        self.tuner.borrow().history_len()
    }

    /// Export the Algorithm-1 selection history (see
    /// [`Autotuner::history_to_text`]).
    pub fn history_text(&self) -> String {
        self.tuner.borrow().history_to_text()
    }

    /// Import a previously exported selection history.
    pub fn load_history(&self, text: &str) {
        self.tuner.borrow_mut().load_history_text(text);
    }

    /// The instruction set and index for a target, shared from the
    /// process-wide statics when no override is configured (one `.isa`
    /// parse and one index build per arch per process, not per compile).
    pub(crate) fn instr_set_indexed(
        &self,
        arch: Arch,
    ) -> (Cow<'static, InstrSet>, Cow<'static, InstrIndex>) {
        match (&self.options.instr_set, &self.options.cost_overlay) {
            // A custom set is private to this generator: patch and index a
            // copy (overlays over custom sets can't share process statics).
            (Some(set), overlay) => {
                let set = match overlay {
                    Some(ov) => ov.apply(set),
                    None => set.clone(),
                };
                let index = InstrIndex::build(&set);
                (Cow::Owned(set), Cow::Owned(index))
            }
            // Builtin base: the process-wide registry interns one patched
            // set + index per (arch, overlay) key, so calibrated fleet jobs
            // and service requests stop re-parsing/re-bucketing per compile.
            (None, overlay) => {
                let (set, index) = sets::shared_indexed(arch, overlay.as_ref());
                (Cow::Borrowed(set), Cow::Borrowed(index))
            }
        }
    }

    pub(crate) fn batch_options(&self) -> BatchOptions {
        BatchOptions {
            simd_threshold: self.options.simd_threshold,
            fallback_style: self.options.fallback_style,
            match_order: self.options.match_order,
            mapping: self.options.mapping,
        }
    }

    /// The Algorithm-1 autotuner (quick-search history) shared by the
    /// compose pass and the incremental session.
    pub(crate) fn tuner(&self) -> &RefCell<Autotuner> {
        &self.tuner
    }
}

/// The code-composition stage shared by the `compose` pass and
/// [`crate::EditSession`]: walk the schedule, emit each region once at its
/// first member's position, dispatch everything else to the intensive or
/// conventional emitters, and tag every statement with its origin. Returns
/// the number of kernel calls emitted.
pub(crate) fn compose_into(
    ctx: &mut GenContext<'_>,
    dispatch: &[Dispatch],
    regions: &[BatchRegion],
    plans: &[RegionPlan],
    lib: &CodeLibrary,
    tuner: &mut Autotuner,
    fallback_style: LoopStyle,
) -> Result<u64, GenError> {
    if regions.len() != plans.len() {
        return Err(GenError::Internal("region/plan count mismatch".into()));
    }
    let mut kernel_calls = 0u64;

    // Which region does each actor belong to? A region is emitted once, at
    // its first member's schedule position.
    let mut region_of = vec![usize::MAX; ctx.model.actors.len()];
    for (ri, r) in regions.iter().enumerate() {
        for &a in &r.members {
            region_of[a.0] = ri;
        }
    }
    let mut emitted_regions: BTreeSet<usize> = BTreeSet::new();

    for idx in 0..ctx.schedule.order.len() {
        let aid = ctx.schedule.order[idx];
        let actor = ctx.model.actor(aid).clone();
        match actor.kind {
            ActorKind::Inport | ActorKind::Outport | ActorKind::Constant | ActorKind::UnitDelay => {
                continue
            }
            _ => {}
        }
        let ri = region_of[aid.0];
        if ri != usize::MAX {
            if emitted_regions.insert(ri) {
                ctx.set_origin(hcg_vm::Origin::region(actor.name.clone(), ri));
                emit_region_plan(ctx, &regions[ri], &plans[ri])?;
            }
            continue;
        }
        match &dispatch[aid.0] {
            Dispatch::Intensive { size } => {
                // Intensive kernels are HCG-optimised regions of one actor:
                // give them region provenance (indices after the batch
                // regions) so the profiler's per-region breakdown covers
                // them — a DCT/FFT model is otherwise all-intensive and
                // would profile with an empty regions table.
                let region_index = regions.len() + kernel_calls as usize;
                ctx.set_origin(hcg_vm::Origin::region(actor.name.clone(), region_index));
                emit_intensive(ctx, &actor, size, lib, tuner)?;
                kernel_calls += 1;
            }
            _ => {
                ctx.set_origin(hcg_vm::Origin::actor(actor.name.clone()));
                emit_conventional(ctx, &actor, fallback_style)?;
            }
        }
    }
    Ok(kernel_calls)
}

impl CodeGenerator for HcgGen {
    fn name(&self) -> &'static str {
        "hcg"
    }

    fn as_hcg(&self) -> Option<&HcgGen> {
        Some(self)
    }

    /// The paper's Figure 3 pipeline as explicit stages:
    /// `dispatch` → `region-formation` → `instruction-mapping` → `compose`.
    fn passes(&self) -> Vec<Pass<'_>> {
        vec![
            dispatch_pass(),
            Pass::new("region-formation", move |p| {
                let (set, index) = self.instr_set_indexed(p.arch());
                let regions =
                    form_regions_indexed(p.building()?, p.dispatch_slice()?, &set, &index);
                p.counters.regions_formed += regions.len() as u64;
                p.regions = Some(regions);
                p.instr_set = Some(set);
                p.instr_index = Some(index);
                Ok(())
            }),
            Pass::new("instruction-mapping", move |p| {
                let batch_opts = self.batch_options();
                let mut plans = Vec::new();
                {
                    let ctx = p.building()?;
                    let set = p
                        .instr_set
                        .as_deref()
                        .ok_or_else(|| GenError::Internal("no instruction set".into()))?;
                    let index = p
                        .instr_index
                        .as_deref()
                        .ok_or_else(|| GenError::Internal("no instruction index".into()))?;
                    let regions = p
                        .regions
                        .as_ref()
                        .ok_or_else(|| GenError::Internal("no regions formed".into()))?;
                    for region in regions {
                        plans.push((
                            region.members.len(),
                            plan_region_indexed(ctx, region, set, index, batch_opts)?,
                        ));
                    }
                }
                for (members, plan) in &plans {
                    if let Some(steps) = plan.simd_step_count() {
                        p.counters.instructions_selected += steps as u64;
                        p.counters.nodes_fused += members.saturating_sub(steps) as u64;
                    }
                }
                p.plans = Some(plans.into_iter().map(|(_, plan)| plan).collect());
                Ok(())
            }),
            Pass::new("compose", move |p| {
                let dispatch = p.take_dispatch()?;
                let regions = p.regions.take().unwrap_or_default();
                let plans = p.plans.take().unwrap_or_default();
                let kernel_calls = {
                    let mut tuner = self.tuner.borrow_mut();
                    let ctx = p.building_mut()?;
                    compose_into(
                        ctx,
                        &dispatch,
                        &regions,
                        &plans,
                        &self.lib,
                        &mut tuner,
                        self.options.fallback_style,
                    )?
                };
                p.counters.kernel_calls += kernel_calls;
                p.finish()
            }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::library;
    use hcg_vm::Stmt;

    #[test]
    fn fig4_generates_listing1() {
        let m = library::fig4_model();
        let gen = HcgGen::new();
        let p = gen.generate(&m, Arch::Neon128).unwrap();
        let instrs: Vec<&str> = p
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::VOp { instr, .. } => Some(instr.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(instrs, ["vsubq_s32", "vhaddq_s32", "vmlaq_s32"]);
    }

    #[test]
    fn all_paper_benchmarks_generate_on_all_archs() {
        let gen = HcgGen::new();
        for m in library::paper_benchmarks() {
            for arch in Arch::ALL {
                let p = gen
                    .generate(&m, arch)
                    .unwrap_or_else(|e| panic!("{} on {arch}: {e}", m.name));
                assert!(!p.body.is_empty(), "{} on {arch}", m.name);
            }
        }
    }

    #[test]
    fn history_accumulates_across_generates() {
        let gen = HcgGen::new();
        let m = library::fft_model(1024);
        gen.generate(&m, Arch::Neon128).unwrap();
        let after_first = gen.history_len();
        assert_eq!(after_first, 1);
        // Second generation of the same model hits the history (no growth).
        gen.generate(&m, Arch::Avx256).unwrap();
        assert_eq!(gen.history_len(), 1);
        // A different scale adds an entry.
        gen.generate(&library::fft_model(256), Arch::Neon128)
            .unwrap();
        assert_eq!(gen.history_len(), 2);
    }

    #[test]
    fn threshold_option_suppresses_simd() {
        let m = library::single_batch_model(1024);
        let default_gen = HcgGen::new();
        let p1 = default_gen.generate(&m, Arch::Neon128).unwrap();
        assert!(p1.stmt_stats().vops > 0);

        let opts = HcgOptions {
            simd_threshold: 3,
            ..HcgOptions::default()
        };
        let conservative = HcgGen::with_options(opts);
        let p2 = conservative.generate(&m, Arch::Neon128).unwrap();
        assert_eq!(p2.stmt_stats().vops, 0);
    }

    #[test]
    fn fir_uses_simd_on_every_arch() {
        let m = library::fir_model(1024, 4);
        let gen = HcgGen::new();
        for arch in Arch::ALL {
            let p = gen.generate(&m, arch).unwrap();
            assert!(p.stmt_stats().vops > 0, "{arch}");
        }
    }

    #[test]
    fn custom_instruction_set_override() {
        use hcg_isa::parse::instr_set_from_text;
        // A set with only vector add: the Fig.4 model's Sub/Mul/Shr don't
        // qualify, so regions exclude them (conventional), and only Adds
        // vectorise.
        let tiny = instr_set_from_text(
            "set tiny arch neon128\nGraph: Add, i32, 4, I1, I2, O1 ; Code: O1 = vaddq_s32(I1, I2);\n",
        )
        .unwrap();
        let gen = HcgGen::with_options(HcgOptions {
            instr_set: Some(tiny),
            ..HcgOptions::default()
        });
        let p = gen.generate(&library::fig4_model(), Arch::Neon128).unwrap();
        let stats = p.stmt_stats();
        assert!(stats.vops >= 1);
        assert!(stats.scalar_ops > 0);
    }
}
