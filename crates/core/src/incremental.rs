//! [`EditSession`]: incremental recompilation with dirty-region splicing.
//!
//! A [`CompileSession`](crate::CompileSession) caches front-end artifacts
//! for *one* model and drops everything when the model changes. An
//! `EditSession` instead accepts a stream of [`ModelDelta`]s and, after
//! each edit, recompiles only what the edit can affect:
//!
//! * **diff** — [`ModelDelta::touched_actors`] names the directly edited
//!   actors; [`downstream_closure`] extends that to every actor whose
//!   value can observe the change (flowing through `UnitDelay` state).
//!   Everything else is *clean*.
//! * **invalidate** — per-actor front-end artifacts for clean actors are
//!   reused: output types seed [`Model::infer_types_seeded`], dispatch
//!   classes are replayed from the last good compile, and the schedule
//!   survives any non-structural delta.
//! * **splice** — batch-region *plans* (the expensive Algorithm-2
//!   instruction mapping) are cached by a structural region signature in
//!   a per-arch [`PlanCache`]; regions untouched by the dirty set admit
//!   their cached step list and only dirty regions are re-mapped. The
//!   whole program is then re-emitted deterministically, so the result is
//!   byte-identical to a from-scratch compile *by construction* — the
//!   cache only short-circuits work whose output is provably unchanged.
//!
//! Counters land in [`IncrementalStats`] and the global
//! [`MetricsRegistry`] (`incremental.*`); each phase opens an
//! `incremental` span for the trace timeline.

use crate::batch::{form_regions_probed, plan_region_cached, plan_region_indexed, PlanCache};
use crate::dispatch::{classify, Dispatch};
use crate::generator::{debug_lint, CodeGenerator, GenContext, GenError};
use crate::hcg::{compose_into, HcgGen};
use crate::pass::{PassManager, PipelineCtx};
use hcg_isa::Arch;
use hcg_kernels::{Autotuner, Meter};
use hcg_model::delta::downstream_closure;
use hcg_model::op::ElemOp;
use hcg_model::schedule::{schedule, Schedule};
use hcg_model::{ActorId, DataType, FrontEnd, Model, ModelDelta, SignalType};
use hcg_obs::MetricsRegistry;
use hcg_vm::Program;
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};

/// Work-avoidance counters for one [`EditSession`].
///
/// `regions_admitted` / `regions_invalidated` partition every batch region
/// seen by [`EditSession::generate`] since the last edit by whether its
/// read/write effect set intersects the dirty actors; `plans_spliced`
/// counts regions whose instruction mapping actually re-ran (a cache miss
/// — admitted regions and isomorphic dirty regions hit the plan cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Deltas applied via [`EditSession::apply_delta`].
    pub edits_applied: u64,
    /// Regions whose effects avoid the dirty set (plan reusable).
    pub regions_admitted: u64,
    /// Regions whose effects intersect the dirty set.
    pub regions_invalidated: u64,
    /// Regions whose plan was re-mapped and spliced into the program.
    pub plans_spliced: u64,
    /// Plan-cache hits across all generates.
    pub plan_hits: u64,
    /// Plan-cache misses across all generates.
    pub plan_misses: u64,
    /// Actor output types seeded into inference instead of recomputed.
    pub types_seeded: u64,
    /// Schedules reused across a non-structural delta.
    pub schedules_reused: u64,
    /// Per-actor dispatch classifications replayed from the last compile.
    pub dispatch_reused: u64,
    /// Algorithm-1 kernel selections adopted from the session history
    /// instead of re-measured by quick-search.
    pub kernel_selections_reused: u64,
}

/// An editable compilation session: apply [`ModelDelta`]s and recompile
/// incrementally, reusing per-actor front-end artifacts and per-region
/// instruction-mapping plans that the edit provably cannot affect.
///
/// # Examples
///
/// ```
/// use hcg_core::emit::to_c_source;
/// use hcg_core::{EditSession, HcgGen};
/// use hcg_isa::Arch;
/// use hcg_model::delta::EditOp;
/// use hcg_model::{library, ModelDelta, Param};
///
/// # fn main() -> Result<(), hcg_core::GenError> {
/// let mut session = EditSession::new(library::fig4_model());
/// let hcg = HcgGen::new();
/// let before = session.generate(&hcg, Arch::Neon128)?;
/// session.apply_delta(&ModelDelta::single(EditOp::SetParam {
///     name: "Shr".into(),
///     param: "amount".into(),
///     value: Param::Int(2),
/// }))?;
/// let after = session.generate(&hcg, Arch::Neon128)?;
/// assert_ne!(to_c_source(&before), to_c_source(&after));
/// assert!(session.stats().types_seeded > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EditSession {
    model: Model,
    /// Front end for the *current* model; `None` after an edit.
    front: Option<Result<FrontEnd, GenError>>,
    /// Dispatch classes for the current model; valid iff `front` is `Ok`.
    dispatch: Option<Vec<Dispatch>>,
    /// Per-actor output types from the last *successful* front end, keyed
    /// by name (names are stable across edits; `ActorId`s are not).
    known_types: BTreeMap<String, SignalType>,
    /// Per-actor dispatch classes from the last successful compile.
    known_dispatch: BTreeMap<String, Dispatch>,
    /// Schedule of the last successful front end; survives edits until a
    /// structural delta invalidates it.
    prev_schedule: Option<Schedule>,
    /// Actors dirtied since the last successful front-end rebuild.
    dirty: BTreeSet<String>,
    /// The dirty set consumed by the last rebuild — what `generate`
    /// charges region invalidation against.
    last_dirty: BTreeSet<String>,
    /// Batch-admission probe results per arch (lane widths differ).
    probe_memo: BTreeMap<Arch, BTreeMap<(ElemOp, DataType), bool>>,
    /// Region-plan caches per arch.
    plan_caches: BTreeMap<Arch, PlanCache>,
    /// Algorithm-1 selection history persisted across edits. Kernel
    /// selection is keyed by `(actor kind, dtype, size)` — untouched by
    /// any edit that leaves those alone — and quick-search *executes*
    /// candidate kernels to cost them, which dominates compile time for
    /// intensive models. Only maintained under the deterministic
    /// [`Meter::OpCount`]: a wall-clock selection replayed from history
    /// could diverge from what a fresh compile would measure.
    tuner: Option<Autotuner>,
    /// Finished programs for the current model, keyed by `generator|arch`.
    programs: BTreeMap<String, Program>,
    stats: IncrementalStats,
}

impl EditSession {
    /// A session owning `model`. Nothing is computed until first use.
    pub fn new(model: Model) -> Self {
        EditSession {
            model,
            front: None,
            dispatch: None,
            known_types: BTreeMap::new(),
            known_dispatch: BTreeMap::new(),
            prev_schedule: None,
            dirty: BTreeSet::new(),
            last_dirty: BTreeSet::new(),
            probe_memo: BTreeMap::new(),
            plan_caches: BTreeMap::new(),
            tuner: None,
            programs: BTreeMap::new(),
            stats: IncrementalStats::default(),
        }
    }

    /// The session's current model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Work-avoidance counters accumulated so far.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Apply a delta: update the model, mark the downstream closure of the
    /// touched actors dirty, and drop exactly the artifacts the edit can
    /// affect (finished programs always; the schedule only for structural
    /// deltas; per-actor types and dispatch stay for clean actors).
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] when an op fails to apply (unknown or
    /// duplicate actor name); the session is left unchanged in that case.
    pub fn apply_delta(&mut self, delta: &ModelDelta) -> Result<(), GenError> {
        let _span = hcg_obs::span("incremental", "diff");
        let touched = delta.touched_actors(&self.model);
        let next = delta.apply(&self.model)?;
        self.dirty.extend(downstream_closure(&next, &touched));
        if delta.structural() {
            self.prev_schedule = None;
        }
        self.model = next;
        self.front = None;
        self.dispatch = None;
        self.programs.clear();
        self.stats.edits_applied += 1;
        MetricsRegistry::global().counter_add("incremental.edits", 1);
        Ok(())
    }

    /// Validate the current model through the incremental front end.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] when the model is invalid.
    pub fn validate(&mut self) -> Result<(), GenError> {
        self.ensure_front()
    }

    /// The front end for the current model, rebuilt incrementally.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] when the model is invalid.
    pub fn front_end(&mut self) -> Result<&FrontEnd, GenError> {
        self.ensure_front()?;
        match self.front.as_ref() {
            Some(Ok(fe)) => Ok(fe),
            Some(Err(e)) => Err(e.clone()),
            None => unreachable!("ensure_front populates front"),
        }
    }

    /// Rebuild the front end for the current model, reusing clean-actor
    /// artifacts from the last successful rebuild.
    fn ensure_front(&mut self) -> Result<(), GenError> {
        if let Some(front) = &self.front {
            return front.as_ref().map(|_| ()).map_err(Clone::clone);
        }
        let _span = hcg_obs::span("incremental", "invalidate");

        // Seed inference with the known output types of clean actors.
        let seeds: BTreeMap<String, SignalType> = self
            .known_types
            .iter()
            .filter(|(name, _)| !self.dirty.contains(*name))
            .map(|(name, ty)| (name.clone(), *ty))
            .collect();
        let types = match self.model.infer_types_seeded(&seeds) {
            Ok(t) => t,
            Err(e) => return self.fail(e.into()),
        };
        self.stats.types_seeded += seeds.len() as u64;

        // A schedule survives any non-structural delta; `apply_delta`
        // cleared `prev_schedule` otherwise.
        let sched = match self.prev_schedule.take() {
            Some(s) => {
                self.stats.schedules_reused += 1;
                s
            }
            None => match schedule(&self.model) {
                Ok(s) => s,
                Err(e) => return self.fail(e.into()),
            },
        };

        // Dispatch is per-actor: clean actors replay their last class
        // (their drivers and types are unchanged by construction).
        let mut dispatch = Vec::with_capacity(self.model.actors.len());
        for actor in &self.model.actors {
            if !self.dirty.contains(&actor.name) {
                if let Some(d) = self.known_dispatch.get(&actor.name) {
                    self.stats.dispatch_reused += 1;
                    dispatch.push(d.clone());
                    continue;
                }
            }
            dispatch.push(classify(&self.model, &types, actor));
        }

        // Success: refresh the per-actor snapshots and retire the dirty
        // set (generate still charges invalidation against it).
        self.known_types = self
            .model
            .actors
            .iter()
            .filter(|a| a.kind.output_count() > 0)
            .map(|a| (a.name.clone(), types.output(a.id, 0)))
            .collect();
        self.known_dispatch = self
            .model
            .actors
            .iter()
            .zip(&dispatch)
            .map(|(a, d)| (a.name.clone(), d.clone()))
            .collect();
        self.prev_schedule = Some(sched.clone());
        self.last_dirty = std::mem::take(&mut self.dirty);
        self.front = Some(Ok(FrontEnd {
            types,
            schedule: sched,
        }));
        self.dispatch = Some(dispatch);
        Ok(())
    }

    /// Record a front-end failure for the current model state. The
    /// per-actor snapshots describe the last *good* model and are kept;
    /// the dirty set stays accumulated so a fixing edit rebuilds exactly
    /// what the whole invalid episode touched.
    fn fail(&mut self, e: GenError) -> Result<(), GenError> {
        self.front = Some(Err(e.clone()));
        self.dispatch = None;
        Err(e)
    }

    /// Generate code for the current model, splicing cached region plans
    /// for everything the edits since the last compile cannot affect. The
    /// output is byte-identical to a from-scratch compile of the same
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when the model is invalid or synthesis fails.
    pub fn generate(
        &mut self,
        generator: &dyn CodeGenerator,
        arch: Arch,
    ) -> Result<Program, GenError> {
        let key = format!("{}|{arch}", generator.name());
        if let Some(prog) = self.programs.get(&key) {
            return Ok(prog.clone());
        }
        self.ensure_front()?;
        let fe = match self.front.as_ref() {
            Some(Ok(fe)) => fe,
            _ => unreachable!("ensure_front succeeded"),
        };
        let dispatch = self.dispatch.as_ref().expect("dispatch set with front");

        let prog = match generator.as_hcg() {
            Some(hcg) => {
                let mut tuner = hcg.tuner().borrow_mut();
                // Session history may only flow into a tuner that (a)
                // measures deterministically and (b) has no decisions of
                // its own yet — a caller-loaded history must win, and the
                // session must never memorise selections it cannot prove
                // a fresh compile would repeat.
                let reuse = hcg.options.meter == Meter::OpCount && tuner.history_len() == 0;
                if reuse {
                    if let Some(saved) = &self.tuner {
                        tuner.adopt_history(saved);
                        self.stats.kernel_selections_reused += saved.history_len() as u64;
                        MetricsRegistry::global().counter_add(
                            "incremental.kernel_selections_reused",
                            saved.history_len() as u64,
                        );
                    }
                }
                let prog = generate_hcg(
                    &self.model,
                    fe,
                    dispatch,
                    hcg,
                    arch,
                    &mut tuner,
                    self.probe_memo.entry(arch).or_default(),
                    self.plan_caches.entry(arch).or_default(),
                    &self.last_dirty,
                    &mut self.stats,
                )?;
                if reuse {
                    self.tuner = Some(tuner.clone());
                }
                prog
            }
            None => {
                // Baseline generators are cheap (no instruction mapping):
                // run the standard pipeline over the shared artifacts,
                // exactly like `CompileSession`.
                let mut ctx = PipelineCtx::with_artifacts(
                    &self.model,
                    &fe.types,
                    &fe.schedule,
                    arch,
                    generator.name(),
                )?;
                ctx.dispatch = Some(Cow::Borrowed(dispatch));
                PassManager::new(generator.passes()).run(ctx)?.0
            }
        };
        self.programs.insert(key, prog.clone());
        Ok(prog)
    }
}

/// The incremental HCG back end: form regions (memoised admission
/// probes), splice cached plans for clean regions, re-map dirty ones, and
/// re-emit the whole program deterministically.
#[allow(clippy::too_many_arguments)]
fn generate_hcg(
    model: &Model,
    fe: &FrontEnd,
    dispatch: &[Dispatch],
    hcg: &HcgGen,
    arch: Arch,
    tuner: &mut Autotuner,
    probes: &mut BTreeMap<(ElemOp, DataType), bool>,
    cache: &mut PlanCache,
    dirty: &BTreeSet<String>,
    stats: &mut IncrementalStats,
) -> Result<Program, GenError> {
    let _span = hcg_obs::span("incremental", "splice");
    // A configured instruction-set override invalidates both memos (they
    // are keyed for the builtin sets only): fall back to fresh probes and
    // uncached mapping.
    let custom = hcg.options.instr_set.is_some();
    let (set, index) = hcg.instr_set_indexed(arch);
    let mut ctx = GenContext::with_artifacts(model, &fe.types, &fe.schedule, arch, hcg.name())?;

    let mut fresh_probes = BTreeMap::new();
    let regions = form_regions_probed(
        &ctx,
        dispatch,
        &set,
        &index,
        if custom { &mut fresh_probes } else { probes },
    );

    let dirty_ids: BTreeSet<ActorId> = model
        .actors
        .iter()
        .filter(|a| dirty.contains(&a.name))
        .map(|a| a.id)
        .collect();

    let options = hcg.batch_options();
    let (mut admitted, mut invalidated, mut spliced) = (0u64, 0u64, 0u64);
    let mut plans = Vec::with_capacity(regions.len());
    for region in &regions {
        if region.touches(&dirty_ids) {
            invalidated += 1;
        } else {
            admitted += 1;
        }
        let plan = if custom {
            plan_region_indexed(&ctx, region, &set, &index, options)?
        } else {
            let (hits, misses) = (cache.hits, cache.misses);
            let plan = plan_region_cached(&ctx, region, &set, &index, options, cache)?;
            if cache.misses > misses {
                spliced += 1;
            }
            stats.plan_hits += cache.hits - hits;
            stats.plan_misses += cache.misses - misses;
            plan
        };
        plans.push(plan);
    }

    compose_into(
        &mut ctx,
        dispatch,
        &regions,
        &plans,
        hcg.library(),
        tuner,
        hcg.options.fallback_style,
    )?;

    stats.regions_admitted += admitted;
    stats.regions_invalidated += invalidated;
    stats.plans_spliced += spliced;
    let metrics = MetricsRegistry::global();
    metrics.counter_add("incremental.regions_admitted", admitted);
    metrics.counter_add("incremental.regions_invalidated", invalidated);
    metrics.counter_add("incremental.plans_spliced", spliced);

    let prog = ctx.finish();
    debug_lint(&prog);
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::to_c_source;
    use crate::HcgGen;
    use hcg_model::delta::EditOp;
    use hcg_model::{library, ActorKind, Param};

    fn scratch(model: &Model, arch: Arch) -> String {
        to_c_source(
            &HcgGen::new()
                .generate(model, arch)
                .expect("scratch compile"),
        )
    }

    #[test]
    fn param_edit_is_byte_identical_to_scratch() {
        let mut session = EditSession::new(library::fig4_model());
        let hcg = HcgGen::new();
        let arch = Arch::Neon128;
        assert_eq!(
            to_c_source(&session.generate(&hcg, arch).unwrap()),
            scratch(session.model(), arch)
        );
        session
            .apply_delta(&ModelDelta::single(EditOp::SetParam {
                name: "Shr".into(),
                param: "amount".into(),
                value: Param::Int(2),
            }))
            .unwrap();
        let inc = to_c_source(&session.generate(&hcg, arch).unwrap());
        assert_eq!(inc, scratch(session.model(), arch));
        let stats = session.stats();
        assert_eq!(stats.edits_applied, 1);
        assert!(stats.schedules_reused >= 1, "param edit keeps schedule");
        assert!(stats.types_seeded > 0, "clean actors seed inference");
        assert!(stats.dispatch_reused > 0, "clean actors keep dispatch");
    }

    #[test]
    fn structural_edit_is_byte_identical_to_scratch() {
        let mut session = EditSession::new(library::fig4_model());
        let hcg = HcgGen::new();
        let _ = session.generate(&hcg, Arch::Avx256).unwrap();
        // Tap an existing signal to a new unary actor and outport.
        session
            .apply_delta(&ModelDelta {
                ops: vec![
                    EditOp::AddActor {
                        name: "tap".into(),
                        kind: ActorKind::Neg,
                        params: Default::default(),
                    },
                    EditOp::AddActor {
                        name: "tap_out".into(),
                        kind: ActorKind::Outport,
                        params: Default::default(),
                    },
                    EditOp::Connect {
                        from: ("Sub".into(), 0),
                        to: ("tap".into(), 0),
                    },
                    EditOp::Connect {
                        from: ("tap".into(), 0),
                        to: ("tap_out".into(), 0),
                    },
                ],
            })
            .unwrap();
        for arch in [Arch::Neon128, Arch::Avx256] {
            let inc = to_c_source(&session.generate(&hcg, arch).unwrap());
            assert_eq!(inc, scratch(session.model(), arch), "arch {arch}");
        }
    }

    /// Two disconnected batch chains: editing one must leave the other's
    /// region plan cached.
    fn two_chain_model() -> Model {
        use hcg_model::{DataType, ModelBuilder, SignalType};
        let ty = SignalType::vector(DataType::I32, 8);
        let mut b = ModelBuilder::new("TwoChains");
        let a = b.inport("a", ty);
        let b2 = b.inport("b", ty);
        let add = b.add_actor("add1", ActorKind::Add);
        let o1 = b.outport("o1");
        b.connect(a, 0, add, 0);
        b.connect(b2, 0, add, 1);
        b.connect(add, 0, o1, 0);
        let c = b.inport("c", ty);
        let sh = b.shift("sh", ActorKind::Shr, 1);
        let o2 = b.outport("o2");
        b.connect(c, 0, sh, 0);
        b.connect(sh, 0, o2, 0);
        b.build().expect("two-chain model is valid")
    }

    #[test]
    fn clean_regions_hit_the_plan_cache() {
        let mut session = EditSession::new(two_chain_model());
        let hcg = HcgGen::new();
        let arch = Arch::Neon128;
        let _ = session.generate(&hcg, arch).unwrap();
        let cold = session.stats();
        assert_eq!(cold.plan_hits, 0, "cold compile maps everything");
        session
            .apply_delta(&ModelDelta::single(EditOp::SetParam {
                name: "sh".into(),
                param: "amount".into(),
                value: Param::Int(3),
            }))
            .unwrap();
        let inc = to_c_source(&session.generate(&hcg, arch).unwrap());
        assert_eq!(inc, scratch(session.model(), arch));
        let stats = session.stats();
        // The `add1` chain is untouched: its region is admitted and its
        // plan spliced from the cache. The `sh` chain's signature embeds
        // the new amount, so only that region re-maps.
        assert!(stats.plan_hits >= 1, "clean region splices a cached plan");
        assert_eq!(
            stats.plan_misses,
            cold.plan_misses + 1,
            "exactly the dirty region re-maps"
        );
        assert!(stats.regions_admitted >= 1);
        assert!(stats.regions_invalidated >= 1);
    }

    #[test]
    fn failing_edit_recovers_after_fix() {
        let mut session = EditSession::new(library::fig4_model());
        let hcg = HcgGen::new();
        let _ = session.generate(&hcg, Arch::Neon128).unwrap();
        // Disconnecting an input makes the model invalid...
        session
            .apply_delta(&ModelDelta::single(EditOp::Disconnect {
                to: ("Mul".into(), 1),
            }))
            .unwrap();
        assert!(session.validate().is_err());
        assert!(session.validate().is_err(), "error is stable");
        // ...and reconnecting it recovers, matching scratch bytes.
        session
            .apply_delta(&ModelDelta::single(EditOp::Connect {
                from: ("d".into(), 0),
                to: ("Mul".into(), 1),
            }))
            .unwrap();
        let inc = to_c_source(&session.generate(&hcg, Arch::Neon128).unwrap());
        assert_eq!(inc, scratch(session.model(), Arch::Neon128));
    }

    #[test]
    fn kernel_selections_survive_fresh_generators() {
        let mut session = EditSession::new(library::fft_model(256));
        let arch = Arch::Neon128;
        let cold = HcgGen::new();
        let _ = session.generate(&cold, arch).unwrap();
        assert!(cold.history_len() > 0, "FFT measures at least one kernel");
        session
            .apply_delta(&ModelDelta::single(EditOp::SetParam {
                name: "window".into(),
                param: "value".into(),
                value: Param::FloatVec(vec![0.25; 256]),
            }))
            .unwrap();
        // A brand-new generator would normally re-run quick-search; the
        // session hands it the remembered selections instead.
        let warm = HcgGen::new();
        let inc = to_c_source(&session.generate(&warm, arch).unwrap());
        assert_eq!(inc, scratch(session.model(), arch));
        assert!(
            session.stats().kernel_selections_reused > 0,
            "fresh generator must adopt the session's Algorithm-1 history"
        );
    }

    #[test]
    fn program_cache_serves_repeat_generates() {
        let mut session = EditSession::new(library::fig4_model());
        let hcg = HcgGen::new();
        let p1 = session.generate(&hcg, Arch::Neon128).unwrap();
        let spliced = session.stats().plans_spliced;
        let p2 = session.generate(&hcg, Arch::Neon128).unwrap();
        assert_eq!(to_c_source(&p1), to_c_source(&p2));
        assert_eq!(
            session.stats().plans_spliced,
            spliced,
            "second generate is a program-cache hit, no new mapping"
        );
    }
}
