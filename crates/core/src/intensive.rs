//! Algorithm 1 driver: lower an intensive computing actor to a call into
//! the implementation selected by adaptive pre-calculation.

use crate::generator::{GenContext, GenError};
use hcg_kernels::{Autotuner, CodeLibrary, KernelSize};
use hcg_model::{Actor, PortRef};
use hcg_vm::Stmt;

/// Emit an intensive actor: run Algorithm 1 (history lookup →
/// pre-calculation) and emit a `KernelCall` to the winning implementation.
///
/// # Errors
///
/// Returns [`GenError::Select`] when no implementation can handle the
/// actor's scale.
pub fn emit_intensive(
    ctx: &mut GenContext<'_>,
    actor: &Actor,
    size: &KernelSize,
    lib: &CodeLibrary,
    tuner: &mut Autotuner,
) -> Result<(), GenError> {
    let first_in = ctx
        .model
        .driver(PortRef::new(actor.id, 0))
        .ok_or_else(|| GenError::Internal("unconnected intensive input".into()))?;
    let dtype = ctx.types.output(first_in.actor, first_in.port).dtype;
    let (kernel, _from_history) = tuner.select(lib, actor.kind, dtype, size)?;
    let inputs = (0..actor.kind.input_count())
        .map(|p| ctx.value_buffer(PortRef::new(actor.id, p)))
        .collect::<Result<Vec<_>, _>>()?;
    ctx.prog.body.push(Stmt::KernelCall {
        actor: actor.kind,
        impl_name: kernel.name.to_owned(),
        inputs,
        output: ctx.actor_buffer(actor.id),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{classify, Dispatch};
    use hcg_isa::Arch;
    use hcg_kernels::Meter;
    use hcg_model::library;

    #[test]
    fn fft_1024_lowers_to_radix4_call() {
        let m = library::fft_model(1024);
        let mut ctx = GenContext::new(&m, Arch::Neon128, "test").unwrap();
        let lib = CodeLibrary::new();
        let mut tuner = Autotuner::new(Meter::OpCount);
        let fft = ctx.model.actor_by_name("fft").unwrap().clone();
        let Dispatch::Intensive { size } = classify(ctx.model, &ctx.types, &fft) else {
            panic!("fft must dispatch intensive");
        };
        emit_intensive(&mut ctx, &fft, &size, &lib, &mut tuner).unwrap();
        let call = ctx
            .prog
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::KernelCall { impl_name, .. } => Some(impl_name.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(call, "radix4");
        assert_eq!(tuner.history_len(), 1);
    }
}
