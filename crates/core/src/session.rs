//! [`CompileSession`]: one model, lazily-computed cached front-end
//! artifacts, shared by reference across every generator × architecture
//! combination.
//!
//! The evaluation fleet drives three generators over multiple targets per
//! model; without a session each `generate` call re-runs type inference,
//! scheduling and dispatch classification. A session computes each artifact
//! at most once (verifiable via [`hcg_model::stats`]) and lends it to the
//! pipeline as borrowed [`std::borrow::Cow`]s, producing byte-identical
//! programs to the standalone path.

use crate::dispatch::{classify_all, Dispatch};
use crate::generator::{CodeGenerator, GenError};
use crate::pass::{PassManager, PipelineCtx, StageReport};
use hcg_isa::Arch;
use hcg_model::schedule::Schedule;
use hcg_model::{FrontEnd, Model, ModelDelta, TypeMap};
use hcg_vm::Program;
use std::borrow::Cow;
use std::sync::OnceLock;

/// A compilation session owning one model and its cached front-end
/// artifacts.
///
/// # Examples
///
/// ```
/// use hcg_core::{CompileSession, HcgGen};
/// use hcg_isa::Arch;
/// use hcg_model::library;
///
/// # fn main() -> Result<(), hcg_core::GenError> {
/// let session = CompileSession::new(library::fig4_model());
/// let hcg = HcgGen::new();
/// // Both runs share one type-inference and one scheduling pass.
/// let neon = session.generate(&hcg, Arch::Neon128)?;
/// let avx = session.generate(&hcg, Arch::Avx256)?;
/// assert_ne!(neon.arch, avx.arch);
/// # Ok(())
/// # }
/// ```
/// The caches are [`OnceLock`]s, so a session is `Send + Sync`: the
/// parallel evaluation fleet shares one session per model across worker
/// threads, and whichever worker touches an artifact first computes it.
#[derive(Debug)]
pub struct CompileSession {
    model: Model,
    front: OnceLock<Result<FrontEnd, GenError>>,
    dispatch: OnceLock<Result<Vec<Dispatch>, GenError>>,
}

impl CompileSession {
    /// A session owning `model`. Nothing is computed until first use.
    pub fn new(model: Model) -> Self {
        CompileSession {
            model,
            front: OnceLock::new(),
            dispatch: OnceLock::new(),
        }
    }

    /// The session's model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Apply a [`ModelDelta`] to the session's model, dropping every cached
    /// artifact — including a cached *error*: an edit that fixes an invalid
    /// model makes subsequent [`CompileSession::validate`] calls succeed
    /// rather than replaying the stale failure. (For dirty-region reuse
    /// instead of whole-model invalidation, use [`crate::EditSession`].)
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] when an op fails to apply (unknown or
    /// duplicate actor name); the session is left unchanged in that case.
    pub fn apply_delta(&mut self, delta: &ModelDelta) -> Result<(), GenError> {
        self.model = delta.apply(&self.model)?;
        self.front = OnceLock::new();
        self.dispatch = OnceLock::new();
        Ok(())
    }

    /// The cached front end (validated model + types + schedule), computing
    /// it on first call.
    ///
    /// # Errors
    ///
    /// Returns the (cached) [`GenError::Model`] when the model is invalid.
    pub fn front_end(&self) -> Result<&FrontEnd, GenError> {
        self.front
            .get_or_init(|| {
                let _span =
                    hcg_obs::span_with("session", || format!("front-end/{}", self.model.name));
                self.model.front_end().map_err(GenError::from)
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The cached type map.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] when inference fails.
    pub fn types(&self) -> Result<&TypeMap, GenError> {
        Ok(&self.front_end()?.types)
    }

    /// The cached schedule.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] when scheduling fails.
    pub fn schedule(&self) -> Result<&Schedule, GenError> {
        Ok(&self.front_end()?.schedule)
    }

    /// The cached dispatch classification (arch-independent).
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] when the front end fails.
    pub fn dispatch(&self) -> Result<&[Dispatch], GenError> {
        self.dispatch
            .get_or_init(|| {
                let _span =
                    hcg_obs::span_with("session", || format!("dispatch/{}", self.model.name));
                self.front_end()
                    .map(|fe| classify_all(&self.model, &fe.types))
            })
            .as_ref()
            .map(Vec::as_slice)
            .map_err(Clone::clone)
    }

    /// Force front-end validation without generating anything.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] when the model is invalid.
    pub fn validate(&self) -> Result<(), GenError> {
        self.front_end().map(|_| ())
    }

    /// Generate code through the session cache.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when the model is invalid or synthesis fails.
    pub fn generate(&self, generator: &dyn CodeGenerator, arch: Arch) -> Result<Program, GenError> {
        self.generate_with_report(generator, arch)
            .map(|(prog, _)| prog)
    }

    /// Generate code through the session cache, returning the per-stage
    /// report. The pipeline borrows every cached artifact — no front-end
    /// work is repeated across generators or architectures.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when the model is invalid or synthesis fails.
    pub fn generate_with_report(
        &self,
        generator: &dyn CodeGenerator,
        arch: Arch,
    ) -> Result<(Program, StageReport), GenError> {
        let fe = self.front_end()?;
        let dispatch = self.dispatch()?;
        let mut ctx = PipelineCtx::with_artifacts(
            &self.model,
            &fe.types,
            &fe.schedule,
            arch,
            generator.name(),
        )?;
        ctx.dispatch = Some(Cow::Borrowed(dispatch));
        PassManager::new(generator.passes()).run(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HcgGen;
    use hcg_model::library;

    #[test]
    fn session_caches_artifacts_across_arches() {
        let session = CompileSession::new(library::fig4_model());
        let t0 = hcg_model::stats::type_inference_runs();
        let s0 = hcg_model::stats::schedule_runs();
        let g = HcgGen::new();
        let p1 = session.generate(&g, Arch::Neon128).unwrap();
        let p2 = session.generate(&g, Arch::Avx256).unwrap();
        assert_ne!(p1.arch, p2.arch);
        assert_eq!(hcg_model::stats::type_inference_runs() - t0, 1);
        assert_eq!(hcg_model::stats::schedule_runs() - s0, 1);
    }

    #[test]
    fn session_is_send_and_sync() {
        // Compile-time guarantee the fleet relies on: sessions are shared
        // by reference across worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileSession>();
    }

    #[test]
    fn invalid_model_error_is_cached() {
        use hcg_model::ModelBuilder;
        // Empty model fails validation.
        let m = ModelBuilder::new("empty").build_unchecked();
        let session = CompileSession::new(m);
        let e1 = session.validate().unwrap_err();
        let e2 = session.validate().unwrap_err();
        assert_eq!(e1, e2);
    }

    #[test]
    fn fixing_edit_clears_cached_error() {
        use hcg_model::delta::EditOp;
        use hcg_model::{ActorKind, ModelBuilder, SignalType};
        use std::collections::BTreeMap;
        // A model with an undriven input: validation fails and the error
        // is cached in the OnceLock.
        let mut b = ModelBuilder::new("fixme");
        let g = b.add_actor("g", ActorKind::Abs);
        let o = b.outport("o");
        b.connect(g, 0, o, 0);
        let mut session = CompileSession::new(b.build_unchecked());
        assert!(session.validate().is_err());
        assert!(session.validate().is_err(), "error is cached");

        // An edit supplying the missing driver must clear the cached error.
        let fix = ModelDelta {
            ops: vec![
                EditOp::AddActor {
                    name: "x".into(),
                    kind: ActorKind::Inport,
                    params: BTreeMap::from([(
                        "type".into(),
                        hcg_model::Param::Str(
                            SignalType::vector(hcg_model::DataType::F32, 8).to_string(),
                        ),
                    )]),
                },
                EditOp::Connect {
                    from: ("x".into(), 0),
                    to: ("g".into(), 0),
                },
            ],
        };
        session.apply_delta(&fix).unwrap();
        session.validate().expect("fixed model validates");
        let g = HcgGen::new();
        assert!(session.generate(&g, Arch::Neon128).is_ok());
    }
}
