//! The `CodeGenerator` trait implemented by HCG and both baselines, plus
//! the shared lowering context (buffer allocation, schedule, types) that
//! performs the common "code composition" step ④ of paper §2.
//!
//! Generators describe themselves as a list of named [`Pass`]es; the trait's
//! `generate`/`generate_with_report` methods are thin drivers over
//! [`PassManager`]. A [`crate::CompileSession`] can feed several generators
//! from one set of cached front-end artifacts via
//! [`GenContext::with_artifacts`].

use crate::pass::{Pass, PassManager, PipelineCtx, StageReport};
use hcg_isa::Arch;
use hcg_kernels::SelectError;
use hcg_model::naming::unique_identifier;
use hcg_model::schedule::{schedule, Schedule};
use hcg_model::{ActorId, ActorKind, Model, ModelError, PortRef, TypeMap};
use hcg_vm::{BufferId, BufferKind, Origin, Program, Stmt};
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::fmt;

pub use hcg_model::naming::sanitize_identifier as sanitize;

/// Error from code generation.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// The input model failed validation/type inference/scheduling.
    Model(ModelError),
    /// Intensive-actor implementation selection failed.
    Select(SelectError),
    /// Anything else (internal invariant violations surface here with a
    /// description rather than a panic).
    Internal(String),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::Model(e) => write!(f, "{e}"),
            GenError::Select(e) => write!(f, "{e}"),
            GenError::Internal(m) => write!(f, "code generation error: {m}"),
        }
    }
}

impl std::error::Error for GenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenError::Model(e) => Some(e),
            GenError::Select(e) => Some(e),
            GenError::Internal(_) => None,
        }
    }
}

impl From<ModelError> for GenError {
    fn from(e: ModelError) -> Self {
        GenError::Model(e)
    }
}

impl From<SelectError> for GenError {
    fn from(e: SelectError) -> Self {
        GenError::Select(e)
    }
}

/// A code generator: turns a validated model into an executable
/// [`Program`] for a target architecture.
///
/// A generator is defined by its [`passes`](CodeGenerator::passes) — named
/// pipeline stages run in order by a [`PassManager`]. The `generate*`
/// methods are provided drivers: they build a standalone [`PipelineCtx`]
/// (computing the front-end artifacts on the spot) and run the passes.
/// Fleet runs that want to share artifacts across generators go through
/// [`crate::CompileSession`] instead, which calls the same passes over
/// borrowed artifacts.
pub trait CodeGenerator {
    /// Generator name as it appears in reports (`hcg`, `simulink-coder`,
    /// `dfsynth`).
    fn name(&self) -> &'static str;

    /// The generator's pipeline stages, in execution order. The final pass
    /// must leave the context finished (see [`PipelineCtx::finish`]).
    fn passes(&self) -> Vec<Pass<'_>>;

    /// Generate code.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when the model is invalid or synthesis fails.
    fn generate(&self, model: &Model, arch: Arch) -> Result<Program, GenError> {
        self.generate_with_report(model, arch).map(|(prog, _)| prog)
    }

    /// Generate code and return the per-stage timing/counter report.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when the model is invalid or synthesis fails.
    fn generate_with_report(
        &self,
        model: &Model,
        arch: Arch,
    ) -> Result<(Program, StageReport), GenError> {
        let ctx = PipelineCtx::standalone(model, arch, self.name())?;
        let (prog, report) = PassManager::new(self.passes()).run(ctx)?;
        debug_verify(model, &prog);
        Ok((prog, report))
    }

    /// Downcast hook for [`crate::EditSession`]: the HCG generator returns
    /// itself so the incremental path can reach its plan cache and kernel
    /// library; every other generator keeps the default `None` and is
    /// recompiled through its ordinary pass list (over cached front-end
    /// artifacts, which is already byte-identical to a scratch run).
    fn as_hcg(&self) -> Option<&crate::HcgGen> {
        None
    }
}

/// Shared lowering state: resolved types, schedule, the program being
/// built, and the buffer that holds each actor's output value.
///
/// The front-end artifacts are held as [`Cow`]s: [`GenContext::new`] owns
/// freshly computed ones, [`GenContext::with_artifacts`] borrows them from a
/// [`crate::CompileSession`] so a whole generator × arch fleet shares one
/// type-inference and one scheduling run per model.
#[derive(Debug)]
pub struct GenContext<'m> {
    /// The source model.
    pub model: &'m Model,
    /// Resolved signal types.
    pub types: Cow<'m, TypeMap>,
    /// Deterministic execution order.
    pub schedule: Cow<'m, Schedule>,
    /// The program under construction.
    pub prog: Program,
    out_buf: Vec<BufferId>,
    written_outports: BTreeSet<ActorId>,
    // `(top-level statement index, origin)` marks recorded by `set_origin`;
    // each mark covers statements up to the next mark. Materialised into
    // `Program::origins` by `finish`.
    origin_marks: Vec<(usize, Origin)>,
}

impl<'m> GenContext<'m> {
    /// Validate the model and allocate one buffer per actor output:
    /// `Inport` → input buffer, `Outport` → output buffer, `Constant` →
    /// initialised constant, `UnitDelay` → state (its output *is* the state
    /// buffer), everything else → temporary.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] for invalid models.
    pub fn new(model: &'m Model, arch: Arch, generator: &str) -> Result<Self, GenError> {
        let types = model.infer_types()?;
        let sched = schedule(model)?;
        Self::build(model, Cow::Owned(types), Cow::Owned(sched), arch, generator)
    }

    /// Build a context over artifacts computed elsewhere (a
    /// [`crate::CompileSession`] cache). The caller guarantees they belong
    /// to `model` — a session computed them via [`Model::front_end`], which
    /// validated the model.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] when buffer allocation fails (e.g. an
    /// unconnected outport).
    pub fn with_artifacts(
        model: &'m Model,
        types: &'m TypeMap,
        schedule: &'m Schedule,
        arch: Arch,
        generator: &str,
    ) -> Result<Self, GenError> {
        Self::build(
            model,
            Cow::Borrowed(types),
            Cow::Borrowed(schedule),
            arch,
            generator,
        )
    }

    fn build(
        model: &'m Model,
        types: Cow<'m, TypeMap>,
        sched: Cow<'m, Schedule>,
        arch: Arch,
        generator: &str,
    ) -> Result<Self, GenError> {
        let mut prog = Program::new(model.name.clone(), generator, arch);
        let mut out_buf = Vec::with_capacity(model.actors.len());
        // Distinct actor names can sanitize to one identifier; dedupe with
        // a numeric suffix so buffers never silently alias.
        let mut used = BTreeSet::new();
        for a in &model.actors {
            let name = unique_identifier(sanitize(&a.name), &mut used);
            let id = match a.kind {
                ActorKind::Inport => {
                    prog.add_buffer(name, types.output(a.id, 0), BufferKind::Input, None)
                }
                ActorKind::Outport => {
                    // The outport's buffer matches its *input* type.
                    let src = model
                        .driver(PortRef::new(a.id, 0))
                        .ok_or_else(|| GenError::Internal("unconnected outport".into()))?;
                    prog.add_buffer(
                        name,
                        types.output(src.actor, src.port),
                        BufferKind::Output,
                        None,
                    )
                }
                ActorKind::Constant => {
                    let value = a
                        .param("value")
                        .and_then(|p| p.as_float_vec())
                        .ok_or_else(|| GenError::Internal("constant without value".into()))?;
                    prog.add_buffer(name, types.output(a.id, 0), BufferKind::Const, Some(value))
                }
                ActorKind::UnitDelay => {
                    let init = a.param("init").and_then(|p| p.as_float_vec());
                    prog.add_buffer(name, types.output(a.id, 0), BufferKind::State, init)
                }
                _ => {
                    let ty = if a.kind.output_count() > 0 {
                        types.output(a.id, 0)
                    } else {
                        // Sink with no output: zero-length placeholder.
                        types.output(a.id, 0)
                    };
                    prog.add_buffer(name, ty, BufferKind::Temp, None)
                }
            };
            out_buf.push(id);
        }
        Ok(GenContext {
            model,
            types,
            schedule: sched,
            prog,
            out_buf,
            written_outports: BTreeSet::new(),
            origin_marks: Vec::new(),
        })
    }

    /// Attribute every top-level statement emitted from now on (until the
    /// next call) to `origin`. Recorded unconditionally — attribution is
    /// deterministic metadata, not gated on tracing — so equal inputs yield
    /// byte-identical programs whether or not observability is enabled.
    pub fn set_origin(&mut self, origin: Origin) {
        self.origin_marks.push((self.prog.body.len(), origin));
    }

    /// Record that a generator wrote an `Outport`'s buffer directly
    /// (output-variable reuse), so [`GenContext::finish`] skips its copy.
    pub fn mark_outport_written(&mut self, outport: ActorId) {
        self.written_outports.insert(outport);
    }

    /// The buffer holding the output value of `actor` (port 0).
    pub fn actor_buffer(&self, actor: ActorId) -> BufferId {
        self.out_buf[actor.0]
    }

    /// The buffer holding the value arriving at an input port.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Internal`] if the port is unconnected (excluded
    /// by validation).
    pub fn value_buffer(&self, input: PortRef) -> Result<BufferId, GenError> {
        let src = self
            .model
            .driver(input)
            .ok_or_else(|| GenError::Internal(format!("unconnected input {input}")))?;
        Ok(self.actor_buffer(src.actor))
    }

    /// Finish the program: emit the `Outport` copies and the end-of-step
    /// delay latches (`UnitDelay` state updates), in actor order.
    pub fn finish(mut self) -> Program {
        for a in &self.model.actors {
            if a.kind == ActorKind::Outport && !self.written_outports.contains(&a.id) {
                if let Ok(src) = self.value_buffer(PortRef::new(a.id, 0)) {
                    self.origin_marks
                        .push((self.prog.body.len(), Origin::actor(a.name.clone())));
                    self.prog.body.push(Stmt::Copy {
                        dst: self.actor_buffer(a.id),
                        src,
                    });
                }
            }
        }
        // Delay latches: a latch overwrites its state buffer, so any latch
        // *reading* that buffer (a delay chained off another delay) must run
        // first. Emit latches in that order; delays on a latch cycle (two
        // delays swapping values) go through shadow temporaries.
        let delays: Vec<ActorId> = self
            .model
            .actors
            .iter()
            .filter(|a| a.kind == ActorKind::UnitDelay)
            .map(|a| a.id)
            .collect();
        let driver_of: std::collections::BTreeMap<ActorId, ActorId> = delays
            .iter()
            .filter_map(|&d| {
                self.model
                    .driver(PortRef::new(d, 0))
                    .map(|src| (d, src.actor))
            })
            .collect();
        let mut pending: std::collections::BTreeSet<ActorId> = delays.iter().copied().collect();
        let mut order: Vec<ActorId> = Vec::with_capacity(delays.len());
        loop {
            // Emit any pending delay whose buffer is not read by another
            // pending latch.
            let safe: Vec<ActorId> = pending
                .iter()
                .copied()
                .filter(|&d| {
                    !pending
                        .iter()
                        .any(|&other| other != d && driver_of.get(&other) == Some(&d))
                })
                .collect();
            if safe.is_empty() {
                break;
            }
            for d in safe {
                pending.remove(&d);
                order.push(d);
            }
        }
        // Cycles: snapshot each remaining delay's driver value first.
        let cyclic: Vec<ActorId> = pending.into_iter().collect();
        let mut shadows = Vec::new();
        for &d in &cyclic {
            if let Ok(src) = self.value_buffer(PortRef::new(d, 0)) {
                let ty = self.types.output(d, 0);
                let shadow = self.prog.add_buffer(
                    format!(
                        "{}_next",
                        self.prog.buffer(self.actor_buffer(d)).name.clone()
                    ),
                    ty,
                    BufferKind::Temp,
                    None,
                );
                self.origin_marks.push((
                    self.prog.body.len(),
                    Origin::actor(self.model.actors[d.0].name.clone()),
                ));
                self.prog.body.push(Stmt::Copy { dst: shadow, src });
                shadows.push((d, shadow));
            }
        }
        for d in order {
            if let Ok(src) = self.value_buffer(PortRef::new(d, 0)) {
                self.origin_marks.push((
                    self.prog.body.len(),
                    Origin::actor(self.model.actors[d.0].name.clone()),
                ));
                self.prog.body.push(Stmt::Copy {
                    dst: self.actor_buffer(d),
                    src,
                });
            }
        }
        for (d, shadow) in shadows {
            self.origin_marks.push((
                self.prog.body.len(),
                Origin::actor(self.model.actors[d.0].name.clone()),
            ));
            self.prog.body.push(Stmt::Copy {
                dst: self.actor_buffer(d),
                src: shadow,
            });
        }
        // Materialise the marks into a per-statement origin table: each mark
        // covers statements from its position up to the next mark.
        let mut origins = vec![Origin::default(); self.prog.body.len()];
        for (k, (start, origin)) in self.origin_marks.iter().enumerate() {
            let end = self
                .origin_marks
                .get(k + 1)
                .map_or(self.prog.body.len(), |(p, _)| *p)
                .min(self.prog.body.len());
            let start = (*start).min(self.prog.body.len());
            for slot in &mut origins[start..end] {
                *slot = origin.clone();
            }
        }
        self.prog.origins = origins;
        self.prog
    }
}

/// Lint a freshly generated program (debug/test builds only).
///
/// Error-severity findings mean the generator emitted a malformed program —
/// a generator bug — so this panics with the full report. Release builds
/// compile it to a no-op. Warnings are tolerated: generators may
/// legitimately emit, e.g., scratch buffers a later peephole pass removes.
pub fn debug_lint(prog: &Program) {
    let _ = debug_lint_stage(prog, true);
}

/// The inter-pass lint hook (debug/test builds only): lint the program as
/// it stands after a pipeline stage, tolerating incompleteness artifacts
/// for mid-pipeline programs (see [`hcg_analysis::lint_stage`]).
///
/// Returns the warning count, or `None` in release builds where the hook
/// compiles to a no-op.
///
/// # Panics
///
/// Panics (debug builds) when error-severity findings are present — a stage
/// emitted a malformed statement, which is a generator bug.
pub fn debug_lint_stage(prog: &Program, complete: bool) -> Option<usize> {
    #[cfg(debug_assertions)]
    {
        let lib = hcg_kernels::CodeLibrary::new();
        let report = hcg_analysis::lint_stage(prog, &lib, complete);
        assert!(
            !report.has_errors(),
            "generated program failed lint:\n{}",
            report.render()
        );
        Some(report.of_severity(hcg_analysis::Severity::Warning).len())
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (prog, complete);
        None
    }
}

/// Whether [`debug_verify`] actually verifies. Off by default — symbolic
/// proofs are cheap but not free, and unit tests churn out thousands of
/// programs.
static DEBUG_VERIFY: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Opt in to (or out of) static translation validation of every generated
/// program. When enabled, `generate_with_report` runs the `hcg-verify`
/// symbolic equivalence proof after the pipeline finishes — in debug/test
/// builds only, like [`debug_lint`] — and panics on any divergence, since a
/// generated program that does not implement its model is a generator bug.
pub fn set_debug_verify(enabled: bool) {
    DEBUG_VERIFY.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// The post-generation verification hook (debug/test builds only, opt-in
/// via [`set_debug_verify`]): statically prove the finished program
/// equivalent to its model.
///
/// # Panics
///
/// Panics (debug builds, when enabled) on a divergence witness or a
/// verifier error — both mean the generator lowered the model incorrectly.
pub fn debug_verify(model: &Model, prog: &Program) {
    #[cfg(debug_assertions)]
    {
        if !DEBUG_VERIFY.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        match hcg_verify::verify_program(model, prog) {
            Ok(outcome) => {
                if let Some(w) = outcome.witness {
                    panic!(
                        "generated program diverges from its model ({} on {}): {w}",
                        prog.generator, prog.arch
                    );
                }
            }
            Err(e) => panic!(
                "static verification of {} on {} failed: {e}",
                prog.generator, prog.arch
            ),
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (model, prog);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::library;

    #[test]
    fn context_allocates_buffer_kinds() {
        let m = library::lowpass_model(64);
        let ctx = GenContext::new(&m, Arch::Neon128, "test").unwrap();
        let p = &ctx.prog;
        assert_eq!(p.buffers_of(BufferKind::Input).len(), 1);
        assert_eq!(p.buffers_of(BufferKind::Output).len(), 1);
        assert_eq!(p.buffers_of(BufferKind::State).len(), 1);
        assert_eq!(p.buffers_of(BufferKind::Const).len(), 1);
    }

    #[test]
    fn finish_emits_latches_and_output_copies() {
        let m = library::lowpass_model(64);
        let ctx = GenContext::new(&m, Arch::Neon128, "test").unwrap();
        let p = ctx.finish();
        // One outport copy + one delay latch.
        assert_eq!(p.stmt_stats().copies, 2);
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("a b-c"), "a_b_c");
        assert_eq!(sanitize("3x"), "_3x");
        assert_eq!(sanitize("ok_name"), "ok_name");
    }

    #[test]
    fn colliding_sanitized_names_get_distinct_buffers() {
        use hcg_model::{ActorKind, DataType, ModelBuilder, SignalType};
        // "a b" and "a_b" both sanitize to `a_b`.
        let ty = SignalType::vector(DataType::I32, 4);
        let mut b = ModelBuilder::new("collide");
        let x = b.inport("a b", ty);
        let y = b.inport("a_b", ty);
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("o");
        b.connect(x, 0, add, 0);
        b.connect(y, 0, add, 1);
        b.connect(add, 0, o, 0);
        let m = b.build().unwrap();
        let ctx = GenContext::new(&m, Arch::Neon128, "test").unwrap();
        let names: Vec<&str> = ctx.prog.buffers.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"a_b"), "{names:?}");
        assert!(names.contains(&"a_b_2"), "{names:?}");
        let unique: std::collections::BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len(), "buffer names must be unique");
    }

    #[test]
    fn value_buffer_follows_wires() {
        let m = library::fig4_model();
        let ctx = GenContext::new(&m, Arch::Neon128, "test").unwrap();
        let sub = m.actor_by_name("Sub").unwrap().id;
        let mul = m.actor_by_name("Mul").unwrap().id;
        // Mul's first input is driven by Sub.
        assert_eq!(
            ctx.value_buffer(PortRef::new(mul, 0)).unwrap(),
            ctx.actor_buffer(sub)
        );
    }
}
