//! # hcg-core — the HCG code generator
//!
//! The primary contribution of *HCG: Optimizing Embedded Code Generation of
//! Simulink with SIMD Instruction Synthesis* (DAC 2022): a code generator
//! that dispatches model actors into intensive / batch / basic classes
//! ([`dispatch`]), selects optimal intensive-actor implementations by
//! adaptive pre-calculation (Algorithm 1, [`intensive`]), synthesises
//! compound SIMD instructions for batch-actor regions by iterative dataflow
//! graph mapping (Algorithm 2, [`batch`]), and composes everything into an
//! executable/renderable program.
//!
//! # Examples
//!
//! ```
//! use hcg_core::{CodeGenerator, HcgGen, emit::to_c_source};
//! use hcg_isa::Arch;
//! use hcg_model::library;
//!
//! # fn main() -> Result<(), hcg_core::GenError> {
//! let gen = HcgGen::new();
//! let program = gen.generate(&library::fig4_model(), Arch::Neon128)?;
//! let source = to_c_source(&program);
//! assert!(source.contains("vmlaq_s32"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod conventional;
pub mod dispatch;
pub mod emit;
pub mod generator;
pub mod incremental;
pub mod intensive;
pub mod pass;
pub mod reference;
pub mod search;
pub mod session;

mod hcg;

pub use batch::{
    explain_region, form_regions_probed, plan_region_cached, BatchOptions, BatchRegion, MapTrace,
    MatchOrder, PlanCache, RegionPlan,
};
pub use conventional::LoopStyle;
pub use dispatch::Dispatch;
pub use generator::{
    debug_lint, debug_lint_stage, debug_verify, set_debug_verify, CodeGenerator, GenContext,
    GenError,
};
pub use hcg::{HcgGen, HcgOptions};
pub use incremental::{EditSession, IncrementalStats};
pub use pass::{
    dispatch_pass, Pass, PassManager, PipelineCtx, StageCounters, StageRecord, StageReport,
};
pub use reference::Reference;
pub use search::{MappingSearch, MappingStrategy};
pub use session::CompileSession;
