//! Actor dispatch (paper §3.1): classify every actor as an intensive
//! computing actor, a batch computing actor, or a basic actor, using its
//! type *and* its resolved input scale.

use hcg_kernels::KernelSize;
use hcg_model::op::ElemOp;
use hcg_model::{Actor, ActorId, KindClass, Model, Shape, TypeMap};

/// Final dispatch decision for one actor.
#[derive(Debug, Clone, PartialEq)]
pub enum Dispatch {
    /// Synthesised via Algorithm 1 (pre-calculated implementation choice).
    Intensive {
        /// The actor's size signature.
        size: KernelSize,
    },
    /// Eligible for Algorithm 2 (SIMD instruction selection).
    Batch {
        /// The element-wise operation (shift amounts resolved).
        op: ElemOp,
        /// Array length shared by inputs and output.
        len: usize,
    },
    /// Conventionally translated (Simulink-Coder-style scalar code).
    Basic,
}

/// Classify one actor.
///
/// An intensive-kind actor dispatches as `Intensive` when its input scale
/// is resolvable and its data type is floating point (the code library's
/// domain). A batch-kind actor dispatches as `Batch` when at least one
/// input is an array *and* all of its array operands and its output share
/// one length and element type — the same-I/O-scale / same-bit-width
/// condition of §3.2.2. Everything else is `Basic`.
pub fn classify(model: &Model, types: &TypeMap, actor: &Actor) -> Dispatch {
    match actor.kind.class() {
        KindClass::Intensive => {
            let ins = types.inputs_of(model, actor.id);
            if ins.iter().all(|t| t.dtype.is_float()) {
                if let Some(size) = KernelSize::from_inputs(actor.kind, &ins) {
                    return Dispatch::Intensive { size };
                }
            }
            Dispatch::Basic
        }
        KindClass::Batch => {
            let ins = types.inputs_of(model, actor.id);
            let out = types.output(actor.id, 0);
            let Shape::Vector(len) = out.shape else {
                return Dispatch::Basic;
            };
            // Every input must be a same-length vector of the output's
            // element type (scalar broadcast falls back to conventional
            // translation).
            let uniform = ins
                .iter()
                .all(|t| t.dtype == out.dtype && t.shape == Shape::Vector(len));
            if !uniform || len == 0 {
                return Dispatch::Basic;
            }
            let amount = actor.param("amount").and_then(|p| p.as_int()).unwrap_or(0) as u32;
            match ElemOp::from_actor(actor.kind, amount) {
                Some(op) if op.supports(out.dtype) => Dispatch::Batch { op, len },
                _ => Dispatch::Basic,
            }
        }
        KindClass::Basic => Dispatch::Basic,
    }
}

/// Classify every actor of a model, indexed by [`ActorId`].
pub fn classify_all(model: &Model, types: &TypeMap) -> Vec<Dispatch> {
    model
        .actors
        .iter()
        .map(|a| classify(model, types, a))
        .collect()
}

/// Convenience: the ids of all actors dispatched as batch.
pub fn batch_actors(dispatch: &[Dispatch]) -> Vec<ActorId> {
    dispatch
        .iter()
        .enumerate()
        .filter(|(_, d)| matches!(d, Dispatch::Batch { .. }))
        .map(|(i, _)| ActorId(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::{library, ActorKind, DataType, ModelBuilder, SignalType};

    #[test]
    fn fft_model_dispatch() {
        let m = library::fft_model(1024);
        let t = m.infer_types().unwrap();
        let d = classify_all(&m, &t);
        let fft = m.actor_by_name("fft").unwrap().id;
        let mul = m.actor_by_name("windowed").unwrap().id;
        assert!(matches!(
            &d[fft.0],
            Dispatch::Intensive { size } if size.0 == vec![1024]
        ));
        assert!(matches!(
            &d[mul.0],
            Dispatch::Batch {
                op: ElemOp::Mul,
                len: 1024
            }
        ));
    }

    #[test]
    fn scalar_add_is_basic() {
        let mut b = ModelBuilder::new("s");
        let x = b.inport("x", SignalType::scalar(DataType::F32));
        let y = b.inport("y", SignalType::scalar(DataType::F32));
        let add = b.add_actor("sum", ActorKind::Add);
        let o = b.outport("o");
        b.connect(x, 0, add, 0);
        b.connect(y, 0, add, 1);
        b.connect(add, 0, o, 0);
        let m = b.build().unwrap();
        let t = m.infer_types().unwrap();
        assert_eq!(
            classify(&m, &t, m.actor_by_name("sum").unwrap()),
            Dispatch::Basic
        );
    }

    #[test]
    fn broadcast_mul_is_basic() {
        // Array × scalar falls back to conventional translation.
        let mut b = ModelBuilder::new("bc");
        let x = b.inport("x", SignalType::vector(DataType::F32, 16));
        let k = b.inport("k", SignalType::scalar(DataType::F32));
        let mul = b.add_actor("m", ActorKind::Mul);
        let o = b.outport("o");
        b.connect(x, 0, mul, 0);
        b.connect(k, 0, mul, 1);
        b.connect(mul, 0, o, 0);
        let m = b.build().unwrap();
        let t = m.infer_types().unwrap();
        assert_eq!(
            classify(&m, &t, m.actor_by_name("m").unwrap()),
            Dispatch::Basic
        );
    }

    #[test]
    fn shr_carries_amount() {
        let m = library::fig4_model();
        let t = m.infer_types().unwrap();
        let shr = m.actor_by_name("Shr").unwrap();
        assert_eq!(
            classify(&m, &t, shr),
            Dispatch::Batch {
                op: ElemOp::Shr(1),
                len: 4
            }
        );
    }

    #[test]
    fn integer_fft_is_basic_not_intensive() {
        // (Model validation would reject this; dispatch is defensive.)
        let mut b = ModelBuilder::new("i");
        let x = b.inport("x", SignalType::vector(DataType::I32, 8));
        let f = b.add_actor("fft", ActorKind::Fft);
        let o = b.outport("o");
        b.connect(x, 0, f, 0);
        b.connect(f, 0, o, 0);
        let m = b.build_unchecked();
        // Bypass full inference failure by classifying with raw types.
        if let Ok(t) = m.infer_types() {
            assert_eq!(
                classify(&m, &t, m.actor_by_name("fft").unwrap()),
                Dispatch::Basic
            );
        }
    }

    #[test]
    fn batch_actor_list() {
        let m = library::fig4_model();
        let t = m.infer_types().unwrap();
        let d = classify_all(&m, &t);
        // Sub, AddH, Shr, Mul, AddM are batch; inports/outports basic.
        assert_eq!(batch_actors(&d).len(), 5);
    }
}
