//! Golden reference interpreter: executes model semantics directly on
//! tensors, independent of any code generator. Every generated program must
//! agree with it (the paper's §4.1 consistency check).

use crate::generator::GenError;
use hcg_kernels::CodeLibrary;
use hcg_model::op::ElemOp;
use hcg_model::schedule::{schedule, Schedule};
use hcg_model::{ActorId, ActorKind, Model, PortRef, Tensor, TypeMap};
use std::collections::BTreeMap;

/// A direct executor of model semantics.
#[derive(Debug)]
pub struct Reference<'m> {
    model: &'m Model,
    types: TypeMap,
    order: Schedule,
    lib: CodeLibrary,
    /// Delay states, by delay actor id.
    state: BTreeMap<ActorId, Tensor>,
}

impl<'m> Reference<'m> {
    /// Validate a model and prepare execution.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Model`] for invalid models.
    pub fn new(model: &'m Model) -> Result<Self, GenError> {
        let types = model.infer_types()?;
        let order = schedule(model)?;
        let mut state = BTreeMap::new();
        for a in &model.actors {
            if a.kind == ActorKind::UnitDelay {
                let ty = types.output(a.id, 0);
                let t = match a.param("init").and_then(|p| p.as_float_vec()) {
                    Some(init) => {
                        let vals = if init.len() == 1 {
                            vec![init[0]; ty.len()]
                        } else {
                            init
                        };
                        Tensor::from_f64(ty, vals).map_err(|e| GenError::Internal(e.to_string()))?
                    }
                    None => Tensor::zeros(ty),
                };
                state.insert(a.id, t);
            }
        }
        Ok(Reference {
            model,
            types,
            order,
            lib: CodeLibrary::new(),
            state,
        })
    }

    /// Execute one step: map of inport name → value, returns outport name →
    /// value. Delay states update at the end of the step.
    ///
    /// # Errors
    ///
    /// Returns [`GenError`] for missing/mistyped inputs or kernel failures.
    pub fn step(
        &mut self,
        inputs: &BTreeMap<String, Tensor>,
    ) -> Result<BTreeMap<String, Tensor>, GenError> {
        let mut values: BTreeMap<ActorId, Tensor> = BTreeMap::new();
        let mut outputs = BTreeMap::new();

        // Delay outputs (the previous step's latched values) are available
        // from the start of the step, regardless of schedule position.
        for (&aid, v) in &self.state {
            values.insert(aid, v.clone());
        }

        for &aid in &self.order.order.clone() {
            let actor = self.model.actor(aid).clone();
            let input_of =
                |values: &BTreeMap<ActorId, Tensor>, p: usize| -> Result<Tensor, GenError> {
                    let src = self
                        .model
                        .driver(PortRef::new(aid, p))
                        .ok_or_else(|| GenError::Internal("unconnected input".into()))?;
                    values.get(&src.actor).cloned().ok_or_else(|| {
                        GenError::Internal(format!("value of {} not ready", src.actor))
                    })
                };
            let out_ty = if actor.kind.output_count() > 0 {
                Some(self.types.output(aid, 0))
            } else {
                None
            };
            let amount = actor.param("amount").and_then(|p| p.as_int()).unwrap_or(0) as u32;

            let value: Option<Tensor> = match actor.kind {
                ActorKind::Inport => Some(inputs.get(&actor.name).cloned().ok_or_else(|| {
                    GenError::Internal(format!("missing input {:?}", actor.name))
                })?),
                ActorKind::Constant => {
                    let ty = out_ty.expect("constant has output");
                    let vals = actor
                        .param("value")
                        .and_then(|p| p.as_float_vec())
                        .ok_or_else(|| GenError::Internal("constant without value".into()))?;
                    let vals = if vals.len() == 1 {
                        vec![vals[0]; ty.len()]
                    } else {
                        vals
                    };
                    Some(
                        Tensor::from_f64(ty, vals)
                            .map_err(|e| GenError::Internal(e.to_string()))?,
                    )
                }
                ActorKind::Outport => {
                    let v = input_of(&values, 0)?;
                    outputs.insert(actor.name.clone(), v);
                    None
                }
                // Already injected from state at the top of the step.
                ActorKind::UnitDelay => None,
                ActorKind::Gain => {
                    let x = input_of(&values, 0)?;
                    let g = actor
                        .param("gain")
                        .and_then(|p| p.as_float())
                        .ok_or_else(|| GenError::Internal("gain missing".into()))?;
                    let k = Tensor::from_f64(hcg_model::SignalType::scalar(x.ty.dtype), vec![g])
                        .map_err(|e| GenError::Internal(e.to_string()))?;
                    Some(
                        x.binary(ElemOp::Mul, &k)
                            .map_err(|e| GenError::Internal(e.to_string()))?,
                    )
                }
                ActorKind::Saturate => {
                    let x = input_of(&values, 0)?;
                    let lo = actor
                        .param("min")
                        .and_then(|p| p.as_float())
                        .unwrap_or(f64::MIN);
                    let hi = actor
                        .param("max")
                        .and_then(|p| p.as_float())
                        .unwrap_or(f64::MAX);
                    let clamped: Vec<f64> =
                        x.as_f64().into_iter().map(|v| v.clamp(lo, hi)).collect();
                    Some(
                        Tensor::from_f64(x.ty, clamped)
                            .map_err(|e| GenError::Internal(e.to_string()))?,
                    )
                }
                ActorKind::Cast => {
                    let x = input_of(&values, 0)?;
                    let to = out_ty.expect("cast has output").dtype;
                    Some(x.cast(to))
                }
                ActorKind::Switch => {
                    let c = input_of(&values, 0)?;
                    let a = input_of(&values, 1)?;
                    let b = input_of(&values, 2)?;
                    let cf = c.as_f64();
                    let av = a.as_f64();
                    let bv = b.as_f64();
                    let picked: Vec<f64> = (0..a.len())
                        .map(|i| {
                            let ctrl = if cf.len() == 1 { cf[0] } else { cf[i] };
                            if ctrl > 0.0 {
                                av[i]
                            } else {
                                bv[i]
                            }
                        })
                        .collect();
                    Some(
                        Tensor::from_f64(a.ty, picked)
                            .map_err(|e| GenError::Internal(e.to_string()))?,
                    )
                }
                kind if kind.class() == hcg_model::KindClass::Intensive => {
                    let ins: Result<Vec<Tensor>, GenError> = (0..kind.input_count())
                        .map(|p| input_of(&values, p))
                        .collect();
                    let general = self
                        .lib
                        .general_for(kind)
                        .ok_or_else(|| GenError::Internal(format!("no kernel for {kind}")))?;
                    Some(
                        general
                            .run(&ins?)
                            .map_err(|e| GenError::Internal(e.to_string()))?,
                    )
                }
                kind => {
                    let op = ElemOp::from_actor(kind, amount)
                        .ok_or_else(|| GenError::Internal(format!("no semantics for {kind}")))?;
                    let x = input_of(&values, 0)?;
                    Some(if op.arity() == 1 {
                        x.unary(op).map_err(|e| GenError::Internal(e.to_string()))?
                    } else {
                        let y = input_of(&values, 1)?;
                        x.binary(op, &y)
                            .map_err(|e| GenError::Internal(e.to_string()))?
                    })
                }
            };
            if let Some(v) = value {
                values.insert(aid, v);
            }
        }

        // Latch delays from their drivers.
        for a in &self.model.actors {
            if a.kind == ActorKind::UnitDelay {
                let src = self
                    .model
                    .driver(PortRef::new(a.id, 0))
                    .ok_or_else(|| GenError::Internal("unconnected delay".into()))?;
                if let Some(v) = values.get(&src.actor) {
                    self.state.insert(a.id, v.clone());
                }
            }
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::{library, DataType, SignalType};

    #[test]
    fn fig4_reference_values() {
        let m = library::fig4_model();
        let mut r = Reference::new(&m).unwrap();
        let ty = SignalType::vector(DataType::I32, 4);
        let mut inputs = BTreeMap::new();
        inputs.insert("a".into(), Tensor::from_i64(ty, vec![1, 2, 3, 4]).unwrap());
        inputs.insert(
            "b".into(),
            Tensor::from_i64(ty, vec![10, 20, 30, 40]).unwrap(),
        );
        inputs.insert("c".into(), Tensor::from_i64(ty, vec![5, 5, 5, 5]).unwrap());
        inputs.insert("d".into(), Tensor::from_i64(ty, vec![2, 2, 2, 2]).unwrap());
        let out = r.step(&inputs).unwrap();
        // s = [5,15,25,35]; shr = (a+s)>>1; add = s + s*d.
        assert_eq!(out["Shr_out"].as_i64(), vec![3, 8, 14, 19]);
        assert_eq!(out["Add_out"].as_i64(), vec![15, 45, 75, 105]);
    }

    #[test]
    fn delay_state_advances() {
        let m = library::lowpass_model(4);
        let mut r = Reference::new(&m).unwrap();
        let ty = SignalType::vector(DataType::F32, 4);
        let mut inputs = BTreeMap::new();
        inputs.insert("x".into(), Tensor::from_f64(ty, vec![1.0; 4]).unwrap());
        let o1 = r.step(&inputs).unwrap();
        let o2 = r.step(&inputs).unwrap();
        // y1 = 0.2, y2 = 0.2 + 0.2*(1 - 0.2) = 0.36.
        assert!((o1["y"].as_f64()[0] - 0.2).abs() < 1e-6);
        assert!((o2["y"].as_f64()[0] - 0.36).abs() < 1e-6);
    }

    #[test]
    fn fft_model_runs_via_general_kernel() {
        let m = library::fft_model(16);
        let mut r = Reference::new(&m).unwrap();
        let ty = SignalType::vector(DataType::F32, 16);
        let mut inputs = BTreeMap::new();
        inputs.insert("x".into(), Tensor::from_f64(ty, vec![1.0; 16]).unwrap());
        let out = r.step(&inputs).unwrap();
        assert_eq!(out["spectrum"].len(), 32);
    }

    #[test]
    fn missing_input_is_an_error() {
        let m = library::dct_model(8);
        let mut r = Reference::new(&m).unwrap();
        assert!(r.step(&BTreeMap::new()).is_err());
    }
}
