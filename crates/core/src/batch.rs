//! Algorithm 2 of the paper: code synthesis for batch computing actors —
//! dataflow-graph construction over regions of connected batch actors, and
//! iterative largest-subgraph instruction selection.

use crate::conventional::{emit_conventional, LoopStyle};
use crate::dispatch::Dispatch;
use crate::generator::{GenContext, GenError};
use crate::search::{MappingSearch, MappingStrategy};
use hcg_graph::extend::{extend_subgraphs, top_left_node, MapState};
use hcg_graph::matching::{find_instruction_indexed, InstrMatch, MatchMemo};
use hcg_graph::{Candidate, Dfg, DfgInput, NodeId, ValTree};
use hcg_isa::{InstrIndex, InstrSet, Pattern, PatternArg, SimdInstr, SHIFT_ANY};
use hcg_model::op::ElemOp;
use hcg_model::{ActorId, DataType, PortRef};
use hcg_vm::{BufferId, ElemRef, IndexExpr, RegId, ScalarOp, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// A maximal group of interconnected batch computing actors sharing one
/// element type and one array length (paper §3.2.2, dataflow graph
/// construction: "collect the interconnected actors which have the same
/// I/O scales and bit-width of data element").
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRegion {
    /// Member actors, in schedule order.
    pub members: Vec<ActorId>,
    /// Shared element type.
    pub dtype: DataType,
    /// Shared array length.
    pub len: usize,
    /// Actors whose output values the region consumes: the members plus
    /// every external producer feeding a member input (the read half of an
    /// `hcg-verify` `EffectSummary`, at actor rather than buffer
    /// granularity). Incremental recompilation invalidates a region when
    /// this set intersects the dirty actors of an edit.
    pub reads: BTreeSet<ActorId>,
    /// Actors whose buffers the region writes: exactly its members.
    pub writes: BTreeSet<ActorId>,
}

impl BatchRegion {
    /// True when an edit dirtying `dirty` forces this region's plan to be
    /// recomputed: some actor the region reads or writes is dirty.
    pub fn touches(&self, dirty: &BTreeSet<ActorId>) -> bool {
        self.writes.iter().any(|a| dirty.contains(a))
            || self.reads.iter().any(|a| dirty.contains(a))
    }
}

/// Form the batch regions of a model.
///
/// An actor qualifies when dispatch classified it as batch *and* the
/// instruction set has at least a single-operation vector instruction for
/// its op at the region's element type and lane count — otherwise fusing it
/// into a region could leave Algorithm 2's matching loop with an unmappable
/// node (integer division is the classic case), so it falls back to
/// conventional translation instead.
pub fn form_regions(
    ctx: &GenContext<'_>,
    dispatch: &[Dispatch],
    set: &InstrSet,
) -> Vec<BatchRegion> {
    form_regions_indexed(ctx, dispatch, set, &InstrIndex::build(set))
}

/// [`form_regions`] with a caller-provided [`InstrIndex`] over `set`, so
/// the qualification probes share the index the mapping stage uses instead
/// of re-scanning the instruction set per actor.
pub fn form_regions_indexed(
    ctx: &GenContext<'_>,
    dispatch: &[Dispatch],
    set: &InstrSet,
    index: &InstrIndex,
) -> Vec<BatchRegion> {
    // One probe per distinct (op, dtype) — models repeat actor kinds, so
    // the cache collapses per-actor probes to a handful of matches.
    let mut probed: BTreeMap<(ElemOp, DataType), bool> = BTreeMap::new();
    form_regions_probed(ctx, dispatch, set, index, &mut probed)
}

/// [`form_regions_indexed`] with a caller-owned probe memo, so an
/// incremental session recompiling the same model after every edit pays
/// each (op, dtype) instruction-availability probe only once across its
/// lifetime. Probe results depend only on the instruction set, never on
/// the model, so the memo stays valid across edits (but must not be shared
/// between different instruction sets).
pub fn form_regions_probed(
    ctx: &GenContext<'_>,
    dispatch: &[Dispatch],
    set: &InstrSet,
    index: &InstrIndex,
    probed: &mut BTreeMap<(ElemOp, DataType), bool>,
) -> Vec<BatchRegion> {
    let arch = ctx.prog.arch;
    let mut qualifies = |id: ActorId| -> Option<(ElemOp, DataType, usize)> {
        let Dispatch::Batch { op, len } = dispatch[id.0] else {
            return None;
        };
        let dtype = ctx.types.output(id, 0).dtype;
        let lanes = arch.lanes(dtype);
        // Probe for a single-node instruction with distinct operands.
        let ok = *probed.entry((op, dtype)).or_insert_with(|| {
            let probe = ValTree::Op {
                op,
                args: (0..op.arity())
                    .map(|i| ValTree::Leaf(DfgInput::External(i)))
                    .collect(),
            };
            find_instruction_indexed(set, index, dtype, lanes, &probe).is_some()
        });
        ok.then_some((op, dtype, len))
    };

    let n = ctx.model.actors.len();
    let mut region_of: Vec<Option<usize>> = vec![None; n];
    let mut regions: Vec<BatchRegion> = Vec::new();
    let mut first_pos: Vec<usize> = Vec::new();
    let pos = ctx.schedule.positions();

    // Greedy clustering in schedule order. A region executes as one block
    // at its first member's schedule position, so an actor may join a
    // region only if every one of its producers is already available
    // there: a member of that region, a position-independent source
    // (inport/constant/delay state, whose buffers are valid from step
    // start), or an actor scheduled before the region's first member. This
    // keeps every region schedule-valid even when non-vectorisable actors
    // interleave with its members.
    let available_before = |p: ActorId, limit: usize| -> bool {
        matches!(
            ctx.model.actor(p).kind,
            hcg_model::ActorKind::Inport
                | hcg_model::ActorKind::Constant
                | hcg_model::ActorKind::UnitDelay
        ) || pos[p.0] < limit
    };

    for &aid in &ctx.schedule.order {
        let Some((_, dtype, len)) = qualifies(aid) else {
            continue;
        };
        let producers: Vec<ActorId> = (0..ctx.model.actor(aid).kind.input_count())
            .filter_map(|p| {
                ctx.model
                    .driver(hcg_model::PortRef::new(aid, p))
                    .map(|s| s.actor)
            })
            .collect();
        // Candidate regions: regions of qualifying producers with matching
        // dtype/len, latest-starting first (the weakest availability
        // constraint for the remaining producers).
        let mut candidates: Vec<usize> = producers
            .iter()
            .filter_map(|p| region_of[p.0])
            .filter(|&r| regions[r].dtype == dtype && regions[r].len == len)
            .collect();
        candidates.sort_by_key(|&r| std::cmp::Reverse(first_pos[r]));
        candidates.dedup();
        let joined = candidates.into_iter().find(|&r| {
            producers
                .iter()
                .all(|&p| region_of[p.0] == Some(r) || available_before(p, first_pos[r]))
        });
        match joined {
            Some(r) => {
                region_of[aid.0] = Some(r);
                regions[r].members.push(aid);
            }
            None => {
                region_of[aid.0] = Some(regions.len());
                first_pos.push(pos[aid.0]);
                regions.push(BatchRegion {
                    members: vec![aid],
                    dtype,
                    len,
                    reads: BTreeSet::new(),
                    writes: BTreeSet::new(),
                });
            }
        }
    }
    for r in &mut regions {
        r.members.sort_by_key(|a| pos[a.0]);
        r.writes = r.members.iter().copied().collect();
        r.reads = r.writes.clone();
        for &aid in &r.members {
            for p in 0..ctx.model.actor(aid).kind.input_count() {
                if let Some(src) = ctx.model.driver(hcg_model::PortRef::new(aid, p)) {
                    r.reads.insert(src.actor);
                }
            }
        }
    }
    regions
}

/// Candidate ordering during matching (paper: "subgraphs with more
/// computational cost will be tried to be matched first"). `SmallestFirst`
/// exists as the ablation control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchOrder {
    /// The paper's greedy largest-subgraph-first order.
    #[default]
    LargestFirst,
    /// Inverted order: single nodes match first, so compound instructions
    /// are never selected — the ablation baseline.
    SmallestFirst,
}

/// Options controlling Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Regions with fewer member actors than this are translated
    /// conventionally (the §4.3 discussion: one or two batch actors may not
    /// amortise the register↔memory transfers). The paper's evaluated
    /// configuration is 1 (always vectorise).
    pub simd_threshold: usize,
    /// Loop style for conventional fallbacks.
    pub fallback_style: LoopStyle,
    /// Candidate ordering (ablation knob).
    pub match_order: MatchOrder,
    /// Tiling selection: the paper's greedy pass or the opt-in beam
    /// search (see [`MappingStrategy`]).
    pub mapping: MappingStrategy,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            simd_threshold: 1,
            fallback_style: LoopStyle::CODER,
            match_order: MatchOrder::LargestFirst,
            mapping: MappingStrategy::Greedy,
        }
    }
}

/// One selected instruction of the mapping plan.
#[derive(Debug, Clone)]
pub(crate) struct PlanStep {
    pub(crate) candidate: Candidate,
    pub(crate) instr: SimdInstr,
    pub(crate) matched: InstrMatch,
}

/// Build the region's dataflow graph (step 1 of §3.2.2).
fn build_dfg(ctx: &GenContext<'_>, region: &BatchRegion) -> Result<(Dfg, Vec<BufferId>), GenError> {
    let mut externals: Vec<BufferId> = Vec::new();
    let mut ext_index = BTreeMap::new();
    let mut node_of: BTreeMap<ActorId, NodeId> = BTreeMap::new();
    // Pre-size externals lazily.
    let mut g = Dfg::new(region.dtype, region.len, usize::MAX);

    for &aid in &region.members {
        let actor = ctx.model.actor(aid);
        let amount = actor.param("amount").and_then(|p| p.as_int()).unwrap_or(0) as u32;
        let op = ElemOp::from_actor(actor.kind, amount)
            .ok_or_else(|| GenError::Internal(format!("{} is not a batch op", actor.name)))?;
        let mut inputs = Vec::with_capacity(op.arity());
        for p in 0..actor.kind.input_count() {
            let src = ctx
                .model
                .driver(PortRef::new(aid, p))
                .ok_or_else(|| GenError::Internal("unconnected input".into()))?;
            if let Some(&nid) = node_of.get(&src.actor) {
                inputs.push(DfgInput::Node(nid));
            } else {
                let buf = ctx.actor_buffer(src.actor);
                let e = *ext_index.entry(buf).or_insert_with(|| {
                    externals.push(buf);
                    externals.len() - 1
                });
                inputs.push(DfgInput::External(e));
            }
        }
        let nid = g
            .add_node(op, inputs, actor.name.clone())
            .map_err(|e| GenError::Internal(e.to_string()))?;
        node_of.insert(aid, nid);
    }
    // Outputs: any member value consumed outside the region.
    for (&aid, &nid) in &node_of {
        let consumers = ctx.model.consumers(PortRef::new(aid, 0));
        let leaves_region =
            consumers.is_empty() || consumers.iter().any(|c| !node_of.contains_key(&c.actor));
        if leaves_region {
            g.mark_output(nid);
        }
    }
    Ok((g, externals))
}

/// Run the iterative mapping loop (Algorithm 2 lines 10–22) and return the
/// ordered instruction plan.
///
/// The extension bounds are served from the index's per-(dtype, lanes)
/// cache instead of re-scanning the instruction set, every candidate lookup
/// walks only the (root op, dtype, lanes) bucket, and a per-region
/// [`MatchMemo`] ensures a tree that reappears across rounds (overlapping
/// extensions of neighbouring start nodes) never re-runs `match_pattern`.
pub(crate) fn map_graph(
    g: &Dfg,
    set: &InstrSet,
    index: &InstrIndex,
    lanes: usize,
    order: MatchOrder,
) -> Result<Vec<PlanStep>, GenError> {
    let bounds = index.bounds(g.dtype, lanes);
    let max_nodes = bounds.max_nodes.max(1);
    let max_depth = bounds.max_depth.max(1);
    let mut memo = MatchMemo::new();
    let mut state = MapState::new(g);
    let mut plan = Vec::new();
    while let Some(start) = top_left_node(g, &state) {
        let mut candidates = extend_subgraphs(g, &state, start, max_nodes, max_depth);
        if order == MatchOrder::SmallestFirst {
            candidates.reverse();
        }
        let mut chosen = None;
        for c in candidates {
            if let Some((instr, m)) = memo.find(set, index, g.dtype, lanes, &c.tree) {
                chosen = Some(PlanStep {
                    candidate: c,
                    instr: instr.clone(),
                    matched: m,
                });
                break;
            }
        }
        let step = chosen.ok_or_else(|| {
            GenError::Internal(format!(
                "no instruction for node {} ({}) — region formation should have excluded it",
                start,
                g.node(start).op
            ))
        })?;
        state.mark_computed(&step.candidate.nodes);
        plan.push(step);
    }
    Ok(plan)
}

/// Run the mapping loop under the configured [`MappingStrategy`]:
/// [`map_graph`] for greedy (and beam widths ≤ 1, which are defined as
/// byte-identical to greedy), [`MappingSearch`] otherwise.
fn map_graph_with(
    g: &Dfg,
    set: &InstrSet,
    index: &InstrIndex,
    lanes: usize,
    options: BatchOptions,
) -> Result<Vec<PlanStep>, GenError> {
    match options.mapping {
        MappingStrategy::Greedy | MappingStrategy::Beam { width: 0 | 1 } => {
            map_graph(g, set, index, lanes, options.match_order)
        }
        MappingStrategy::Beam { width } => {
            MappingSearch::new(set, index, lanes, width, options.match_order).run(g)
        }
    }
}

/// Substitute a concrete shift amount for the [`SHIFT_ANY`] wildcard so the
/// VM can execute the pattern.
pub fn concretize(pattern: &Pattern, amount: u32) -> Pattern {
    let op = match pattern.op {
        ElemOp::Shr(SHIFT_ANY) => ElemOp::Shr(amount),
        ElemOp::Shl(SHIFT_ANY) => ElemOp::Shl(amount),
        other => other,
    };
    Pattern {
        op,
        args: pattern
            .args
            .iter()
            .map(|a| match a {
                PatternArg::Input(i) => PatternArg::Input(*i),
                PatternArg::Node(n) => PatternArg::Node(Box::new(concretize(n, amount))),
            })
            .collect(),
    }
}

/// A region's computed emission plan: the pure (read-only) half of
/// Algorithm 2, produced by [`plan_region`] and realised by
/// [`emit_region_plan`]. Splitting planning from emission lets the
/// `instruction-mapping` stage report what was selected before the
/// `compose` stage mutates the program.
#[derive(Debug, Clone)]
pub struct RegionPlan {
    kind: RegionPlanKind,
}

#[derive(Debug, Clone)]
enum RegionPlanKind {
    /// Lines 3–4 (+ the §4.3 threshold): the region falls back to
    /// conventional translation.
    Conventional { fallback_style: LoopStyle },
    /// The SIMD path: the region's dataflow graph, its external input
    /// buffers, the selected instruction steps, and the outputs whose store
    /// redirects straight into an outport buffer.
    Simd {
        dfg: Dfg,
        externals: Vec<BufferId>,
        steps: Vec<PlanStep>,
        redirect_outports: Vec<(NodeId, ActorId)>,
    },
}

impl RegionPlan {
    /// Number of SIMD instructions the mapping selected, or `None` for a
    /// conventional fallback plan.
    pub fn simd_step_count(&self) -> Option<usize> {
        match &self.kind {
            RegionPlanKind::Simd { steps, .. } => Some(steps.len()),
            RegionPlanKind::Conventional { .. } => None,
        }
    }
}

/// Plan a batch region without touching the program: decide SIMD vs
/// conventional fallback, build the dataflow graph, run the mapping loop
/// (Algorithm 2 lines 10–22) and precompute output-variable-reuse
/// redirects.
///
/// # Errors
///
/// Returns [`GenError`] when the region graph cannot be built or mapped.
pub fn plan_region(
    ctx: &GenContext<'_>,
    region: &BatchRegion,
    set: &InstrSet,
    options: BatchOptions,
) -> Result<RegionPlan, GenError> {
    plan_region_indexed(ctx, region, set, &InstrIndex::build(set), options)
}

/// [`plan_region`] with a caller-provided [`InstrIndex`] over `set`. The
/// pipeline builds the index once per program (region-formation stage) and
/// reuses it for every region's mapping loop; `plan_region` itself remains
/// as the convenience wrapper that builds a throwaway index.
///
/// # Errors
///
/// Returns [`GenError`] when the region graph cannot be built or mapped.
pub fn plan_region_indexed(
    ctx: &GenContext<'_>,
    region: &BatchRegion,
    set: &InstrSet,
    index: &InstrIndex,
    options: BatchOptions,
) -> Result<RegionPlan, GenError> {
    let arch = ctx.prog.arch;
    // Line 1: BatchSize = VectorWidth / DataBitWidth.
    let lanes = arch.lanes(region.dtype);
    // Line 2: BatchCount = DataLength / BatchSize.
    let batch_count = region.len / lanes;
    // Lines 3–4 (+ the §4.3 threshold): conventional fallback.
    if batch_count < 1 || region.members.len() < options.simd_threshold {
        return Ok(RegionPlan {
            kind: RegionPlanKind::Conventional {
                fallback_style: options.fallback_style,
            },
        });
    }

    let (g, externals) = build_dfg(ctx, region)?;
    let steps = map_graph_with(&g, set, index, lanes, options)?;
    let redirect_outports = output_redirects(ctx, &g)?;
    Ok(RegionPlan {
        kind: RegionPlanKind::Simd {
            dfg: g,
            externals,
            steps,
            redirect_outports,
        },
    })
}

/// Output-variable reuse (shared by the one-shot and cached planners): a
/// region output consumed only by an Outport stores straight into the
/// outport's buffer, eliding the final copy.
fn output_redirects(ctx: &GenContext<'_>, g: &Dfg) -> Result<Vec<(NodeId, ActorId)>, GenError> {
    let mut redirect_outports: Vec<(NodeId, ActorId)> = Vec::new();
    for &out in g.outputs() {
        let aid = node_actor(ctx, g, out)?;
        let consumers = ctx.model.consumers(PortRef::new(aid, 0));
        if let [only] = consumers.as_slice() {
            if ctx.model.actor(only.actor).kind == hcg_model::ActorKind::Outport {
                redirect_outports.push((out, only.actor));
            }
        }
    }
    Ok(redirect_outports)
}

/// A memo of instruction-mapping results keyed by region *structure*, the
/// expensive-to-recompute half of [`plan_region_indexed`].
///
/// The key (see [`region_signature`]) encodes everything Algorithm 2's
/// mapping loop reads: element type, array length, lane count (via the
/// arch), candidate order, and the region graph's ops and wiring shape.
/// Buffer identities and node labels are deliberately excluded — they feed
/// emission, which [`plan_region_cached`] always rebuilds fresh — so a
/// structurally unchanged region keeps its plan across model edits, and
/// two isomorphic regions of one model share a single mapping run. Cached
/// plans are only valid for the built-in instruction set of the arch they
/// were computed on.
#[derive(Debug, Default)]
pub struct PlanCache {
    steps: BTreeMap<String, Vec<PlanStep>>,
    /// Mapping runs served from the cache since creation.
    pub hits: u64,
    /// Mapping runs that had to execute Algorithm 2's loop.
    pub misses: u64,
}

impl PlanCache {
    /// Number of distinct region structures cached.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Structural signature of a region for [`PlanCache`] lookup. Members are
/// encoded in order as their op (shift amounts included) plus the wiring of
/// each input — `N<i>` for the output of member `i`, `E<k>` for external
/// slot `k` (slots numbered by first occurrence, mirroring
/// [`build_dfg`]'s dedup order) — and a `!` marker on members whose value
/// leaves the region. Identical signatures therefore yield identical
/// dataflow graphs up to node labels, which the mapping loop never reads.
/// The key records the [`MappingStrategy`] that produced the plan, so
/// greedy and beam plans for one region structure never alias in the
/// cache.
fn region_signature(
    ctx: &GenContext<'_>,
    region: &BatchRegion,
    order: MatchOrder,
    mapping: MappingStrategy,
) -> String {
    use std::fmt::Write as _;
    let member_index: BTreeMap<ActorId, usize> = region
        .members
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i))
        .collect();
    let mut ext_slot: BTreeMap<ActorId, usize> = BTreeMap::new();
    let mut s = String::new();
    let _ = write!(
        s,
        "{}|{}|{}|{:?}|{}",
        ctx.prog.arch,
        region.dtype,
        region.len,
        order,
        mapping.label()
    );
    for &aid in &region.members {
        let actor = ctx.model.actor(aid);
        let amount = actor.param("amount").and_then(|p| p.as_int()).unwrap_or(0) as u32;
        let op = ElemOp::from_actor(actor.kind, amount);
        let _ = write!(s, ";{op:?}@");
        for p in 0..actor.kind.input_count() {
            if p > 0 {
                s.push(',');
            }
            match ctx.model.driver(PortRef::new(aid, p)).map(|src| src.actor) {
                Some(src) if member_index.contains_key(&src) => {
                    let _ = write!(s, "N{}", member_index[&src]);
                }
                Some(src) => {
                    let next = ext_slot.len();
                    let slot = *ext_slot.entry(src).or_insert(next);
                    let _ = write!(s, "E{slot}");
                }
                None => s.push('?'),
            }
        }
        let consumers = ctx.model.consumers(PortRef::new(aid, 0));
        let leaves = consumers.is_empty()
            || consumers
                .iter()
                .any(|c| !member_index.contains_key(&c.actor));
        if leaves {
            s.push('!');
        }
    }
    s
}

/// [`plan_region_indexed`] backed by a [`PlanCache`]: the dataflow graph,
/// externals and outport redirects are rebuilt fresh (they are cheap and
/// carry buffer identities), while the mapping loop's step list is reused
/// when the region's structure was planned before. With `set` the built-in
/// set of the context's arch, the result is identical to the uncached
/// planner — splicing a cached plan into a recompile is byte-exact by
/// construction.
///
/// # Errors
///
/// Returns [`GenError`] when the region graph cannot be built or mapped.
pub fn plan_region_cached(
    ctx: &GenContext<'_>,
    region: &BatchRegion,
    set: &InstrSet,
    index: &InstrIndex,
    options: BatchOptions,
    cache: &mut PlanCache,
) -> Result<RegionPlan, GenError> {
    let arch = ctx.prog.arch;
    let lanes = arch.lanes(region.dtype);
    let batch_count = region.len / lanes;
    if batch_count < 1 || region.members.len() < options.simd_threshold {
        return Ok(RegionPlan {
            kind: RegionPlanKind::Conventional {
                fallback_style: options.fallback_style,
            },
        });
    }
    let (g, externals) = build_dfg(ctx, region)?;
    let key = region_signature(ctx, region, options.match_order, options.mapping);
    let steps = match cache.steps.get(&key) {
        Some(steps) => {
            cache.hits += 1;
            steps.clone()
        }
        None => {
            cache.misses += 1;
            let steps = map_graph_with(&g, set, index, lanes, options)?;
            cache.steps.insert(key, steps.clone());
            steps
        }
    };
    let redirect_outports = output_redirects(ctx, &g)?;
    Ok(RegionPlan {
        kind: RegionPlanKind::Simd {
            dfg: g,
            externals,
            steps,
            redirect_outports,
        },
    })
}

/// Emit a whole batch region (Algorithm 2 in full): plan then realise.
///
/// # Errors
///
/// Returns [`GenError`] when the region graph cannot be built or mapped.
pub fn emit_batch_region(
    ctx: &mut GenContext<'_>,
    region: &BatchRegion,
    set: &InstrSet,
    options: BatchOptions,
) -> Result<(), GenError> {
    let plan = plan_region(ctx, region, set, options)?;
    emit_region_plan(ctx, region, &plan)
}

/// Realise a region plan: the mutating half of Algorithm 2 (register
/// allocation, remainder code, loads/ops/stores, loop wrapping). Statement
/// and register allocation order is identical to the pre-split
/// `emit_batch_region`, so programs are byte-identical.
///
/// # Errors
///
/// Returns [`GenError`] when an output node was fused away (an internal
/// invariant violation).
pub fn emit_region_plan(
    ctx: &mut GenContext<'_>,
    region: &BatchRegion,
    plan: &RegionPlan,
) -> Result<(), GenError> {
    let (g, externals, steps, redirect_outports) = match &plan.kind {
        RegionPlanKind::Conventional { fallback_style } => {
            for &aid in &region.members {
                let actor = ctx.model.actor(aid).clone();
                emit_conventional(ctx, &actor, *fallback_style)?;
            }
            return Ok(());
        }
        RegionPlanKind::Simd {
            dfg,
            externals,
            steps,
            redirect_outports,
        } => (dfg, externals, steps, redirect_outports),
    };
    let lanes = ctx.prog.arch.lanes(region.dtype);
    let batch_count = region.len / lanes;

    let mut redirects: BTreeMap<NodeId, BufferId> = BTreeMap::new();
    for &(out, outport) in redirect_outports {
        ctx.mark_outport_written(outport);
        redirects.insert(out, ctx.actor_buffer(outport));
    }

    // Line 6: Offset = DataLength % BatchSize.
    let offset = region.len % lanes;

    // Lines 24–26: remainder code, placed before the main loop.
    if offset != 0 {
        emit_scalar_remainder(ctx, g, externals, offset, &redirects)?;
    }

    // Lines 5–23: the SIMD section. With BatchCount >= 2 it is a loop
    // starting at the offset; a single batch is emitted straight-line.
    let looped = batch_count >= 2;
    let index = if looped {
        IndexExpr::Loop(0)
    } else {
        IndexExpr::Const(offset)
    };

    let mut body: Vec<Stmt> = Vec::new();
    // Line 9: data-preparation variables (vector loads), e.g.
    // `int32x4_t a_batch = vld1q_s32(a);`.
    let mut ext_regs: Vec<RegId> = Vec::with_capacity(externals.len());
    for &buf in externals {
        let reg = ctx.prog.add_named_reg(
            region.dtype,
            lanes,
            format!("{}_batch", ctx.prog.buffer(buf).name),
        );
        body.push(Stmt::VLoad { reg, buf, index });
        ext_regs.push(reg);
    }

    // Lines 10–22: calculation code per selected instruction.
    let mut node_regs: BTreeMap<NodeId, RegId> = BTreeMap::new();
    for step in steps {
        let sink = step.candidate.sink;
        let dst = ctx.prog.add_named_reg(
            region.dtype,
            lanes,
            format!("{}_batch", crate::generator::sanitize(&g.node(sink).label)),
        );
        let srcs: Vec<RegId> = step
            .matched
            .bindings
            .iter()
            .map(|b| match b {
                DfgInput::External(e) => ext_regs[*e],
                DfgInput::Node(n) => node_regs[n],
            })
            .collect();
        let src_names: Vec<String> = srcs
            .iter()
            .map(|r| ctx.prog.reg_names[r.0].clone())
            .collect();
        let code = step.instr.render(
            &src_names,
            &ctx.prog.reg_names[dst.0].clone(),
            step.matched.shift_amount,
        );
        body.push(Stmt::VOp {
            instr: step.instr.name.clone(),
            pattern: concretize(&step.instr.pattern, step.matched.shift_amount),
            cost: step.instr.cost,
            dst,
            srcs,
            code,
        });
        node_regs.insert(sink, dst);
    }

    // Line 23: store region outputs, e.g. `vst1q_s32(&out[i], out_batch);`.
    // Output-variable reuse: a value consumed only by an Outport is stored
    // straight into the outport's buffer, eliding the final copy.
    for &out in g.outputs() {
        let reg = *node_regs
            .get(&out)
            .ok_or_else(|| GenError::Internal(format!("output node {out} was fused away")))?;
        let aid = region
            .members
            .iter()
            .copied()
            .find(|a| ctx.model.actor(*a).name == g.node(out).label)
            .ok_or_else(|| GenError::Internal("output label not found".into()))?;
        let buf = redirects
            .get(&out)
            .copied()
            .unwrap_or_else(|| ctx.actor_buffer(aid));
        body.push(Stmt::VStore { buf, index, reg });
    }

    if looped {
        ctx.prog.body.push(Stmt::Loop {
            start: offset,
            end: region.len,
            step: lanes,
            body,
        });
    } else {
        ctx.prog.body.extend(body);
    }
    Ok(())
}

/// One step of a mapping explanation (see [`explain_region`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MapTrace {
    /// The topmost-leftmost node this round started from.
    pub start: String,
    /// Candidate subgraphs in try order, as operand trees.
    pub candidates: Vec<String>,
    /// The candidate that matched.
    pub chosen: String,
    /// The selected instruction.
    pub instruction: String,
}

/// Narrate Algorithm 2 on one region: for each round, which node was
/// selected, which subgraph candidates were extended (largest first), and
/// which instruction matched — the explanation the paper's Figure 4 walks
/// through ("three subgraphs will be extended from the Sub node …").
///
/// # Errors
///
/// Returns [`GenError`] when the region cannot be mapped.
pub fn explain_region(
    ctx: &GenContext<'_>,
    region: &BatchRegion,
    set: &InstrSet,
) -> Result<Vec<MapTrace>, GenError> {
    let lanes = ctx.prog.arch.lanes(region.dtype);
    let (g, _) = build_dfg(ctx, region)?;
    let index = InstrIndex::build(set);
    let bounds = index.bounds(g.dtype, lanes);
    let max_nodes = bounds.max_nodes.max(1);
    let max_depth = bounds.max_depth.max(1);
    let mut memo = MatchMemo::new();
    let mut state = MapState::new(&g);
    let mut out = Vec::new();
    while let Some(start) = top_left_node(&g, &state) {
        let candidates = extend_subgraphs(&g, &state, start, max_nodes, max_depth);
        let rendered: Vec<String> = candidates.iter().map(|c| c.tree.to_string()).collect();
        let mut chosen = None;
        for c in &candidates {
            if let Some((instr, _)) = memo.find(set, &index, g.dtype, lanes, &c.tree) {
                chosen = Some((c.clone(), instr.name.clone()));
                break;
            }
        }
        let (c, instruction) =
            chosen.ok_or_else(|| GenError::Internal(format!("no instruction for node {start}")))?;
        out.push(MapTrace {
            start: g.node(start).label.clone(),
            candidates: rendered,
            chosen: c.tree.to_string(),
            instruction,
        });
        state.mark_computed(&c.nodes);
    }
    Ok(out)
}

/// Scalar code for the first `offset` elements (same computation logic as
/// the loop body, Algorithm 2 lines 24–26).
fn emit_scalar_remainder(
    ctx: &mut GenContext<'_>,
    g: &Dfg,
    externals: &[BufferId],
    offset: usize,
    redirects: &BTreeMap<NodeId, BufferId>,
) -> Result<(), GenError> {
    // Every node writes its own actor buffer element-wise; topological node
    // order makes operands available.
    for i in 0..offset {
        for node in g.nodes() {
            let aid = node_actor(ctx, g, node.id)?;
            let dst = ElemRef {
                buf: ctx.actor_buffer(aid),
                index: IndexExpr::Const(i),
            };
            let srcs: Vec<ElemRef> = node
                .inputs
                .iter()
                .map(|inp| {
                    let buf = match inp {
                        DfgInput::External(e) => externals[*e],
                        DfgInput::Node(n) => {
                            let a = node_actor(ctx, g, *n).expect("validated above");
                            ctx.actor_buffer(a)
                        }
                    };
                    ElemRef {
                        buf,
                        index: IndexExpr::Const(i),
                    }
                })
                .collect();
            ctx.prog.body.push(Stmt::Scalar {
                op: ScalarOp::Elem(node.op),
                dst,
                srcs,
            });
            // Remainder elements of a redirected output also land in the
            // outport buffer (whose copy was elided).
            if let Some(&redirect) = redirects.get(&node.id) {
                ctx.prog.body.push(Stmt::Scalar {
                    op: ScalarOp::Copy,
                    dst: ElemRef {
                        buf: redirect,
                        index: IndexExpr::Const(i),
                    },
                    srcs: vec![dst],
                });
            }
        }
    }
    Ok(())
}

fn node_actor(ctx: &GenContext<'_>, g: &Dfg, id: NodeId) -> Result<ActorId, GenError> {
    ctx.model
        .actor_by_name(&g.node(id).label)
        .map(|a| a.id)
        .ok_or_else(|| GenError::Internal(format!("no actor for node {id}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_isa::{sets, Arch};
    use hcg_model::library;

    fn ctx_for(model: &hcg_model::Model, arch: Arch) -> GenContext<'_> {
        GenContext::new(model, arch, "test").unwrap()
    }

    #[test]
    fn fig4_forms_one_region_of_five() {
        let m = library::fig4_model();
        let ctx = ctx_for(&m, Arch::Neon128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Neon128);
        let regions = form_regions(&ctx, &d, &set);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].members.len(), 5);
        assert_eq!(regions[0].len, 4);
        assert_eq!(regions[0].dtype, hcg_model::DataType::I32);
    }

    #[test]
    fn fig4_mapping_selects_listing1_instructions() {
        let m = library::fig4_model();
        let mut ctx = ctx_for(&m, Arch::Neon128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Neon128);
        let regions = form_regions(&ctx, &d, &set);
        emit_batch_region(&mut ctx, &regions[0], &set, BatchOptions::default()).unwrap();
        let prog = ctx.finish();
        let names: Vec<&str> = prog
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::VOp { instr, .. } => Some(instr.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["vsubq_s32", "vhaddq_s32", "vmlaq_s32"]);
        // len == lanes: straight-line, no loop, 4 loads, 2 stores.
        let stats = prog.stmt_stats();
        assert_eq!(stats.loops, 0);
        assert_eq!(stats.vloads, 4);
        assert_eq!(stats.vstores, 2);
    }

    #[test]
    fn larger_region_wraps_in_loop_with_offset() {
        // len = 10, lanes = 4 → offset 2, loop from 2 to 10 step 4.
        let m = library::fig4_model_sized(10);
        let mut ctx = ctx_for(&m, Arch::Neon128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Neon128);
        let regions = form_regions(&ctx, &d, &set);
        emit_batch_region(&mut ctx, &regions[0], &set, BatchOptions::default()).unwrap();
        let prog = ctx.finish();
        let the_loop = prog
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::Loop {
                    start, end, step, ..
                } => Some((*start, *end, *step)),
                _ => None,
            })
            .expect("a SIMD loop");
        assert_eq!(the_loop, (2, 10, 4));
        // Remainder: 2 elements × (5 nodes + 2 redirected-outport copies).
        assert_eq!(prog.stmt_stats().scalar_ops, 14);
    }

    #[test]
    fn short_region_falls_back_to_conventional() {
        // len = 2 < lanes = 4 → BatchCount < 1 → conventionalTranslate.
        let m = library::fig4_model_sized(2);
        let mut ctx = ctx_for(&m, Arch::Neon128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Neon128);
        let regions = form_regions(&ctx, &d, &set);
        emit_batch_region(&mut ctx, &regions[0], &set, BatchOptions::default()).unwrap();
        let prog = ctx.finish();
        assert_eq!(prog.stmt_stats().vops, 0);
        assert!(prog.stmt_stats().scalar_ops > 0);
    }

    #[test]
    fn threshold_disables_simd() {
        let m = library::fig4_model();
        let mut ctx = ctx_for(&m, Arch::Neon128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Neon128);
        let regions = form_regions(&ctx, &d, &set);
        let opts = BatchOptions {
            simd_threshold: 10,
            ..BatchOptions::default()
        };
        emit_batch_region(&mut ctx, &regions[0], &set, opts).unwrap();
        assert_eq!(ctx.prog.stmt_stats().vops, 0);
    }

    #[test]
    fn sse_has_no_vhadd_but_still_maps() {
        // On SSE there is no fused (a+b)>>1; the Shr maps as its own
        // instruction.
        let m = library::fig4_model_sized(8);
        let mut ctx = ctx_for(&m, Arch::Sse128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Sse128);
        let regions = form_regions(&ctx, &d, &set);
        emit_batch_region(&mut ctx, &regions[0], &set, BatchOptions::default()).unwrap();
        let prog = ctx.finish();
        let stats = prog.stmt_stats();
        // 5 nodes, no fusion on SSE integer ops → 5 vops.
        assert_eq!(stats.vops, 5);
    }

    #[test]
    fn float_div_region_qualifies_but_int_div_does_not() {
        use hcg_model::{ActorKind, DataType, ModelBuilder, SignalType};
        for (dtype, expect_regions) in [(DataType::F32, 1), (DataType::I32, 0)] {
            let ty = SignalType::vector(dtype, 8);
            let mut b = ModelBuilder::new("divs");
            let x = b.inport("x", ty);
            let y = b.inport("y", ty);
            let div = b.add_actor("q", ActorKind::Div);
            let o = b.outport("o");
            b.connect(x, 0, div, 0);
            b.connect(y, 0, div, 1);
            b.connect(div, 0, o, 0);
            let m = b.build().unwrap();
            let ctx = ctx_for(&m, Arch::Neon128);
            let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
            let set = sets::builtin(Arch::Neon128);
            let regions = form_regions(&ctx, &d, &set);
            assert_eq!(regions.len(), expect_regions, "{dtype}");
        }
    }

    #[test]
    fn regions_record_read_write_effects() {
        let m = library::fig4_model();
        let ctx = ctx_for(&m, Arch::Neon128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Neon128);
        let regions = form_regions(&ctx, &d, &set);
        let r = &regions[0];
        assert_eq!(r.writes, r.members.iter().copied().collect());
        // Reads cover the members plus their external inport drivers.
        assert!(r.writes.is_subset(&r.reads));
        for name in ["a", "b", "c", "d"] {
            let id = m.actor_by_name(name).unwrap().id;
            assert!(r.reads.contains(&id), "region reads {name}");
        }
        let dirty = BTreeSet::from([m.actor_by_name("a").unwrap().id]);
        assert!(r.touches(&dirty));
        let outport = m.outports()[0].id;
        assert!(!r.touches(&BTreeSet::from([outport])));
    }

    #[test]
    fn cached_planner_matches_uncached_and_counts_hits() {
        let m = library::fig4_model_sized(10);
        let (set, index) = sets::builtin_indexed(Arch::Neon128);
        let opts = BatchOptions::default();
        let mut cache = PlanCache::default();
        let emit = |mut cached: Option<&mut PlanCache>| {
            let mut ctx = ctx_for(&m, Arch::Neon128);
            let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
            let regions = form_regions_indexed(&ctx, &d, set, index);
            for r in &regions {
                let plan = match cached.as_deref_mut() {
                    Some(c) => plan_region_cached(&ctx, r, set, index, opts, c).unwrap(),
                    None => plan_region_indexed(&ctx, r, set, index, opts).unwrap(),
                };
                emit_region_plan(&mut ctx, r, &plan).unwrap();
            }
            ctx.finish()
        };
        let fresh = emit(None);
        let miss = emit(Some(&mut cache));
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.len(), 1);
        let hit = emit(Some(&mut cache));
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.hits, 1);
        assert_eq!(format!("{fresh:?}"), format!("{miss:?}"));
        assert_eq!(format!("{fresh:?}"), format!("{hit:?}"));
    }

    #[test]
    fn explain_region_narrates_figure4() {
        let m = library::fig4_model();
        let ctx = ctx_for(&m, Arch::Neon128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Neon128);
        let regions = form_regions(&ctx, &d, &set);
        let trace = explain_region(&ctx, &regions[0], &set).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].start, "Sub");
        assert_eq!(trace[0].instruction, "vsubq_s32");
        assert_eq!(trace[1].instruction, "vhaddq_s32");
        // The vhadd round considered the fused candidate before singles.
        assert!(trace[1].candidates.len() >= 2);
        assert_eq!(trace[2].instruction, "vmlaq_s32");
    }

    #[test]
    fn rendered_code_matches_listing1_shapes() {
        let m = library::fig4_model();
        let mut ctx = ctx_for(&m, Arch::Neon128);
        let d = crate::dispatch::classify_all(ctx.model, &ctx.types);
        let set = sets::builtin(Arch::Neon128);
        let regions = form_regions(&ctx, &d, &set);
        emit_batch_region(&mut ctx, &regions[0], &set, BatchOptions::default()).unwrap();
        let codes: Vec<String> = ctx
            .prog
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::VOp { code, .. } => Some(code.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(codes[0], "Sub_batch = vsubq_s32(b_batch, c_batch);");
        assert_eq!(codes[1], "Shr_batch = vhaddq_s32(a_batch, Sub_batch);");
        assert_eq!(
            codes[2],
            "AddM_batch = vmlaq_s32(Sub_batch, Sub_batch, d_batch);"
        );
    }
}
