//! C-like source rendering of generated programs — the human-readable view
//! of what each generator produced (the paper's Figure 2 code comparison
//! and Listing 1 are regenerated from this).

use hcg_isa::Arch;
use hcg_model::op::ElemOp;
use hcg_vm::{BufferKind, ElemRef, Program, ScalarOp, Stmt};

/// Render a program as C-like source.
pub fn to_c_source(prog: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "/* model: {} | generator: {} | target: {} */\n",
        prog.name, prog.generator, prog.arch
    ));
    // Buffer declarations.
    for b in &prog.buffers {
        let qual = match b.kind {
            BufferKind::Input => "/* in  */ ",
            BufferKind::Output => "/* out */ ",
            BufferKind::State => "/* st  */ static ",
            BufferKind::Temp => "/* tmp */ ",
            BufferKind::Const => "/* cst */ const ",
        };
        let cty = Arch::c_scalar_type(b.ty.dtype);
        if b.ty.len() == 1 {
            out.push_str(&format!("{qual}{cty} {};\n", b.name));
        } else {
            out.push_str(&format!("{qual}{cty} {}[{}];\n", b.name, b.ty.len()));
        }
    }
    out.push_str(&format!(
        "\nvoid {}_step(void) {{\n",
        sanitize_fn(&prog.name)
    ));
    render_block(prog, &prog.body, 1, &mut out);
    out.push_str("}\n");
    out
}

fn sanitize_fn(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn elem(prog: &Program, r: &ElemRef) -> String {
    let b = prog.buffer(r.buf);
    if b.ty.len() == 1 {
        b.name.clone()
    } else {
        format!("{}[{}]", b.name, r.index.render())
    }
}

fn scalar_stmt(prog: &Program, op: &ScalarOp, dst: &ElemRef, srcs: &[ElemRef]) -> String {
    let d = elem(prog, dst);
    let s: Vec<String> = srcs.iter().map(|r| elem(prog, r)).collect();
    match op {
        ScalarOp::Elem(e) => match e {
            ElemOp::Add => format!("{d} = {} + {};", s[0], s[1]),
            ElemOp::Sub => format!("{d} = {} - {};", s[0], s[1]),
            ElemOp::Mul => format!("{d} = {} * {};", s[0], s[1]),
            ElemOp::Div => format!("{d} = {} / {};", s[0], s[1]),
            ElemOp::Shr(n) => format!("{d} = {} >> {n};", s[0]),
            ElemOp::Shl(n) => format!("{d} = {} << {n};", s[0]),
            ElemOp::BitNot => format!("{d} = ~{};", s[0]),
            ElemOp::BitAnd => format!("{d} = {} & {};", s[0], s[1]),
            ElemOp::BitOr => format!("{d} = {} | {};", s[0], s[1]),
            ElemOp::BitXor => format!("{d} = {} ^ {};", s[0], s[1]),
            ElemOp::Min => format!("{d} = MIN({}, {});", s[0], s[1]),
            ElemOp::Max => format!("{d} = MAX({}, {});", s[0], s[1]),
            ElemOp::Abs => format!("{d} = ABS({});", s[0]),
            ElemOp::Abd => format!("{d} = ABS({} - {});", s[0], s[1]),
            ElemOp::Recp => format!("{d} = 1.0f / {};", s[0]),
            ElemOp::Sqrt => format!("{d} = sqrtf({});", s[0]),
            ElemOp::Neg => format!("{d} = -{};", s[0]),
        },
        ScalarOp::Select => format!("{d} = ({} > 0) ? {} : {};", s[0], s[1], s[2]),
        ScalarOp::Clamp { lo, hi } => {
            format!("{d} = CLAMP({}, {lo}, {hi});", s[0])
        }
        ScalarOp::Cast => format!(
            "{d} = ({}){};",
            Arch::c_scalar_type(prog.buffer(dst.buf).ty.dtype),
            s[0]
        ),
        ScalarOp::Copy => format!("{d} = {};", s[0]),
    }
}

fn render_block(prog: &Program, stmts: &[Stmt], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for s in stmts {
        match s {
            Stmt::Loop {
                start,
                end,
                step,
                body,
            } => {
                out.push_str(&format!(
                    "{pad}for (size_t i = {start}; i < {end}; i += {step}) {{\n"
                ));
                render_block(prog, body, depth + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Scalar { op, dst, srcs } => {
                out.push_str(&format!("{pad}{}\n", scalar_stmt(prog, op, dst, srcs)));
            }
            Stmt::VLoad { reg, buf, index } => {
                let (dtype, _) = prog.reg_types[reg.0];
                let b = prog.buffer(*buf);
                let ptr = format!("&{}[{}]", b.name, index.render());
                out.push_str(&format!(
                    "{pad}{} {} = {};\n",
                    prog.arch.vector_type(dtype),
                    prog.reg_names[reg.0],
                    prog.arch.load_expr(dtype, &ptr)
                ));
            }
            Stmt::VStore { buf, index, reg } => {
                let (dtype, _) = prog.reg_types[reg.0];
                let b = prog.buffer(*buf);
                let ptr = format!("&{}[{}]", b.name, index.render());
                out.push_str(&format!(
                    "{pad}{}\n",
                    prog.arch.store_stmt(dtype, &ptr, &prog.reg_names[reg.0])
                ));
            }
            Stmt::VOp { code, dst, .. } => {
                let (dtype, _) = prog.reg_types[dst.0];
                out.push_str(&format!("{pad}{} {}\n", prog.arch.vector_type(dtype), code));
            }
            Stmt::KernelCall {
                actor,
                impl_name,
                inputs,
                output,
            } => {
                let args: Vec<String> = inputs
                    .iter()
                    .map(|b| prog.buffer(*b).name.clone())
                    .chain(std::iter::once(prog.buffer(*output).name.clone()))
                    .collect();
                out.push_str(&format!(
                    "{pad}{}_{}({});\n",
                    actor.name().to_lowercase(),
                    impl_name,
                    args.join(", ")
                ));
            }
            Stmt::Copy { dst, src } => {
                let d = prog.buffer(*dst);
                let s = prog.buffer(*src);
                out.push_str(&format!(
                    "{pad}memcpy({}, {}, sizeof({}));\n",
                    d.name, s.name, d.name
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodeGenerator, HcgGen};
    use hcg_model::library;

    #[test]
    fn fig4_source_contains_listing1_lines() {
        let gen = HcgGen::new();
        let p = gen.generate(&library::fig4_model(), Arch::Neon128).unwrap();
        let src = to_c_source(&p);
        // The paper's Listing 1, modulo variable spelling.
        assert!(
            src.contains("int32x4_t a_batch = vld1q_s32(&a[0]);"),
            "{src}"
        );
        assert!(
            src.contains("Sub_batch = vsubq_s32(b_batch, c_batch);"),
            "{src}"
        );
        assert!(
            src.contains("Shr_batch = vhaddq_s32(a_batch, Sub_batch);"),
            "{src}"
        );
        assert!(
            src.contains("AddM_batch = vmlaq_s32(Sub_batch, Sub_batch, d_batch);"),
            "{src}"
        );
        assert!(src.contains("vst1q_s32(&Shr_out[0], Shr_batch);"), "{src}");
    }

    #[test]
    fn loops_and_kernel_calls_render() {
        let gen = HcgGen::new();
        let p = gen
            .generate(&library::fft_model(1024), Arch::Neon128)
            .unwrap();
        let src = to_c_source(&p);
        assert!(
            src.contains("for (size_t i = 0; i < 1024; i += 4)"),
            "{src}"
        );
        assert!(src.contains("fft_radix4("), "{src}");
    }

    #[test]
    fn intel_source_uses_intel_spelling() {
        let gen = HcgGen::new();
        let p = gen
            .generate(&library::fir_model(1024, 4), Arch::Avx256)
            .unwrap();
        let src = to_c_source(&p);
        assert!(src.contains("_mm256_"), "{src}");
        assert!(src.contains("__m256i"), "{src}");
    }
}
