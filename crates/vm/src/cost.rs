//! The calibrated cost model: cycles per model step for a generated
//! program on an architecture × compiler pair.
//!
//! This is the substitution for the paper's physical ARM Cortex-A72 and
//! Intel i7-8700 testbeds (see DESIGN.md §1). The model charges per-element
//! memory traffic and arithmetic for scalar code, per-issue costs for SIMD
//! code, and — crucially for reproducing the paper's Figure 5(b) anomaly —
//! a *scattered-SIMD spill penalty*: a `GccLike` compiler fails to keep
//! SIMD temporaries in vector registers, so every vector store to a
//! temporary is charged a store+reload round trip ("frequent data exchange
//! between memory and vector registers … memory latency becomes the main
//! performance bottleneck", paper §4.2).

use crate::program::{BufferKind, Program, ScalarOp, Stmt};
use hcg_isa::Arch;
use hcg_kernels::{CodeLibrary, KernelSize};
use hcg_model::op::ElemOp;
use std::fmt;

/// Compiler behaviour profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Compiler {
    /// GCC-like: solid scalar code, but does not coalesce scattered SIMD
    /// temporaries into registers.
    GccLike,
    /// Clang-like: slightly better scalar scheduling and keeps scattered
    /// SIMD temporaries in registers.
    ClangLike,
}

impl Compiler {
    /// Both profiles.
    pub const ALL: [Compiler; 2] = [Compiler::GccLike, Compiler::ClangLike];

    /// Display name (matching the paper's plots).
    pub const fn name(self) -> &'static str {
        match self {
            Compiler::GccLike => "gcc",
            Compiler::ClangLike => "clang",
        }
    }
}

impl fmt::Display for Compiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A target platform: architecture × compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Architecture (vector width, clock).
    pub arch: Arch,
    /// Compiler profile.
    pub compiler: Compiler,
    /// Extra per-issue cycles charged to *fused* SIMD operations (three or
    /// more register sources — e.g. a multiply-accumulate serialising on
    /// its accumulator operand on an in-order core). `0` (the default)
    /// reproduces the paper's pure cost-table numbers; profile-guided
    /// calibration raises it to model observed fusion latency.
    pub fused_latency: u64,
}

impl CostModel {
    /// Construct a platform model.
    pub const fn new(arch: Arch, compiler: Compiler) -> Self {
        CostModel {
            arch,
            compiler,
            fused_latency: 0,
        }
    }

    /// This model with `cycles` extra latency on fused (≥ 3-source) SIMD
    /// operations.
    pub fn with_fused_latency(mut self, cycles: u64) -> Self {
        self.fused_latency = cycles;
        self
    }

    /// Per-issue price of one SIMD operation: its cost-table entry plus
    /// the fused-op latency when it reads three or more sources. Shared by
    /// [`CostModel::stmt_cycles`] and the profiler's per-instruction
    /// breakdown so both always agree.
    pub fn vop_cycles(&self, cost: u32, n_srcs: usize) -> u64 {
        cost as u64 + if n_srcs >= 3 { self.fused_latency } else { 0 }
    }

    /// Clock frequency used to convert cycles to seconds. ARM Cortex-A72
    /// (paper's embedded board) vs Intel i7-8700.
    pub fn clock_hz(&self) -> f64 {
        match self.arch {
            Arch::Neon128 => 1.5e9,
            Arch::Sse128 | Arch::Avx256 => 3.7e9,
        }
    }

    /// Cycles for one scalar arithmetic operation.
    fn scalar_op_cycles(&self, op: &ScalarOp) -> u64 {
        match op {
            ScalarOp::Elem(e) => match e {
                ElemOp::Mul => 3,
                ElemOp::Div => 18,
                ElemOp::Sqrt => 18,
                ElemOp::Recp => 10,
                _ => 1,
            },
            ScalarOp::Select => 2,
            ScalarOp::Clamp { .. } => 2,
            ScalarOp::Cast => 2,
            ScalarOp::Copy => 1,
        }
    }

    /// Per-element memory access cost (scalar load or store).
    fn scalar_mem_cycles(&self) -> u64 {
        1
    }

    /// Vector load/store cost.
    fn vector_mem_cycles(&self) -> u64 {
        match self.arch {
            Arch::Neon128 | Arch::Sse128 => 2,
            Arch::Avx256 => 3,
        }
    }

    /// The scattered-SIMD spill penalty charged per vector store to a
    /// temporary buffer (see module docs).
    fn spill_penalty(&self) -> u64 {
        match self.compiler {
            Compiler::GccLike => 10,
            Compiler::ClangLike => 1,
        }
    }

    /// Loop overhead per iteration (compare + increment + branch).
    fn loop_iter_cycles(&self) -> u64 {
        2
    }

    /// Scalar-code quality factor: Clang's scheduler is marginally better
    /// on the scalar-heavy baselines (numerator/denominator fixed point).
    fn scalar_quality(&self) -> (u64, u64) {
        match self.compiler {
            Compiler::GccLike => (1, 1),
            Compiler::ClangLike => (9, 10),
        }
    }

    /// Cycles charged per abstract kernel operation (the intensive-kernel
    /// library counts multiply-accumulate-ish operations).
    fn kernel_op_cycles_num_den(&self) -> (u64, u64) {
        // Slightly cheaper than scalar IR statements: library kernels are
        // tight loops without per-element dispatch.
        (3, 2)
    }

    /// Estimated cycles for one program step: the sum of [`Self::stmt_cycles`]
    /// over the program's top-level statements. The profiler relies on this
    /// identity — per-statement attribution sums exactly to the total.
    ///
    /// Loop trip counts are static in the IR, so the estimate is exact for
    /// the cost model's definition of cost.
    pub fn cycles(&self, prog: &Program, lib: &CodeLibrary) -> u64 {
        self.block_cycles(prog, lib, &prog.body)
    }

    fn block_cycles(&self, prog: &Program, lib: &CodeLibrary, stmts: &[Stmt]) -> u64 {
        stmts.iter().map(|s| self.stmt_cycles(prog, lib, s)).sum()
    }

    /// Cycles charged to one statement, including everything nested inside
    /// it (a loop's cost covers its whole body across all trips).
    pub fn stmt_cycles(&self, prog: &Program, lib: &CodeLibrary, s: &Stmt) -> u64 {
        let (qn, qd) = self.scalar_quality();
        match s {
            Stmt::Loop {
                start,
                end,
                step,
                body,
            } => {
                let trips = if end > start {
                    (end - start).div_ceil(*step)
                } else {
                    0
                } as u64;
                2 + trips * (self.loop_iter_cycles() + self.block_cycles(prog, lib, body))
            }
            Stmt::Scalar { op, srcs, .. } => {
                let compute = self.scalar_op_cycles(op);
                let mem = (srcs.len() as u64 + 1) * self.scalar_mem_cycles();
                (compute + mem) * qn / qd
            }
            Stmt::VLoad { .. } => self.vector_mem_cycles(),
            Stmt::VStore { buf, .. } => {
                let mut c = self.vector_mem_cycles();
                if prog.buffer(*buf).kind == BufferKind::Temp {
                    c += self.spill_penalty();
                }
                c
            }
            Stmt::VOp { cost, srcs, .. } => self.vop_cycles(*cost, srcs.len()),
            Stmt::KernelCall {
                actor,
                impl_name,
                inputs,
                ..
            } => {
                let in_types: Vec<_> = inputs.iter().map(|b| prog.buffer(*b).ty).collect();
                let ops = KernelSize::from_inputs(*actor, &in_types)
                    .and_then(|size| lib.find(*actor, impl_name).map(|k| k.op_count(&size)))
                    .unwrap_or(0);
                let (kn, kd) = self.kernel_op_cycles_num_den();
                ops * kn / kd
            }
            Stmt::Copy { dst, .. } => 2 * prog.buffer(*dst).ty.len() as u64,
        }
    }

    /// Wall-clock estimate for `iterations` model steps, in seconds — the
    /// quantity the paper's Table 2 / Figure 5 report.
    pub fn time_seconds(&self, prog: &Program, lib: &CodeLibrary, iterations: u64) -> f64 {
        (self.cycles(prog, lib) * iterations) as f64 / self.clock_hz()
    }
}

/// The four platform configurations of paper Figure 5, in subfigure order:
/// (a) ARM+GCC, (b) Intel+GCC, (c) ARM+Clang, (d) Intel+Clang. The Intel
/// entries use AVX2 (what the paper's i7-8700 supports).
pub fn paper_platforms() -> [CostModel; 4] {
    [
        CostModel::new(Arch::Neon128, Compiler::GccLike),
        CostModel::new(Arch::Avx256, Compiler::GccLike),
        CostModel::new(Arch::Neon128, Compiler::ClangLike),
        CostModel::new(Arch::Avx256, Compiler::ClangLike),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BufferKind, ElemRef, IndexExpr, Program};
    use hcg_model::{DataType, SignalType};

    fn lib() -> CodeLibrary {
        CodeLibrary::new()
    }

    fn scalar_loop(n: usize) -> Program {
        let ty = SignalType::vector(DataType::I32, n);
        let mut p = Program::new("s", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        p.body.push(Stmt::Loop {
            start: 0,
            end: n,
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Add),
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![
                    ElemRef {
                        buf: a,
                        index: IndexExpr::Loop(0),
                    },
                    ElemRef {
                        buf: a,
                        index: IndexExpr::Loop(0),
                    },
                ],
            }],
        });
        p
    }

    fn simd_loop(n: usize, store_kind: BufferKind) -> Program {
        let ty = SignalType::vector(DataType::I32, n);
        let mut p = Program::new("v", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, store_kind, None);
        let ra = p.add_reg(DataType::I32, 4);
        let ro = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::Loop {
            start: 0,
            end: n,
            step: 4,
            body: vec![
                Stmt::VLoad {
                    reg: ra,
                    buf: a,
                    index: IndexExpr::Loop(0),
                },
                Stmt::VOp {
                    instr: "vaddq_s32".into(),
                    pattern: "Add(I1, I2)".parse().unwrap(),
                    cost: 1,
                    dst: ro,
                    srcs: vec![ra, ra],
                    code: String::new(),
                },
                Stmt::VStore {
                    buf: o,
                    index: IndexExpr::Loop(0),
                    reg: ro,
                },
            ],
        });
        p
    }

    #[test]
    fn simd_beats_scalar() {
        let l = lib();
        let m = CostModel::new(Arch::Neon128, Compiler::GccLike);
        let s = m.cycles(&scalar_loop(1024), &l);
        let v = m.cycles(&simd_loop(1024, BufferKind::Output), &l);
        assert!(
            v * 2 < s,
            "SIMD ({v}) should be well under half of scalar ({s})"
        );
    }

    #[test]
    fn spill_penalty_hits_gcc_temp_stores_only() {
        let l = lib();
        let gcc = CostModel::new(Arch::Avx256, Compiler::GccLike);
        let clang = CostModel::new(Arch::Avx256, Compiler::ClangLike);
        let to_temp = simd_loop(1024, BufferKind::Temp);
        let to_out = simd_loop(1024, BufferKind::Output);
        // GCC charges heavily for scattered temps…
        assert!(gcc.cycles(&to_temp, &l) > gcc.cycles(&to_out, &l) * 2);
        // …Clang barely cares.
        let c_ratio = clang.cycles(&to_temp, &l) as f64 / clang.cycles(&to_out, &l) as f64;
        assert!(c_ratio < 1.4, "clang ratio {c_ratio}");
    }

    #[test]
    fn kernel_call_priced_by_impl() {
        let l = lib();
        let m = CostModel::new(Arch::Neon128, Compiler::GccLike);
        let mk = |impl_name: &str| {
            let mut p = Program::new("k", "test", Arch::Neon128);
            let x = p.add_buffer(
                "x",
                SignalType::vector(DataType::F32, 1024),
                BufferKind::Input,
                None,
            );
            let o = p.add_buffer(
                "o",
                SignalType::vector(DataType::F32, 2048),
                BufferKind::Output,
                None,
            );
            p.body.push(Stmt::KernelCall {
                actor: hcg_model::ActorKind::Fft,
                impl_name: impl_name.into(),
                inputs: vec![x],
                output: o,
            });
            p
        };
        let naive = m.cycles(&mk("naive_dft"), &l);
        let radix4 = m.cycles(&mk("radix4"), &l);
        assert!(
            radix4 * 10 < naive,
            "radix-4 ({radix4}) must be ≫ cheaper than naive ({naive})"
        );
    }

    #[test]
    fn time_scales_with_iterations_and_clock() {
        let l = lib();
        let arm = CostModel::new(Arch::Neon128, Compiler::GccLike);
        let p = scalar_loop(64);
        let t1 = arm.time_seconds(&p, &l, 10_000);
        let t2 = arm.time_seconds(&p, &l, 20_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        let intel = CostModel::new(Arch::Avx256, Compiler::GccLike);
        assert!(intel.clock_hz() > arm.clock_hz());
    }

    #[test]
    fn empty_loop_costs_setup_only() {
        let l = lib();
        let m = CostModel::new(Arch::Neon128, Compiler::GccLike);
        let mut p = Program::new("e", "test", Arch::Neon128);
        p.body.push(Stmt::Loop {
            start: 4,
            end: 4,
            step: 1,
            body: vec![],
        });
        assert_eq!(m.cycles(&p, &l), 2);
    }

    #[test]
    fn paper_platforms_order() {
        let p = paper_platforms();
        assert_eq!(p[0].arch, Arch::Neon128);
        assert_eq!(p[0].compiler, Compiler::GccLike);
        assert_eq!(p[1].arch, Arch::Avx256);
        assert_eq!(p[3].compiler, Compiler::ClangLike);
    }

    #[test]
    fn fused_latency_charges_only_three_source_vops() {
        let m = CostModel::new(Arch::Neon128, Compiler::GccLike);
        assert_eq!(m.fused_latency, 0);
        assert_eq!(m.vop_cycles(2, 3), 2);
        let fused = m.with_fused_latency(3);
        // Two-source ops keep their table cost; fused ops pay the extra.
        assert_eq!(fused.vop_cycles(1, 2), 1);
        assert_eq!(fused.vop_cycles(2, 3), 5);
        // stmt_cycles uses the same helper.
        let l = lib();
        let mut p = Program::new("f", "test", Arch::Neon128);
        let r = p.add_reg(DataType::I32, 4);
        let vop = Stmt::VOp {
            instr: "vmlaq_s32".into(),
            pattern: "Add(I1, Mul(I2, I3))".parse().unwrap(),
            cost: 2,
            dst: r,
            srcs: vec![r, r, r],
            code: String::new(),
        };
        assert_eq!(m.stmt_cycles(&p, &l, &vop), 2);
        assert_eq!(fused.stmt_cycles(&p, &l, &vop), 5);
    }
}
