//! Value-correct execution of generated programs — the machinery behind the
//! paper's §4.1 claim that all generators' "computation results of each
//! execution are consistent".

use crate::program::{BufferId, ElemRef, Program, RegId, ScalarOp, Stmt};
use hcg_isa::{Pattern, PatternArg};
use hcg_kernels::{CodeLibrary, KernelError};
use hcg_model::op::{eval_binary_f, eval_binary_i, eval_unary_f, eval_unary_i, wrap_int};
use hcg_model::{DataType, Tensor};
use std::collections::BTreeSet;
use std::fmt;

/// Runtime error during program execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Element access outside a buffer.
    OutOfBounds {
        /// Buffer name.
        buffer: String,
        /// Offending index.
        index: usize,
    },
    /// Input tensor did not match the buffer's declared type.
    BadInput(String),
    /// Unknown buffer name.
    UnknownBuffer(String),
    /// Kernel library failure.
    Kernel(KernelError),
    /// Kernel implementation missing from the library.
    MissingKernel(String),
    /// Nested loops are not part of the IR contract.
    NestedLoop,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { buffer, index } => {
                write!(f, "access to element {index} outside buffer {buffer:?}")
            }
            ExecError::BadInput(m) => write!(f, "bad input: {m}"),
            ExecError::UnknownBuffer(n) => write!(f, "unknown buffer {n:?}"),
            ExecError::Kernel(e) => write!(f, "{e}"),
            ExecError::MissingKernel(n) => write!(f, "kernel implementation {n:?} not in library"),
            ExecError::NestedLoop => f.write_str("nested loops are not supported by the IR"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<KernelError> for ExecError {
    fn from(e: KernelError) -> Self {
        ExecError::Kernel(e)
    }
}

/// Typed storage for one buffer or register.
#[derive(Debug, Clone, PartialEq)]
enum Mem {
    F(Vec<f64>),
    I(Vec<i64>),
}

impl Mem {
    fn zeros(dtype: DataType, len: usize) -> Mem {
        if dtype.is_float() {
            Mem::F(vec![0.0; len])
        } else {
            Mem::I(vec![0; len])
        }
    }

    fn len(&self) -> usize {
        match self {
            Mem::F(v) => v.len(),
            Mem::I(v) => v.len(),
        }
    }
}

/// The buffers one top-level statement touched during execution, as indices
/// into `Program::buffers`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StmtAccess {
    /// Buffers read.
    pub reads: BTreeSet<usize>,
    /// Buffers written.
    pub writes: BTreeSet<usize>,
}

/// Opt-in record of every buffer access a [`Machine`] performed, folded per
/// top-level statement of the program body. Loop iterations accumulate into
/// their loop's entry; register traffic is not memory traffic and is not
/// recorded. This is the dynamic ground truth the static
/// effect analysis in `hcg-verify` is pinned against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessLog {
    /// One entry per top-level statement of `Program::body`.
    pub per_stmt: Vec<StmtAccess>,
}

/// An executable instance of a [`Program`]: owns buffer memory and the
/// vector register file, and executes one model step at a time.
///
/// # Examples
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct Machine<'p> {
    prog: &'p Program,
    lib: &'p CodeLibrary,
    mem: Vec<Mem>,
    regs: Vec<Mem>,
    log: Option<AccessLog>,
    cur_stmt: usize,
}

impl<'p> Machine<'p> {
    /// Instantiate a program: allocates buffers, applies `init` data to
    /// constants and states.
    pub fn new(prog: &'p Program, lib: &'p CodeLibrary) -> Self {
        let mut m = Machine {
            prog,
            lib,
            mem: Vec::new(),
            regs: prog
                .reg_types
                .iter()
                .map(|(d, l)| Mem::zeros(*d, *l))
                .collect(),
            log: None,
            cur_stmt: 0,
        };
        m.mem = prog
            .buffers
            .iter()
            .map(|b| {
                let mut mem = Mem::zeros(b.ty.dtype, b.ty.len());
                if let Some(init) = &b.init {
                    match &mut mem {
                        Mem::F(v) => {
                            for (i, slot) in v.iter_mut().enumerate() {
                                *slot = init.get(i).or(init.first()).copied().unwrap_or(0.0);
                            }
                        }
                        Mem::I(v) => {
                            for (i, slot) in v.iter_mut().enumerate() {
                                let raw = init.get(i).or(init.first()).copied().unwrap_or(0.0);
                                *slot = wrap_int(b.ty.dtype, raw.round() as i64);
                            }
                        }
                    }
                }
                mem
            })
            .collect();
        m
    }

    /// Reset states and temporaries to their initial contents.
    pub fn reset(&mut self) {
        let fresh = Machine::new(self.prog, self.lib);
        self.mem = fresh.mem;
        self.regs = fresh.regs;
    }

    /// Write an input buffer by name.
    ///
    /// # Errors
    ///
    /// Fails when the name is unknown or the tensor's type mismatches the
    /// declaration.
    pub fn set_input(&mut self, name: &str, value: &Tensor) -> Result<(), ExecError> {
        let id = self
            .prog
            .buffer_by_name(name)
            .ok_or_else(|| ExecError::UnknownBuffer(name.to_owned()))?;
        let decl = self.prog.buffer(id);
        if decl.ty != value.ty {
            return Err(ExecError::BadInput(format!(
                "buffer {name:?} is {}, tensor is {}",
                decl.ty, value.ty
            )));
        }
        self.mem[id.0] = match decl.ty.dtype.is_float() {
            true => Mem::F(value.as_f64()),
            false => Mem::I(value.as_i64()),
        };
        Ok(())
    }

    /// Read any buffer by name as a tensor.
    ///
    /// # Errors
    ///
    /// Fails when the name is unknown.
    pub fn read_buffer(&self, name: &str) -> Result<Tensor, ExecError> {
        let id = self
            .prog
            .buffer_by_name(name)
            .ok_or_else(|| ExecError::UnknownBuffer(name.to_owned()))?;
        let decl = self.prog.buffer(id);
        let t = match &self.mem[id.0] {
            Mem::F(v) => Tensor::from_f64(decl.ty, v.clone()),
            Mem::I(v) => Tensor::from_i64(decl.ty, v.clone()),
        };
        t.map_err(|e| ExecError::BadInput(e.to_string()))
    }

    /// Start recording buffer accesses into a fresh [`AccessLog`]. Each
    /// subsequent [`step`](Machine::step) accumulates into the same log
    /// until [`take_access_log`](Machine::take_access_log) removes it.
    pub fn enable_access_log(&mut self) {
        self.log = Some(AccessLog {
            per_stmt: vec![StmtAccess::default(); self.prog.body.len()],
        });
    }

    /// Stop recording and return the accumulated log, if any.
    pub fn take_access_log(&mut self) -> Option<AccessLog> {
        self.log.take()
    }

    fn log_read(&mut self, buf: BufferId) {
        if let Some(log) = &mut self.log {
            log.per_stmt[self.cur_stmt].reads.insert(buf.0);
        }
    }

    fn log_write(&mut self, buf: BufferId) {
        if let Some(log) = &mut self.log {
            log.per_stmt[self.cur_stmt].writes.insert(buf.0);
        }
    }

    /// Execute one model step.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on out-of-bounds access or kernel failures.
    pub fn step(&mut self) -> Result<(), ExecError> {
        let body = self.prog.body.clone();
        for (i, s) in body.iter().enumerate() {
            self.cur_stmt = i;
            self.exec_stmt(s, None)?;
        }
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt], loop_var: Option<usize>) -> Result<(), ExecError> {
        for s in stmts {
            self.exec_stmt(s, loop_var)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, loop_var: Option<usize>) -> Result<(), ExecError> {
        match stmt {
            Stmt::Loop {
                start,
                end,
                step,
                body,
            } => {
                if loop_var.is_some() {
                    return Err(ExecError::NestedLoop);
                }
                debug_assert!(*step > 0);
                let mut i = *start;
                while i < *end {
                    self.exec_block(body, Some(i))?;
                    i += step;
                }
                Ok(())
            }
            Stmt::Scalar { op, dst, srcs } => self.exec_scalar(op, *dst, srcs, loop_var),
            Stmt::VLoad { reg, buf, index } => {
                let i0 = index.eval(loop_var.unwrap_or(0));
                let (dtype, lanes) = self.prog.reg_types[reg.0];
                self.check_bounds(*buf, i0 + lanes - 1)?;
                self.log_read(*buf);
                let _ = dtype;
                self.regs[reg.0] = match &self.mem[buf.0] {
                    Mem::F(v) => Mem::F(v[i0..i0 + lanes].to_vec()),
                    Mem::I(v) => Mem::I(v[i0..i0 + lanes].to_vec()),
                };
                Ok(())
            }
            Stmt::VStore { buf, index, reg } => {
                let i0 = index.eval(loop_var.unwrap_or(0));
                let lanes = self.regs[reg.0].len();
                self.check_bounds(*buf, i0 + lanes - 1)?;
                self.log_write(*buf);
                let src = self.regs[reg.0].clone();
                match (&mut self.mem[buf.0], &src) {
                    (Mem::F(dst), Mem::F(s)) => dst[i0..i0 + lanes].copy_from_slice(s),
                    (Mem::I(dst), Mem::I(s)) => dst[i0..i0 + lanes].copy_from_slice(s),
                    (Mem::F(dst), Mem::I(s)) => {
                        for (d, &x) in dst[i0..i0 + lanes].iter_mut().zip(s) {
                            *d = x as f64;
                        }
                    }
                    (Mem::I(dst), Mem::F(s)) => {
                        let dt = self.prog.buffer(*buf).ty.dtype;
                        for (d, &x) in dst[i0..i0 + lanes].iter_mut().zip(s) {
                            *d = wrap_int(dt, x.round() as i64);
                        }
                    }
                }
                Ok(())
            }
            Stmt::VOp {
                pattern, dst, srcs, ..
            } => self.exec_vop(pattern, *dst, srcs),
            Stmt::KernelCall {
                actor,
                impl_name,
                inputs,
                output,
            } => {
                let kernel = self
                    .lib
                    .find(*actor, impl_name)
                    .ok_or_else(|| ExecError::MissingKernel(format!("{actor}::{impl_name}")))?;
                let in_tensors: Result<Vec<Tensor>, ExecError> = inputs
                    .iter()
                    .map(|b| self.read_buffer(&self.prog.buffer(*b).name.clone()))
                    .collect();
                for b in inputs {
                    self.log_read(*b);
                }
                self.log_write(*output);
                let result = kernel.run(&in_tensors?)?;
                let decl = self.prog.buffer(*output);
                if result.len() != decl.ty.len() {
                    return Err(ExecError::BadInput(format!(
                        "kernel {} produced {} elements for buffer of {}",
                        impl_name,
                        result.len(),
                        decl.ty.len()
                    )));
                }
                self.mem[output.0] = if decl.ty.dtype.is_float() {
                    Mem::F(result.as_f64())
                } else {
                    Mem::I(result.as_i64())
                };
                Ok(())
            }
            Stmt::Copy { dst, src } => {
                self.log_read(*src);
                self.log_write(*dst);
                let data = self.mem[src.0].clone();
                let n = self.mem[dst.0].len().min(data.len());
                match (&mut self.mem[dst.0], &data) {
                    (Mem::F(d), Mem::F(s)) => d[..n].copy_from_slice(&s[..n]),
                    (Mem::I(d), Mem::I(s)) => d[..n].copy_from_slice(&s[..n]),
                    (Mem::F(d), Mem::I(s)) => {
                        for (x, &y) in d[..n].iter_mut().zip(s) {
                            *x = y as f64;
                        }
                    }
                    (Mem::I(d), Mem::F(s)) => {
                        let dt = self.prog.buffer(*dst).ty.dtype;
                        for (x, &y) in d[..n].iter_mut().zip(s) {
                            *x = wrap_int(dt, y.round() as i64);
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn check_bounds(&self, buf: BufferId, last: usize) -> Result<(), ExecError> {
        if last >= self.mem[buf.0].len() {
            return Err(ExecError::OutOfBounds {
                buffer: self.prog.buffer(buf).name.clone(),
                index: last,
            });
        }
        Ok(())
    }

    fn read_elem(&self, r: ElemRef, loop_var: Option<usize>) -> Result<(f64, i64), ExecError> {
        let i = r.index.eval(loop_var.unwrap_or(0));
        self.check_bounds(r.buf, i)?;
        Ok(match &self.mem[r.buf.0] {
            Mem::F(v) => (v[i], v[i].round() as i64),
            Mem::I(v) => (v[i] as f64, v[i]),
        })
    }

    fn exec_scalar(
        &mut self,
        op: &ScalarOp,
        dst: ElemRef,
        srcs: &[ElemRef],
        loop_var: Option<usize>,
    ) -> Result<(), ExecError> {
        let dt = self.prog.buffer(dst.buf).ty.dtype;
        let vals: Result<Vec<(f64, i64)>, ExecError> =
            srcs.iter().map(|s| self.read_elem(*s, loop_var)).collect();
        let vals = vals?;
        for s in srcs {
            self.log_read(s.buf);
        }
        self.log_write(dst.buf);
        let (fv, iv) = match op {
            ScalarOp::Elem(e) => {
                if dt.is_float() {
                    let f = match e.arity() {
                        1 => eval_unary_f(*e, vals[0].0),
                        _ => eval_binary_f(*e, vals[0].0, vals[1].0),
                    };
                    (f, f.round() as i64)
                } else {
                    let i = match e.arity() {
                        1 => eval_unary_i(*e, dt, vals[0].1),
                        _ => eval_binary_i(*e, dt, vals[0].1, vals[1].1),
                    };
                    (i as f64, i)
                }
            }
            ScalarOp::Select => {
                if vals[0].0 > 0.0 {
                    vals[1]
                } else {
                    vals[2]
                }
            }
            ScalarOp::Clamp { lo, hi } => {
                let f = vals[0].0.clamp(*lo, *hi);
                (f, f.round() as i64)
            }
            ScalarOp::Cast | ScalarOp::Copy => vals[0],
        };
        // Inline write (avoiding the helper's borrow gymnastics).
        let idx = dst.index.eval(loop_var.unwrap_or(0));
        self.check_bounds(dst.buf, idx)?;
        match &mut self.mem[dst.buf.0] {
            Mem::F(v) => v[idx] = fv,
            Mem::I(v) => v[idx] = wrap_int(dt, iv),
        }
        Ok(())
    }

    fn exec_vop(&mut self, pattern: &Pattern, dst: RegId, srcs: &[RegId]) -> Result<(), ExecError> {
        let (dtype, lanes) = self.prog.reg_types[dst.0];
        let out: Mem = if dtype.is_float() {
            let mut v = vec![0.0; lanes];
            for (lane, slot) in v.iter_mut().enumerate() {
                *slot = self.eval_pattern_f(pattern, srcs, lane);
            }
            Mem::F(v)
        } else {
            let mut v = vec![0i64; lanes];
            for (lane, slot) in v.iter_mut().enumerate() {
                *slot = self.eval_pattern_i(pattern, srcs, lane, dtype);
            }
            Mem::I(v)
        };
        self.regs[dst.0] = out;
        Ok(())
    }

    fn reg_lane_f(&self, reg: RegId, lane: usize) -> f64 {
        match &self.regs[reg.0] {
            Mem::F(v) => v[lane],
            Mem::I(v) => v[lane] as f64,
        }
    }

    fn reg_lane_i(&self, reg: RegId, lane: usize) -> i64 {
        match &self.regs[reg.0] {
            Mem::F(v) => v[lane].round() as i64,
            Mem::I(v) => v[lane],
        }
    }

    fn eval_arg_f(&self, arg: &PatternArg, srcs: &[RegId], lane: usize) -> f64 {
        match arg {
            PatternArg::Input(slot) => self.reg_lane_f(srcs[*slot], lane),
            PatternArg::Node(p) => self.eval_pattern_f(p, srcs, lane),
        }
    }

    fn eval_pattern_f(&self, p: &Pattern, srcs: &[RegId], lane: usize) -> f64 {
        match p.op.arity() {
            1 => eval_unary_f(p.op, self.eval_arg_f(&p.args[0], srcs, lane)),
            _ => eval_binary_f(
                p.op,
                self.eval_arg_f(&p.args[0], srcs, lane),
                self.eval_arg_f(&p.args[1], srcs, lane),
            ),
        }
    }

    fn eval_arg_i(&self, arg: &PatternArg, srcs: &[RegId], lane: usize, dt: DataType) -> i64 {
        match arg {
            PatternArg::Input(slot) => self.reg_lane_i(srcs[*slot], lane),
            PatternArg::Node(p) => self.eval_pattern_i(p, srcs, lane, dt),
        }
    }

    fn eval_pattern_i(&self, p: &Pattern, srcs: &[RegId], lane: usize, dt: DataType) -> i64 {
        match p.op.arity() {
            1 => eval_unary_i(p.op, dt, self.eval_arg_i(&p.args[0], srcs, lane, dt)),
            _ => eval_binary_i(
                p.op,
                dt,
                self.eval_arg_i(&p.args[0], srcs, lane, dt),
                self.eval_arg_i(&p.args[1], srcs, lane, dt),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BufferKind, IndexExpr};
    use hcg_isa::Arch;
    use hcg_model::op::ElemOp;
    use hcg_model::SignalType;

    fn lib() -> CodeLibrary {
        CodeLibrary::new()
    }

    fn i32vec(vals: Vec<i64>) -> Tensor {
        let n = vals.len();
        Tensor::from_i64(SignalType::vector(DataType::I32, n), vals).unwrap()
    }

    /// out[i] = a[i] + b[i] as a scalar loop.
    fn scalar_add_program(n: usize) -> Program {
        let ty = SignalType::vector(DataType::I32, n);
        let mut p = Program::new("add", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let b = p.add_buffer("b", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        p.body.push(Stmt::Loop {
            start: 0,
            end: n,
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Add),
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![
                    ElemRef {
                        buf: a,
                        index: IndexExpr::Loop(0),
                    },
                    ElemRef {
                        buf: b,
                        index: IndexExpr::Loop(0),
                    },
                ],
            }],
        });
        p
    }

    #[test]
    fn scalar_loop_add() {
        let p = scalar_add_program(4);
        let l = lib();
        let mut m = Machine::new(&p, &l);
        m.set_input("a", &i32vec(vec![1, 2, 3, 4])).unwrap();
        m.set_input("b", &i32vec(vec![10, 20, 30, 40])).unwrap();
        m.step().unwrap();
        assert_eq!(m.read_buffer("o").unwrap().as_i64(), vec![11, 22, 33, 44]);
    }

    #[test]
    fn simd_add_matches_scalar() {
        let n = 8;
        let ty = SignalType::vector(DataType::I32, n);
        let mut p = Program::new("vadd", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let b = p.add_buffer("b", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        let ra = p.add_reg(DataType::I32, 4);
        let rb = p.add_reg(DataType::I32, 4);
        let ro = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::Loop {
            start: 0,
            end: n,
            step: 4,
            body: vec![
                Stmt::VLoad {
                    reg: ra,
                    buf: a,
                    index: IndexExpr::Loop(0),
                },
                Stmt::VLoad {
                    reg: rb,
                    buf: b,
                    index: IndexExpr::Loop(0),
                },
                Stmt::VOp {
                    instr: "vaddq_s32".into(),
                    pattern: "Add(I1, I2)".parse().unwrap(),
                    cost: 1,
                    dst: ro,
                    srcs: vec![ra, rb],
                    code: String::new(),
                },
                Stmt::VStore {
                    buf: o,
                    index: IndexExpr::Loop(0),
                    reg: ro,
                },
            ],
        });
        let l = lib();
        let mut m = Machine::new(&p, &l);
        let av: Vec<i64> = (0..8).collect();
        let bv: Vec<i64> = (0..8).map(|x| x * 100).collect();
        m.set_input("a", &i32vec(av.clone())).unwrap();
        m.set_input("b", &i32vec(bv.clone())).unwrap();
        m.step().unwrap();
        let expect: Vec<i64> = av.iter().zip(&bv).map(|(x, y)| x + y).collect();
        assert_eq!(m.read_buffer("o").unwrap().as_i64(), expect);
    }

    #[test]
    fn compound_vop_vmla() {
        // o = acc + x*y over one vector.
        let ty = SignalType::vector(DataType::I32, 4);
        let mut p = Program::new("vmla", "test", Arch::Neon128);
        let acc = p.add_buffer("acc", ty, BufferKind::Input, None);
        let x = p.add_buffer("x", ty, BufferKind::Input, None);
        let y = p.add_buffer("y", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        let r = [
            p.add_reg(DataType::I32, 4),
            p.add_reg(DataType::I32, 4),
            p.add_reg(DataType::I32, 4),
            p.add_reg(DataType::I32, 4),
        ];
        p.body.extend([
            Stmt::VLoad {
                reg: r[0],
                buf: acc,
                index: IndexExpr::Const(0),
            },
            Stmt::VLoad {
                reg: r[1],
                buf: x,
                index: IndexExpr::Const(0),
            },
            Stmt::VLoad {
                reg: r[2],
                buf: y,
                index: IndexExpr::Const(0),
            },
            Stmt::VOp {
                instr: "vmlaq_s32".into(),
                pattern: "Add(I1, Mul(I2, I3))".parse().unwrap(),
                cost: 2,
                dst: r[3],
                srcs: vec![r[0], r[1], r[2]],
                code: String::new(),
            },
            Stmt::VStore {
                buf: o,
                index: IndexExpr::Const(0),
                reg: r[3],
            },
        ]);
        let l = lib();
        let mut m = Machine::new(&p, &l);
        m.set_input("acc", &i32vec(vec![1, 1, 1, 1])).unwrap();
        m.set_input("x", &i32vec(vec![2, 3, 4, 5])).unwrap();
        m.set_input("y", &i32vec(vec![10, 10, 10, 10])).unwrap();
        m.step().unwrap();
        assert_eq!(m.read_buffer("o").unwrap().as_i64(), vec![21, 31, 41, 51]);
    }

    #[test]
    fn kernel_call_runs_library_fft() {
        let in_ty = SignalType::vector(DataType::F32, 4);
        let out_ty = SignalType::vector(DataType::F32, 8);
        let mut p = Program::new("fft", "test", Arch::Neon128);
        let x = p.add_buffer("x", in_ty, BufferKind::Input, None);
        let o = p.add_buffer("spec", out_ty, BufferKind::Output, None);
        p.body.push(Stmt::KernelCall {
            actor: hcg_model::ActorKind::Fft,
            impl_name: "naive_dft".into(),
            inputs: vec![x],
            output: o,
        });
        let l = lib();
        let mut m = Machine::new(&p, &l);
        m.set_input(
            "x",
            &Tensor::from_f64(in_ty, vec![1.0, 0.0, 0.0, 0.0]).unwrap(),
        )
        .unwrap();
        m.step().unwrap();
        let spec = m.read_buffer("spec").unwrap().as_f64();
        for b in 0..4 {
            assert!((spec[2 * b] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn const_and_state_init() {
        let ty = SignalType::vector(DataType::F32, 4);
        let mut p = Program::new("c", "test", Arch::Neon128);
        let c = p.add_buffer("k", ty, BufferKind::Const, Some(vec![2.5]));
        let s = p.add_buffer("z", ty, BufferKind::State, Some(vec![1.0, 2.0, 3.0, 4.0]));
        let _ = (c, s);
        let l = lib();
        let m = Machine::new(&p, &l);
        // Broadcast single init value; explicit per-element init.
        assert_eq!(m.read_buffer("k").unwrap().as_f64(), vec![2.5; 4]);
        assert_eq!(
            m.read_buffer("z").unwrap().as_f64(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn copy_latches_state() {
        let ty = SignalType::vector(DataType::I32, 2);
        let mut p = Program::new("d", "test", Arch::Neon128);
        let x = p.add_buffer("x", ty, BufferKind::Input, None);
        let z = p.add_buffer("z", ty, BufferKind::State, None);
        p.body.push(Stmt::Copy { dst: z, src: x });
        let l = lib();
        let mut m = Machine::new(&p, &l);
        m.set_input("x", &i32vec(vec![7, 8])).unwrap();
        m.step().unwrap();
        assert_eq!(m.read_buffer("z").unwrap().as_i64(), vec![7, 8]);
        m.reset();
        assert_eq!(m.read_buffer("z").unwrap().as_i64(), vec![0, 0]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let ty = SignalType::vector(DataType::I32, 4);
        let mut p = Program::new("oob", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        p.body.push(Stmt::Scalar {
            op: ScalarOp::Copy,
            dst: ElemRef {
                buf: o,
                index: IndexExpr::Const(9),
            },
            srcs: vec![ElemRef {
                buf: a,
                index: IndexExpr::Const(0),
            }],
        });
        let l = lib();
        let mut m = Machine::new(&p, &l);
        assert!(matches!(m.step(), Err(ExecError::OutOfBounds { .. })));
    }

    #[test]
    fn select_and_clamp_and_cast() {
        let fty = SignalType::vector(DataType::F32, 1);
        let ity = SignalType::vector(DataType::I8, 1);
        let mut p = Program::new("misc", "test", Arch::Neon128);
        let c = p.add_buffer("c", fty, BufferKind::Input, None);
        let a = p.add_buffer("a", fty, BufferKind::Input, None);
        let b = p.add_buffer("b", fty, BufferKind::Input, None);
        let sel = p.add_buffer("sel", fty, BufferKind::Output, None);
        let clamped = p.add_buffer("cl", fty, BufferKind::Output, None);
        let casted = p.add_buffer("ci", ity, BufferKind::Output, None);
        let at = |buf| ElemRef {
            buf,
            index: IndexExpr::Const(0),
        };
        p.body.extend([
            Stmt::Scalar {
                op: ScalarOp::Select,
                dst: at(sel),
                srcs: vec![at(c), at(a), at(b)],
            },
            Stmt::Scalar {
                op: ScalarOp::Clamp { lo: -1.0, hi: 1.0 },
                dst: at(clamped),
                srcs: vec![at(a)],
            },
            Stmt::Scalar {
                op: ScalarOp::Cast,
                dst: at(casted),
                srcs: vec![at(a)],
            },
        ]);
        let l = lib();
        let mut m = Machine::new(&p, &l);
        let f1 = |v: f64| Tensor::from_f64(fty, vec![v]).unwrap();
        m.set_input("c", &f1(1.0)).unwrap();
        m.set_input("a", &f1(300.4)).unwrap();
        m.set_input("b", &f1(-5.0)).unwrap();
        m.step().unwrap();
        assert_eq!(m.read_buffer("sel").unwrap().as_f64(), vec![300.4]);
        assert_eq!(m.read_buffer("cl").unwrap().as_f64(), vec![1.0]);
        // 300 wraps into i8.
        assert_eq!(m.read_buffer("ci").unwrap().as_i64(), vec![44]);
    }
}
