//! # hcg-vm — executable target machine for generated programs
//!
//! The substitution for the paper's physical ARM/Intel testbeds: a program
//! IR that every code generator lowers to ([`Program`]), a value-correct
//! interpreter ([`Machine`]) used to check that all generators compute
//! identical results (paper §4.1), and calibrated per-architecture ×
//! per-compiler cost models ([`CostModel`]) that turn instruction streams
//! into cycle and wall-clock estimates (paper Table 2 / Figure 5).
//!
//! # Examples
//!
//! ```
//! use hcg_vm::{Machine, Program, BufferKind, Stmt, ScalarOp, ElemRef, IndexExpr};
//! use hcg_isa::Arch;
//! use hcg_kernels::CodeLibrary;
//! use hcg_model::{op::ElemOp, DataType, SignalType, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ty = SignalType::vector(DataType::I32, 4);
//! let mut prog = Program::new("double", "by-hand", Arch::Neon128);
//! let x = prog.add_buffer("x", ty, BufferKind::Input, None);
//! let y = prog.add_buffer("y", ty, BufferKind::Output, None);
//! prog.body.push(Stmt::Loop {
//!     start: 0, end: 4, step: 1,
//!     body: vec![Stmt::Scalar {
//!         op: ScalarOp::Elem(ElemOp::Add),
//!         dst: ElemRef { buf: y, index: IndexExpr::Loop(0) },
//!         srcs: vec![
//!             ElemRef { buf: x, index: IndexExpr::Loop(0) },
//!             ElemRef { buf: x, index: IndexExpr::Loop(0) },
//!         ],
//!     }],
//! });
//!
//! let lib = CodeLibrary::new();
//! let mut machine = Machine::new(&prog, &lib);
//! machine.set_input("x", &Tensor::from_i64(ty, vec![1, 2, 3, 4])?)?;
//! machine.step()?;
//! assert_eq!(machine.read_buffer("y")?.as_i64(), vec![2, 4, 6, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cost;
mod interp;
mod profile;
mod program;
mod validate;

pub use cost::{paper_platforms, Compiler, CostModel};
pub use interp::{AccessLog, ExecError, Machine, StmtAccess};
pub use profile::{profile, ActorCycles, CycleProfile, InstrCycles, RegionCycles};
pub use program::{
    BufferDecl, BufferId, BufferKind, ElemRef, IndexExpr, Origin, Program, RegId, ScalarOp, Stmt,
    StmtStats,
};
pub use validate::{validate, validate_all, Defect, DefectKind, ValidateError};
