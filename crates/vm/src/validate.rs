//! Static validation of generated programs: every buffer/register
//! reference in range, operand arities correct, loop bounds within the
//! buffers they index, register dtypes consistent with the memory they
//! load/store, kernel calls resolvable, and no nested loops.
//!
//! [`validate_all`] walks the whole program and returns *every* defect as a
//! structured [`Defect`]; [`validate`] is the original first-error wrapper
//! that generators run in their test suites so malformed programs are
//! reported as errors instead of interpreter panics. The `hcg-analysis`
//! crate rehosts these defects as lint diagnostics.

use crate::program::{BufferId, ElemRef, IndexExpr, Program, RegId, ScalarOp, Stmt};
use hcg_kernels::CodeLibrary;
use std::fmt;

/// A static defect found in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

/// Classification of a static program defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// A buffer id exceeds the program's buffer table.
    BufferOutOfRange,
    /// A register id exceeds the program's register table.
    RegisterOutOfRange,
    /// A scalar element reference can reach past the end of its buffer.
    ElementOutOfBounds,
    /// A vector load/store can reach past the end of its buffer.
    VectorOutOfBounds,
    /// A scalar statement's operand count does not match its op's arity.
    ScalarArity,
    /// An element op applied to a dtype it does not support.
    DtypeUnsupported,
    /// A vector op's operand count does not match its pattern's input count.
    VOpOperandCount,
    /// A vector op mixes registers of different dtype/lane shape.
    VOpShapeMismatch,
    /// A vector load/store register dtype differs from its buffer's dtype.
    VRegDtypeMismatch,
    /// A kernel call names an implementation absent from the library.
    UnknownKernel,
    /// A loop nested inside another loop (the IR forbids this).
    NestedLoop,
    /// A loop with step zero (would never terminate).
    ZeroStepLoop,
    /// A whole-buffer copy whose source is shorter than its destination.
    CopyLengthMismatch,
    /// A whole-buffer copy between buffers of different element dtype.
    CopyDtypeMismatch,
}

/// One structural defect, with its classification and full description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Defect {
    /// What rule is violated.
    pub kind: DefectKind,
    /// Index path of the offending statement in the program body: the top
    /// statement index, plus the index inside the loop body when nested.
    pub stmt_path: Vec<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} at stmt {:?}: {}",
            self.kind, self.stmt_path, self.message
        )
    }
}

/// Validate a program against a kernel library, returning the first defect.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn validate(prog: &Program, lib: &CodeLibrary) -> Result<(), ValidateError> {
    match validate_all(prog, lib).into_iter().next() {
        Some(d) => Err(ValidateError(d.message)),
        None => Ok(()),
    }
}

/// Validate a program against a kernel library, collecting every defect.
pub fn validate_all(prog: &Program, lib: &CodeLibrary) -> Vec<Defect> {
    let mut v = Validator {
        prog,
        lib,
        defects: Vec::new(),
        path: Vec::new(),
    };
    v.block(&prog.body, None);
    v.defects
}

/// The maximal element index an [`IndexExpr`] can reach inside a loop with
/// the given final induction value.
fn max_index(index: IndexExpr, loop_max: Option<usize>) -> usize {
    match index {
        IndexExpr::Const(c) => c,
        IndexExpr::Loop(off) => loop_max.unwrap_or(0) + off,
    }
}

struct Validator<'a> {
    prog: &'a Program,
    lib: &'a CodeLibrary,
    defects: Vec<Defect>,
    path: Vec<usize>,
}

impl Validator<'_> {
    fn push(&mut self, kind: DefectKind, message: impl Into<String>) {
        self.defects.push(Defect {
            kind,
            stmt_path: self.path.clone(),
            message: message.into(),
        });
    }

    /// `true` when the id is in range (defect recorded otherwise).
    fn buffer_ok(&mut self, buf: BufferId) -> bool {
        if buf.0 >= self.prog.buffers.len() {
            self.push(
                DefectKind::BufferOutOfRange,
                format!("buffer id {} out of range", buf.0),
            );
            return false;
        }
        true
    }

    /// `true` when the id is in range (defect recorded otherwise).
    fn reg_ok(&mut self, reg: RegId) -> bool {
        if reg.0 >= self.prog.reg_count {
            self.push(
                DefectKind::RegisterOutOfRange,
                format!("register id {} out of range", reg.0),
            );
            return false;
        }
        true
    }

    fn check_elem(&mut self, r: &ElemRef, loop_max: Option<usize>) {
        if !self.buffer_ok(r.buf) {
            return;
        }
        let limit = self.prog.buffer(r.buf).ty.len();
        let reach = max_index(r.index, loop_max);
        if reach >= limit {
            self.push(
                DefectKind::ElementOutOfBounds,
                format!(
                    "element {} of buffer {:?} (len {})",
                    reach,
                    self.prog.buffer(r.buf).name,
                    limit
                ),
            );
        }
    }

    /// Shared bounds + dtype check for VLoad/VStore.
    fn check_vector_access(
        &mut self,
        what: &str,
        reg: RegId,
        buf: BufferId,
        index: IndexExpr,
        loop_max: Option<usize>,
    ) {
        let reg_ok = self.reg_ok(reg);
        if !self.buffer_ok(buf) || !reg_ok {
            return;
        }
        let (reg_dt, lanes) = self.prog.reg_types[reg.0];
        let decl = self.prog.buffer(buf);
        let reach = max_index(index, loop_max) + lanes - 1;
        if reach >= decl.ty.len() {
            self.push(
                DefectKind::VectorOutOfBounds,
                format!(
                    "vector {what} reaches element {reach} of {:?} (len {})",
                    decl.name,
                    decl.ty.len()
                ),
            );
        }
        if reg_dt != decl.ty.dtype {
            self.push(
                DefectKind::VRegDtypeMismatch,
                format!(
                    "vector {what}: register dtype {} vs buffer {:?} dtype {}",
                    reg_dt, decl.name, decl.ty.dtype
                ),
            );
        }
    }

    fn block(&mut self, stmts: &[Stmt], loop_max: Option<usize>) {
        for (i, s) in stmts.iter().enumerate() {
            self.path.push(i);
            self.stmt(s, loop_max);
            self.path.pop();
        }
    }

    fn stmt(&mut self, s: &Stmt, loop_max: Option<usize>) {
        match s {
            Stmt::Loop {
                start,
                end,
                step,
                body,
            } => {
                if loop_max.is_some() {
                    self.push(DefectKind::NestedLoop, "nested loop");
                    return;
                }
                if *step == 0 {
                    self.push(DefectKind::ZeroStepLoop, "loop step of zero");
                    return;
                }
                if end > start {
                    // Last induction value actually reached.
                    let trips = (end - start).div_ceil(*step);
                    let last = start + (trips - 1) * step;
                    self.block(body, Some(last));
                }
            }
            Stmt::Scalar { op, dst, srcs } => {
                if srcs.len() != op.arity() {
                    self.push(
                        DefectKind::ScalarArity,
                        format!(
                            "scalar op arity: {op:?} expects {}, got {}",
                            op.arity(),
                            srcs.len()
                        ),
                    );
                }
                self.check_elem(dst, loop_max);
                for src in srcs {
                    self.check_elem(src, loop_max);
                }
                if let ScalarOp::Elem(e) = op {
                    if dst.buf.0 < self.prog.buffers.len() {
                        let dt = self.prog.buffer(dst.buf).ty.dtype;
                        if !e.supports(dt) {
                            self.push(
                                DefectKind::DtypeUnsupported,
                                format!("{e} on unsupported dtype {dt}"),
                            );
                        }
                    }
                }
            }
            Stmt::VLoad { reg, buf, index } => {
                self.check_vector_access("load", *reg, *buf, *index, loop_max);
            }
            Stmt::VStore { buf, index, reg } => {
                self.check_vector_access("store", *reg, *buf, *index, loop_max);
            }
            Stmt::VOp {
                pattern, dst, srcs, ..
            } => {
                let mut regs_ok = self.reg_ok(*dst);
                for s in srcs {
                    regs_ok &= self.reg_ok(*s);
                }
                if srcs.len() != pattern.input_count() {
                    self.push(
                        DefectKind::VOpOperandCount,
                        format!(
                            "vop operand count: pattern {} needs {}, got {}",
                            pattern,
                            pattern.input_count(),
                            srcs.len()
                        ),
                    );
                }
                // All operand registers must share the destination's shape.
                if regs_ok {
                    let (dt, lanes) = self.prog.reg_types[dst.0];
                    for s in srcs {
                        if self.prog.reg_types[s.0] != (dt, lanes) {
                            self.push(
                                DefectKind::VOpShapeMismatch,
                                format!(
                                    "vop register shape mismatch: dst {}x{lanes}, src r{} is {}x{}",
                                    dt, s.0, self.prog.reg_types[s.0].0, self.prog.reg_types[s.0].1
                                ),
                            );
                        }
                    }
                }
            }
            Stmt::KernelCall {
                actor,
                impl_name,
                inputs,
                output,
            } => {
                for b in inputs {
                    self.buffer_ok(*b);
                }
                self.buffer_ok(*output);
                if self.lib.find(*actor, impl_name).is_none() {
                    self.push(
                        DefectKind::UnknownKernel,
                        format!("unknown kernel {actor}::{impl_name}"),
                    );
                }
            }
            Stmt::Copy { dst, src } => {
                if !self.buffer_ok(*dst) || !self.buffer_ok(*src) {
                    return;
                }
                let (d, s) = (self.prog.buffer(*dst), self.prog.buffer(*src));
                if d.ty.len() > s.ty.len() {
                    self.push(
                        DefectKind::CopyLengthMismatch,
                        format!(
                            "copy from {:?} (len {}) underfills {:?} (len {})",
                            s.name,
                            s.ty.len(),
                            d.name,
                            d.ty.len()
                        ),
                    );
                }
                if d.ty.dtype != s.ty.dtype {
                    self.push(
                        DefectKind::CopyDtypeMismatch,
                        format!(
                            "copy from {:?} ({}) to {:?} ({}) changes element dtype",
                            s.name, s.ty.dtype, d.name, d.ty.dtype
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BufferKind;
    use hcg_isa::Arch;
    use hcg_model::op::ElemOp;
    use hcg_model::{DataType, SignalType};

    fn base() -> (Program, BufferId, BufferId) {
        let ty = SignalType::vector(DataType::I32, 8);
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        (p, a, o)
    }

    #[test]
    fn valid_program_passes() {
        let (mut p, a, o) = base();
        p.body.push(Stmt::Loop {
            start: 0,
            end: 8,
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Abs),
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![ElemRef {
                    buf: a,
                    index: IndexExpr::Loop(0),
                }],
            }],
        });
        validate(&p, &CodeLibrary::new()).unwrap();
        assert!(validate_all(&p, &CodeLibrary::new()).is_empty());
    }

    #[test]
    fn out_of_range_loop_index_caught() {
        let (mut p, a, o) = base();
        p.body.push(Stmt::Loop {
            start: 0,
            end: 9, // one past the buffer
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Copy,
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![ElemRef {
                    buf: a,
                    index: IndexExpr::Loop(0),
                }],
            }],
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn vector_load_overrun_caught() {
        let (mut p, a, _) = base();
        let r = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::VLoad {
            reg: r,
            buf: a,
            index: IndexExpr::Const(6), // 6..10 > 8
        });
        let defects = validate_all(&p, &CodeLibrary::new());
        assert!(defects
            .iter()
            .any(|d| d.kind == DefectKind::VectorOutOfBounds));
    }

    #[test]
    fn vop_arity_mismatch_caught() {
        let (mut p, _, _) = base();
        let r = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::VOp {
            instr: "vaddq_s32".into(),
            pattern: "Add(I1, I2)".parse().unwrap(),
            cost: 1,
            dst: r,
            srcs: vec![r], // needs two
            code: String::new(),
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn unknown_kernel_caught() {
        let (mut p, a, o) = base();
        p.body.push(Stmt::KernelCall {
            actor: hcg_model::ActorKind::Fft,
            impl_name: "warp_drive".into(),
            inputs: vec![a],
            output: o,
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn bad_dtype_for_op_caught() {
        let ty = SignalType::vector(DataType::F32, 4);
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        p.body.push(Stmt::Scalar {
            op: ScalarOp::Elem(ElemOp::BitAnd),
            dst: ElemRef {
                buf: o,
                index: IndexExpr::Const(0),
            },
            srcs: vec![
                ElemRef {
                    buf: a,
                    index: IndexExpr::Const(0),
                },
                ElemRef {
                    buf: a,
                    index: IndexExpr::Const(0),
                },
            ],
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn zero_step_loop_caught() {
        let (mut p, _, _) = base();
        p.body.push(Stmt::Loop {
            start: 0,
            end: 4,
            step: 0,
            body: vec![],
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn vreg_dtype_mismatch_caught() {
        let (mut p, a, _) = base(); // buffer "a" is i32
        let r = p.add_reg(DataType::F32, 4);
        p.body.push(Stmt::VLoad {
            reg: r,
            buf: a,
            index: IndexExpr::Const(0),
        });
        let defects = validate_all(&p, &CodeLibrary::new());
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].kind, DefectKind::VRegDtypeMismatch);
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn copy_dtype_mismatch_caught() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer(
            "a",
            SignalType::vector(DataType::F32, 8),
            BufferKind::Input,
            None,
        );
        let o = p.add_buffer(
            "o",
            SignalType::vector(DataType::I32, 8),
            BufferKind::Output,
            None,
        );
        p.body.push(Stmt::Copy { dst: o, src: a });
        let defects = validate_all(&p, &CodeLibrary::new());
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].kind, DefectKind::CopyDtypeMismatch);
    }

    #[test]
    fn all_defects_collected_not_just_first() {
        let (mut p, a, o) = base();
        let r = p.add_reg(DataType::F32, 4); // wrong dtype for "a"
        p.body.push(Stmt::VLoad {
            reg: r,
            buf: a,
            index: IndexExpr::Const(6), // also out of bounds: 6..10 > 8
        });
        p.body.push(Stmt::Loop {
            start: 0,
            end: 4,
            step: 0,
            body: vec![],
        });
        p.body.push(Stmt::KernelCall {
            actor: hcg_model::ActorKind::Fft,
            impl_name: "warp_drive".into(),
            inputs: vec![a],
            output: o,
        });
        let kinds: Vec<DefectKind> = validate_all(&p, &CodeLibrary::new())
            .iter()
            .map(|d| d.kind)
            .collect();
        assert!(kinds.contains(&DefectKind::VectorOutOfBounds));
        assert!(kinds.contains(&DefectKind::VRegDtypeMismatch));
        assert!(kinds.contains(&DefectKind::ZeroStepLoop));
        assert!(kinds.contains(&DefectKind::UnknownKernel));
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn defect_paths_locate_statements() {
        let (mut p, a, o) = base();
        p.body.push(Stmt::Copy { dst: o, src: a }); // fine
        p.body.push(Stmt::Loop {
            start: 0,
            end: 9,
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Copy,
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![ElemRef {
                    buf: a,
                    index: IndexExpr::Loop(0),
                }],
            }],
        });
        let defects = validate_all(&p, &CodeLibrary::new());
        assert!(!defects.is_empty());
        assert!(defects.iter().all(|d| d.stmt_path == vec![1, 0]));
    }
}
