//! Static validation of generated programs: every buffer/register
//! reference in range, operand arities correct, loop bounds within the
//! buffers they index, kernel calls resolvable, and no nested loops.
//!
//! Generators run this in their test suites so that malformed programs are
//! reported as structured errors instead of interpreter panics.

use crate::program::{BufferId, ElemRef, IndexExpr, Program, RegId, ScalarOp, Stmt};
use hcg_kernels::CodeLibrary;
use std::fmt;

/// A static defect found in a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

fn verr(msg: impl Into<String>) -> ValidateError {
    ValidateError(msg.into())
}

/// Validate a program against a kernel library.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn validate(prog: &Program, lib: &CodeLibrary) -> Result<(), ValidateError> {
    validate_block(prog, lib, &prog.body, None)
}

/// The maximal element index an [`IndexExpr`] can reach inside a loop with
/// the given final induction value.
fn max_index(index: IndexExpr, loop_max: Option<usize>) -> usize {
    match index {
        IndexExpr::Const(c) => c,
        IndexExpr::Loop(off) => loop_max.unwrap_or(0) + off,
    }
}

fn check_buffer(prog: &Program, buf: BufferId) -> Result<(), ValidateError> {
    if buf.0 >= prog.buffers.len() {
        return Err(verr(format!("buffer id {} out of range", buf.0)));
    }
    Ok(())
}

fn check_reg(prog: &Program, reg: RegId) -> Result<(), ValidateError> {
    if reg.0 >= prog.reg_count {
        return Err(verr(format!("register id {} out of range", reg.0)));
    }
    Ok(())
}

fn check_elem(
    prog: &Program,
    r: &ElemRef,
    loop_max: Option<usize>,
) -> Result<(), ValidateError> {
    check_buffer(prog, r.buf)?;
    let limit = prog.buffer(r.buf).ty.len();
    let reach = max_index(r.index, loop_max);
    if reach >= limit {
        return Err(verr(format!(
            "element {} of buffer {:?} (len {})",
            reach,
            prog.buffer(r.buf).name,
            limit
        )));
    }
    Ok(())
}

fn validate_block(
    prog: &Program,
    lib: &CodeLibrary,
    stmts: &[Stmt],
    loop_max: Option<usize>,
) -> Result<(), ValidateError> {
    for s in stmts {
        match s {
            Stmt::Loop {
                start,
                end,
                step,
                body,
            } => {
                if loop_max.is_some() {
                    return Err(verr("nested loop"));
                }
                if *step == 0 {
                    return Err(verr("loop step of zero"));
                }
                if end > start {
                    // Last induction value actually reached.
                    let trips = (end - start).div_ceil(*step);
                    let last = start + (trips - 1) * step;
                    validate_block(prog, lib, body, Some(last))?;
                }
            }
            Stmt::Scalar { op, dst, srcs } => {
                if srcs.len() != op.arity() {
                    return Err(verr(format!(
                        "scalar op arity: {op:?} expects {}, got {}",
                        op.arity(),
                        srcs.len()
                    )));
                }
                check_elem(prog, dst, loop_max)?;
                for src in srcs {
                    check_elem(prog, src, loop_max)?;
                }
                if let ScalarOp::Elem(e) = op {
                    let dt = prog.buffer(dst.buf).ty.dtype;
                    if !e.supports(dt) {
                        return Err(verr(format!("{e} on unsupported dtype {dt}")));
                    }
                }
            }
            Stmt::VLoad { reg, buf, index } => {
                check_reg(prog, *reg)?;
                check_buffer(prog, *buf)?;
                let (_, lanes) = prog.reg_types[reg.0];
                let reach = max_index(*index, loop_max) + lanes - 1;
                if reach >= prog.buffer(*buf).ty.len() {
                    return Err(verr(format!(
                        "vector load reaches element {reach} of {:?} (len {})",
                        prog.buffer(*buf).name,
                        prog.buffer(*buf).ty.len()
                    )));
                }
            }
            Stmt::VStore { buf, index, reg } => {
                check_reg(prog, *reg)?;
                check_buffer(prog, *buf)?;
                let (_, lanes) = prog.reg_types[reg.0];
                let reach = max_index(*index, loop_max) + lanes - 1;
                if reach >= prog.buffer(*buf).ty.len() {
                    return Err(verr(format!(
                        "vector store reaches element {reach} of {:?} (len {})",
                        prog.buffer(*buf).name,
                        prog.buffer(*buf).ty.len()
                    )));
                }
            }
            Stmt::VOp {
                pattern, dst, srcs, ..
            } => {
                check_reg(prog, *dst)?;
                for s in srcs {
                    check_reg(prog, *s)?;
                }
                if srcs.len() != pattern.input_count() {
                    return Err(verr(format!(
                        "vop operand count: pattern {} needs {}, got {}",
                        pattern,
                        pattern.input_count(),
                        srcs.len()
                    )));
                }
                // All operand registers must share the destination's shape.
                let (dt, lanes) = prog.reg_types[dst.0];
                for s in srcs {
                    if prog.reg_types[s.0] != (dt, lanes) {
                        return Err(verr("vop register shape mismatch"));
                    }
                }
            }
            Stmt::KernelCall {
                actor,
                impl_name,
                inputs,
                output,
            } => {
                for b in inputs {
                    check_buffer(prog, *b)?;
                }
                check_buffer(prog, *output)?;
                if lib.find(*actor, impl_name).is_none() {
                    return Err(verr(format!("unknown kernel {actor}::{impl_name}")));
                }
            }
            Stmt::Copy { dst, src } => {
                check_buffer(prog, *dst)?;
                check_buffer(prog, *src)?;
                if prog.buffer(*dst).ty.len() > prog.buffer(*src).ty.len() {
                    return Err(verr(format!(
                        "copy from {:?} (len {}) underfills {:?} (len {})",
                        prog.buffer(*src).name,
                        prog.buffer(*src).ty.len(),
                        prog.buffer(*dst).name,
                        prog.buffer(*dst).ty.len()
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BufferKind;
    use hcg_isa::Arch;
    use hcg_model::op::ElemOp;
    use hcg_model::{DataType, SignalType};

    fn base() -> (Program, BufferId, BufferId) {
        let ty = SignalType::vector(DataType::I32, 8);
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        (p, a, o)
    }

    #[test]
    fn valid_program_passes() {
        let (mut p, a, o) = base();
        p.body.push(Stmt::Loop {
            start: 0,
            end: 8,
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Abs),
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![ElemRef {
                    buf: a,
                    index: IndexExpr::Loop(0),
                }],
            }],
        });
        validate(&p, &CodeLibrary::new()).unwrap();
    }

    #[test]
    fn out_of_range_loop_index_caught() {
        let (mut p, a, o) = base();
        p.body.push(Stmt::Loop {
            start: 0,
            end: 9, // one past the buffer
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Copy,
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![ElemRef {
                    buf: a,
                    index: IndexExpr::Loop(0),
                }],
            }],
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn vector_load_overrun_caught() {
        let (mut p, a, _) = base();
        let r = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::VLoad {
            reg: r,
            buf: a,
            index: IndexExpr::Const(6), // 6..10 > 8
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn vop_arity_mismatch_caught() {
        let (mut p, _, _) = base();
        let r = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::VOp {
            instr: "vaddq_s32".into(),
            pattern: "Add(I1, I2)".parse().unwrap(),
            cost: 1,
            dst: r,
            srcs: vec![r], // needs two
            code: String::new(),
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn unknown_kernel_caught() {
        let (mut p, a, o) = base();
        p.body.push(Stmt::KernelCall {
            actor: hcg_model::ActorKind::Fft,
            impl_name: "warp_drive".into(),
            inputs: vec![a],
            output: o,
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn bad_dtype_for_op_caught() {
        let ty = SignalType::vector(DataType::F32, 4);
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        p.body.push(Stmt::Scalar {
            op: ScalarOp::Elem(ElemOp::BitAnd),
            dst: ElemRef {
                buf: o,
                index: IndexExpr::Const(0),
            },
            srcs: vec![
                ElemRef {
                    buf: a,
                    index: IndexExpr::Const(0),
                },
                ElemRef {
                    buf: a,
                    index: IndexExpr::Const(0),
                },
            ],
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }

    #[test]
    fn zero_step_loop_caught() {
        let (mut p, _, _) = base();
        p.body.push(Stmt::Loop {
            start: 0,
            end: 4,
            step: 0,
            body: vec![],
        });
        assert!(validate(&p, &CodeLibrary::new()).is_err());
    }
}
