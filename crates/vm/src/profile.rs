//! The execution profiler: attributes cost-model cycles to the source
//! actors and mapped SIMD regions that emitted each top-level statement.
//!
//! Generators record an [`Origin`](crate::Origin) per top-level statement
//! at emit time; the profiler prices each statement with
//! [`CostModel::stmt_cycles`] and folds the charges per actor and per
//! region. Because [`CostModel::cycles`] is *defined* as the sum of
//! top-level statement costs, per-actor attribution sums exactly to the
//! VM's total — conservation is structural, and the bench crate's
//! `profile_conservation` test pins it for every example model.

use crate::cost::{Compiler, CostModel};
use crate::program::{Origin, Program, Stmt};
use hcg_isa::Arch;
use hcg_kernels::CodeLibrary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Cycles attributed to one source actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActorCycles {
    /// Actor name, or `(unattributed)` for statements without provenance.
    pub label: String,
    /// Total cycles charged to this actor's top-level statements.
    pub cycles: u64,
    /// Number of top-level statements attributed to it.
    pub stmts: usize,
}

/// Issue counts and cycles attributed to one SIMD instruction across the
/// whole program (loop trip counts multiplied through).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrCycles {
    /// Instruction name (e.g. `vmlaq_s32`).
    pub name: String,
    /// Dynamic issue count per program step.
    pub count: u64,
    /// Total cycles those issues cost ([`CostModel::vop_cycles`] each).
    pub cycles: u64,
}

/// Cycles attributed to one mapped SIMD region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionCycles {
    /// Region index within the generator run.
    pub index: usize,
    /// First member actor of the region (the attribution label).
    pub actor: String,
    /// Total cycles charged to the region's statements.
    pub cycles: u64,
}

/// A per-actor / per-region cycle breakdown of one generated program on
/// one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleProfile {
    /// Model (program) name.
    pub model: String,
    /// Generator that produced the program.
    pub generator: String,
    /// Architecture priced against.
    pub arch: Arch,
    /// Compiler profile priced against.
    pub compiler: Compiler,
    /// Total cycles for one program step ([`CostModel::cycles`]).
    pub total_cycles: u64,
    /// Per-actor attribution, sorted by cycles descending then label.
    pub actors: Vec<ActorCycles>,
    /// Per-region attribution, sorted by region index.
    pub regions: Vec<RegionCycles>,
    /// Per-instruction issue counts and cycles, sorted by name — the
    /// evidence `hcg_isa::CostCalibrator` ingests.
    pub instrs: Vec<InstrCycles>,
}

/// Profile a program: price every top-level statement and fold the charges
/// by origin actor and region.
pub fn profile(prog: &Program, lib: &CodeLibrary, cost: &CostModel) -> CycleProfile {
    let default_origin = Origin::default();
    let mut by_actor: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
    let mut by_region: BTreeMap<usize, (&str, u64)> = BTreeMap::new();
    let mut total = 0u64;
    for (i, stmt) in prog.body.iter().enumerate() {
        let cycles = cost.stmt_cycles(prog, lib, stmt);
        total += cycles;
        let origin = prog.origins.get(i).unwrap_or(&default_origin);
        let slot = by_actor.entry(origin.label()).or_insert((0, 0));
        slot.0 += cycles;
        slot.1 += 1;
        if let Some(ri) = origin.region {
            let slot = by_region.entry(ri).or_insert((origin.label(), 0));
            slot.1 += cycles;
        }
    }
    let mut actors: Vec<ActorCycles> = by_actor
        .into_iter()
        .map(|(label, (cycles, stmts))| ActorCycles {
            label: label.to_owned(),
            cycles,
            stmts,
        })
        .collect();
    actors.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.label.cmp(&b.label)));
    let regions = by_region
        .into_iter()
        .map(|(index, (actor, cycles))| RegionCycles {
            index,
            actor: actor.to_owned(),
            cycles,
        })
        .collect();
    let mut by_instr: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    collect_instrs(cost, &prog.body, 1, &mut by_instr);
    let instrs = by_instr
        .into_iter()
        .map(|(name, (count, cycles))| InstrCycles {
            name: name.to_owned(),
            count,
            cycles,
        })
        .collect();
    CycleProfile {
        model: prog.name.clone(),
        generator: prog.generator.clone(),
        arch: prog.arch,
        compiler: cost.compiler,
        total_cycles: total,
        actors,
        regions,
        instrs,
    }
}

/// Fold per-instruction issue counts and cycles over a statement block,
/// multiplying loop trip counts through (`mult` is the dynamic repetition
/// of the enclosing loops).
fn collect_instrs<'p>(
    cost: &CostModel,
    stmts: &'p [Stmt],
    mult: u64,
    acc: &mut BTreeMap<&'p str, (u64, u64)>,
) {
    for s in stmts {
        match s {
            Stmt::Loop {
                start,
                end,
                step,
                body,
            } => {
                let trips = if end > start {
                    (end - start).div_ceil(*step)
                } else {
                    0
                } as u64;
                collect_instrs(cost, body, mult * trips, acc);
            }
            Stmt::VOp {
                instr,
                cost: c,
                srcs,
                ..
            } => {
                let slot = acc.entry(instr.as_str()).or_insert((0, 0));
                slot.0 += mult;
                slot.1 += mult * cost.vop_cycles(*c, srcs.len());
            }
            _ => {}
        }
    }
}

impl CycleProfile {
    /// Sum of per-actor attributed cycles — equal to [`Self::total_cycles`]
    /// by construction (the conservation property).
    pub fn attributed_cycles(&self) -> u64 {
        self.actors.iter().map(|a| a.cycles).sum()
    }

    /// Render the top-`n` hot-spot table as text.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} / {} on {}+{}: {} cycles/step",
            self.model, self.generator, self.arch, self.compiler, self.total_cycles
        );
        for a in self.actors.iter().take(top_n) {
            let pct = if self.total_cycles > 0 {
                100.0 * a.cycles as f64 / self.total_cycles as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:>12} cy  {:>5.1}%  {:>3} stmt  {}",
                a.cycles, pct, a.stmts, a.label
            );
        }
        if self.actors.len() > top_n {
            let _ = writeln!(out, "  … {} more actors", self.actors.len() - top_n);
        }
        for r in &self.regions {
            let _ = writeln!(
                out,
                "  region #{:<3} {:>12} cy  {}",
                r.index, r.cycles, r.actor
            );
        }
        out
    }

    /// Deterministic JSON rendering (sorted structure, no timestamps).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let actors: Vec<String> = self
            .actors
            .iter()
            .map(|a| {
                format!(
                    "{{\"actor\": \"{}\", \"cycles\": {}, \"stmts\": {}}}",
                    esc(&a.label),
                    a.cycles,
                    a.stmts
                )
            })
            .collect();
        let regions: Vec<String> = self
            .regions
            .iter()
            .map(|r| {
                format!(
                    "{{\"index\": {}, \"actor\": \"{}\", \"cycles\": {}}}",
                    r.index,
                    esc(&r.actor),
                    r.cycles
                )
            })
            .collect();
        let instrs: Vec<String> = self
            .instrs
            .iter()
            .map(|i| {
                format!(
                    "{{\"name\": \"{}\", \"count\": {}, \"cycles\": {}}}",
                    esc(&i.name),
                    i.count,
                    i.cycles
                )
            })
            .collect();
        // `instrs` renders last: `CostCalibrator::ingest_profile_json`
        // scopes each instrs block to the preceding `arch` key.
        format!(
            "{{\"model\": \"{}\", \"generator\": \"{}\", \"arch\": \"{}\", \"compiler\": \"{}\", \"total_cycles\": {}, \"actors\": [{}], \"regions\": [{}], \"instrs\": [{}]}}",
            esc(&self.model),
            esc(&self.generator),
            self.arch,
            self.compiler,
            self.total_cycles,
            actors.join(", "),
            regions.join(", "),
            instrs.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BufferKind, ElemRef, IndexExpr, ScalarOp, Stmt};
    use hcg_model::{op::ElemOp, DataType, SignalType};

    fn two_actor_prog() -> Program {
        let ty = SignalType::vector(DataType::I32, 8);
        let mut p = Program::new("m", "test", Arch::Neon128);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, BufferKind::Output, None);
        let unary = |buf_dst, buf_src| Stmt::Loop {
            start: 0,
            end: 8,
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Abs),
                dst: ElemRef {
                    buf: buf_dst,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![ElemRef {
                    buf: buf_src,
                    index: IndexExpr::Loop(0),
                }],
            }],
        };
        p.body.push(unary(o, a));
        p.body.push(unary(o, a));
        p.body.push(Stmt::Copy { dst: o, src: a });
        p.origins = vec![
            Origin::region("Abs1", 0),
            Origin::actor("Abs2"),
            Origin::default(),
        ];
        p
    }

    #[test]
    fn attribution_conserves_total_cycles() {
        let p = two_actor_prog();
        let lib = CodeLibrary::new();
        for cm in crate::cost::paper_platforms() {
            let prof = profile(&p, &lib, &cm);
            assert_eq!(prof.total_cycles, cm.cycles(&p, &lib));
            assert_eq!(prof.attributed_cycles(), prof.total_cycles);
        }
    }

    #[test]
    fn actors_sorted_and_unattributed_labelled() {
        let p = two_actor_prog();
        let lib = CodeLibrary::new();
        let cm = CostModel::new(Arch::Neon128, Compiler::GccLike);
        let prof = profile(&p, &lib, &cm);
        assert_eq!(prof.actors.len(), 3);
        assert!(prof.actors.windows(2).all(|w| w[0].cycles >= w[1].cycles));
        assert!(prof.actors.iter().any(|a| a.label == "(unattributed)"));
        assert_eq!(prof.regions.len(), 1);
        assert_eq!(prof.regions[0].actor, "Abs1");
    }

    #[test]
    fn missing_origins_attribute_everything_to_unattributed() {
        let mut p = two_actor_prog();
        p.origins.clear();
        let lib = CodeLibrary::new();
        let cm = CostModel::new(Arch::Avx256, Compiler::ClangLike);
        let prof = profile(&p, &lib, &cm);
        assert_eq!(prof.actors.len(), 1);
        assert_eq!(prof.actors[0].label, "(unattributed)");
        assert_eq!(prof.attributed_cycles(), prof.total_cycles);
    }

    #[test]
    fn instr_stats_multiply_loop_trips_and_share_vop_pricing() {
        let mut p = Program::new("i", "test", Arch::Neon128);
        let r = p.add_reg(DataType::I32, 4);
        p.body.push(Stmt::Loop {
            start: 0,
            end: 8,
            step: 4,
            body: vec![Stmt::VOp {
                instr: "vmlaq_s32".into(),
                pattern: "Add(I1, Mul(I2, I3))".parse().unwrap(),
                cost: 2,
                dst: r,
                srcs: vec![r, r, r],
                code: String::new(),
            }],
        });
        let lib = CodeLibrary::new();
        let cm = CostModel::new(Arch::Neon128, Compiler::GccLike);
        let prof = profile(&p, &lib, &cm);
        assert_eq!(
            prof.instrs,
            vec![InstrCycles {
                name: "vmlaq_s32".to_owned(),
                count: 2,
                cycles: 4,
            }]
        );
        assert!(prof
            .to_json()
            .contains("\"instrs\": [{\"name\": \"vmlaq_s32\", \"count\": 2, \"cycles\": 4}]"));
        // With fused latency the per-instruction charge tracks vop_cycles.
        let fused = cm.with_fused_latency(3);
        let prof2 = profile(&p, &lib, &fused);
        assert_eq!(prof2.instrs[0].cycles, 10);
    }

    #[test]
    fn json_and_render_are_stable() {
        let p = two_actor_prog();
        let lib = CodeLibrary::new();
        let cm = CostModel::new(Arch::Neon128, Compiler::GccLike);
        let prof = profile(&p, &lib, &cm);
        assert_eq!(prof.to_json(), profile(&p, &lib, &cm).to_json());
        assert!(prof.to_json().contains("\"total_cycles\""));
        let table = prof.render(2);
        assert!(table.contains("cycles/step"));
        assert!(table.contains("… 1 more actors"));
    }
}
