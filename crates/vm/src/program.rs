//! The generated-program IR.
//!
//! All three code generators (HCG, the Simulink-Coder-like baseline and the
//! DFSynth-like baseline) lower a model to this IR. It is deliberately
//! C-shaped — named memory buffers, element loops, scalar statements,
//! vector-register loads/stores/operations, and calls into the intensive-
//! kernel library — so that (a) the interpreter can execute it for value
//! correctness, (b) the cost model can price it per architecture/compiler,
//! and (c) a C-like source rendering can be produced for inspection.

use hcg_isa::{Arch, Pattern};
use hcg_model::op::ElemOp;
use hcg_model::{ActorKind, DataType, SignalType};
use std::fmt;

/// Index of a buffer within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub usize);

/// Index of a virtual vector register within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub usize);

/// Role of a buffer in the generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferKind {
    /// Filled by the caller before every step.
    Input,
    /// Read by the caller after every step.
    Output,
    /// Persistent across steps (UnitDelay state).
    State,
    /// Scratch memory for intermediate actor results.
    Temp,
    /// Constant data, initialised once.
    Const,
}

/// One named memory array.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDecl {
    /// C-level variable name (unique).
    pub name: String,
    /// Element type and length.
    pub ty: SignalType,
    /// Role.
    pub kind: BufferKind,
    /// Initial contents (states and constants; `None` = zeros).
    pub init: Option<Vec<f64>>,
}

/// An element index inside a loop body: a constant or the loop variable
/// plus an offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexExpr {
    /// Absolute constant index.
    Const(usize),
    /// `i + offset`, where `i` is the innermost loop variable.
    Loop(usize),
}

impl IndexExpr {
    /// Resolve against the current loop variable.
    pub fn eval(self, loop_var: usize) -> usize {
        match self {
            IndexExpr::Const(c) => c,
            IndexExpr::Loop(off) => loop_var + off,
        }
    }

    /// Render as C source, with `i` as the loop variable name.
    pub fn render(self) -> String {
        match self {
            IndexExpr::Const(c) => c.to_string(),
            IndexExpr::Loop(0) => "i".to_owned(),
            IndexExpr::Loop(off) => format!("i + {off}"),
        }
    }
}

/// A reference to one element of one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElemRef {
    /// The buffer.
    pub buf: BufferId,
    /// The element.
    pub index: IndexExpr,
}

/// A scalar operation (the element-wise vocabulary plus the basic-actor
/// extras that only exist at scalar level).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarOp {
    /// An element-wise arithmetic/logic operation.
    Elem(ElemOp),
    /// Three-operand select: `c > 0 ? a : b` (the `Switch` actor).
    Select,
    /// Clamp into `[lo, hi]` (the `Saturate` actor).
    Clamp {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Data type conversion to the destination buffer's element type.
    Cast,
    /// Plain element copy.
    Copy,
}

impl ScalarOp {
    /// Operand count.
    pub fn arity(&self) -> usize {
        match self {
            ScalarOp::Elem(op) => op.arity(),
            ScalarOp::Select => 3,
            ScalarOp::Clamp { .. } | ScalarOp::Cast | ScalarOp::Copy => 1,
        }
    }
}

/// One statement of the generated program.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for (size_t i = start; i < end; i += step) { body }`.
    Loop {
        /// First value of the loop variable.
        start: usize,
        /// Exclusive bound.
        end: usize,
        /// Increment (the SIMD batch size, or 1 for scalar loops).
        step: usize,
        /// Loop body (may not contain nested loops).
        body: Vec<Stmt>,
    },
    /// `dst = op(srcs…)` on scalar elements.
    Scalar {
        /// Operation.
        op: ScalarOp,
        /// Destination element.
        dst: ElemRef,
        /// Source elements (length = arity).
        srcs: Vec<ElemRef>,
    },
    /// Load a vector register from memory (`vld1q_s32` and friends).
    VLoad {
        /// Destination register.
        reg: RegId,
        /// Source buffer.
        buf: BufferId,
        /// First lane's element index.
        index: IndexExpr,
    },
    /// Store a vector register to memory.
    VStore {
        /// Destination buffer.
        buf: BufferId,
        /// First lane's element index.
        index: IndexExpr,
        /// Source register.
        reg: RegId,
    },
    /// A SIMD computation instruction selected from the instruction set.
    VOp {
        /// Intrinsic name (for rendering and per-instruction costing).
        instr: String,
        /// The instruction's computing graph with concrete shift amounts.
        pattern: Pattern,
        /// Issue cost from the instruction set description.
        cost: u32,
        /// Destination register.
        dst: RegId,
        /// Source registers, one per pattern input slot.
        srcs: Vec<RegId>,
        /// The rendered C statement (from the instruction's code template),
        /// used verbatim by the source emitter.
        code: String,
    },
    /// Call an intensive-kernel implementation from the code library.
    KernelCall {
        /// Actor kind (identifies the library family).
        actor: ActorKind,
        /// Implementation name within the family.
        impl_name: String,
        /// Input buffers.
        inputs: Vec<BufferId>,
        /// Output buffer.
        output: BufferId,
    },
    /// Whole-buffer copy (delay latching, pass-through wiring).
    Copy {
        /// Destination buffer.
        dst: BufferId,
        /// Source buffer.
        src: BufferId,
    },
}

/// Provenance of one top-level statement: the model actor (and, for
/// HCG-mapped code, the SIMD region) it was emitted for. Pure metadata —
/// the interpreter, cost model and source emitter never read it, so two
/// programs differing only in origins execute, cost and render identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Origin {
    /// Source actor name, when known.
    pub actor: Option<String>,
    /// Mapped-region index within the generator run, when the statement
    /// came out of region instruction mapping.
    pub region: Option<usize>,
}

impl Origin {
    /// Provenance for code emitted on behalf of a single actor.
    pub fn actor(name: impl Into<String>) -> Self {
        Origin {
            actor: Some(name.into()),
            region: None,
        }
    }

    /// Provenance for code emitted for a mapped SIMD region, labelled by
    /// the region's first member actor.
    pub fn region(name: impl Into<String>, index: usize) -> Self {
        Origin {
            actor: Some(name.into()),
            region: Some(index),
        }
    }

    /// Attribution label: the actor name, or `(unattributed)` for default
    /// origins.
    pub fn label(&self) -> &str {
        self.actor.as_deref().unwrap_or("(unattributed)")
    }
}

/// A generated program: buffers plus a statement body executed once per
/// model step.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program (model) name.
    pub name: String,
    /// Generator that produced it (for reports).
    pub generator: String,
    /// Target architecture.
    pub arch: Arch,
    /// All buffers.
    pub buffers: Vec<BufferDecl>,
    /// Number of virtual vector registers used.
    pub reg_count: usize,
    /// Lanes/dtype per register id (parallel to `reg_count`).
    pub reg_types: Vec<(DataType, usize)>,
    /// C-level name per register id (parallel to `reg_count`).
    pub reg_names: Vec<String>,
    /// Statements executed every step.
    pub body: Vec<Stmt>,
    /// Provenance per top-level statement of `body` (parallel to it when
    /// non-empty; generators that don't attribute leave it empty). Recorded
    /// unconditionally — independent of whether tracing is enabled — so
    /// equal inputs always produce equal programs.
    pub origins: Vec<Origin>,
}

impl Program {
    /// An empty program for a target.
    pub fn new(name: impl Into<String>, generator: impl Into<String>, arch: Arch) -> Self {
        Program {
            name: name.into(),
            generator: generator.into(),
            arch,
            buffers: Vec::new(),
            reg_count: 0,
            reg_types: Vec::new(),
            reg_names: Vec::new(),
            body: Vec::new(),
            origins: Vec::new(),
        }
    }

    /// Declare a buffer; returns its id.
    pub fn add_buffer(
        &mut self,
        name: impl Into<String>,
        ty: SignalType,
        kind: BufferKind,
        init: Option<Vec<f64>>,
    ) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(BufferDecl {
            name: name.into(),
            ty,
            kind,
            init,
        });
        id
    }

    /// Allocate a vector register of the given element type and lane count,
    /// named `r{n}`.
    pub fn add_reg(&mut self, dtype: DataType, lanes: usize) -> RegId {
        let name = format!("r{}", self.reg_count);
        self.add_named_reg(dtype, lanes, name)
    }

    /// Allocate a vector register with an explicit C-level name (e.g.
    /// `a_batch` as in the paper's Listing 1).
    pub fn add_named_reg(
        &mut self,
        dtype: DataType,
        lanes: usize,
        name: impl Into<String>,
    ) -> RegId {
        let id = RegId(self.reg_count);
        self.reg_count += 1;
        self.reg_types.push((dtype, lanes));
        self.reg_names.push(name.into());
        id
    }

    /// Look up a buffer by name.
    pub fn buffer_by_name(&self, name: &str) -> Option<BufferId> {
        self.buffers
            .iter()
            .position(|b| b.name == name)
            .map(BufferId)
    }

    /// Buffer declaration access.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn buffer(&self, id: BufferId) -> &BufferDecl {
        &self.buffers[id.0]
    }

    /// Buffers of a given kind, in declaration order.
    pub fn buffers_of(&self, kind: BufferKind) -> Vec<BufferId> {
        (0..self.buffers.len())
            .map(BufferId)
            .filter(|&b| self.buffer(b).kind == kind)
            .collect()
    }

    /// Total bytes of memory the program's buffers occupy — the §4.1 memory
    /// comparison ("almost the same, with only ±1 % difference").
    pub fn memory_footprint(&self) -> usize {
        self.buffers
            .iter()
            .map(|b| b.ty.len() * (b.ty.dtype.bit_width() as usize / 8))
            .sum()
    }

    /// Count statements of each flavour, recursively — used by tests and
    /// the instruction-mix report.
    pub fn stmt_stats(&self) -> StmtStats {
        fn walk(stmts: &[Stmt], s: &mut StmtStats) {
            for st in stmts {
                match st {
                    Stmt::Loop { body, .. } => {
                        s.loops += 1;
                        walk(body, s);
                    }
                    Stmt::Scalar { .. } => s.scalar_ops += 1,
                    Stmt::VLoad { .. } => s.vloads += 1,
                    Stmt::VStore { .. } => s.vstores += 1,
                    Stmt::VOp { .. } => s.vops += 1,
                    Stmt::KernelCall { .. } => s.kernel_calls += 1,
                    Stmt::Copy { .. } => s.copies += 1,
                }
            }
        }
        let mut s = StmtStats::default();
        walk(&self.body, &mut s);
        s
    }
}

/// Statement counts per flavour (static, not dynamic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmtStats {
    /// `for` loops.
    pub loops: usize,
    /// Scalar element statements.
    pub scalar_ops: usize,
    /// Vector loads.
    pub vloads: usize,
    /// Vector stores.
    pub vstores: usize,
    /// Vector compute instructions.
    pub vops: usize,
    /// Intensive kernel calls.
    pub kernel_calls: usize,
    /// Whole-buffer copies.
    pub copies: usize,
}

impl fmt::Display for StmtStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loops={} scalar={} vload={} vstore={} vop={} kernel={} copy={}",
            self.loops,
            self.scalar_ops,
            self.vloads,
            self.vstores,
            self.vops,
            self.kernel_calls,
            self.copies
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcg_model::DataType;

    #[test]
    fn buffer_bookkeeping() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer(
            "a",
            SignalType::vector(DataType::I32, 8),
            BufferKind::Input,
            None,
        );
        let b = p.add_buffer(
            "b",
            SignalType::vector(DataType::I32, 8),
            BufferKind::Output,
            None,
        );
        assert_eq!(p.buffer_by_name("a"), Some(a));
        assert_eq!(p.buffer_by_name("zz"), None);
        assert_eq!(p.buffers_of(BufferKind::Output), vec![b]);
        assert_eq!(p.memory_footprint(), 2 * 8 * 4);
    }

    #[test]
    fn index_expr_eval_and_render() {
        assert_eq!(IndexExpr::Const(3).eval(10), 3);
        assert_eq!(IndexExpr::Loop(2).eval(10), 12);
        assert_eq!(IndexExpr::Loop(0).render(), "i");
        assert_eq!(IndexExpr::Loop(4).render(), "i + 4");
        assert_eq!(IndexExpr::Const(7).render(), "7");
    }

    #[test]
    fn stmt_stats_walks_loops() {
        let mut p = Program::new("t", "test", Arch::Neon128);
        let a = p.add_buffer(
            "a",
            SignalType::vector(DataType::I32, 8),
            BufferKind::Input,
            None,
        );
        let o = p.add_buffer(
            "o",
            SignalType::vector(DataType::I32, 8),
            BufferKind::Output,
            None,
        );
        p.body.push(Stmt::Loop {
            start: 0,
            end: 8,
            step: 1,
            body: vec![Stmt::Scalar {
                op: ScalarOp::Elem(ElemOp::Abs),
                dst: ElemRef {
                    buf: o,
                    index: IndexExpr::Loop(0),
                },
                srcs: vec![ElemRef {
                    buf: a,
                    index: IndexExpr::Loop(0),
                }],
            }],
        });
        let s = p.stmt_stats();
        assert_eq!(s.loops, 1);
        assert_eq!(s.scalar_ops, 1);
    }

    #[test]
    fn scalar_op_arity() {
        assert_eq!(ScalarOp::Elem(ElemOp::Add).arity(), 2);
        assert_eq!(ScalarOp::Select.arity(), 3);
        assert_eq!(ScalarOp::Clamp { lo: 0.0, hi: 1.0 }.arity(), 1);
        assert_eq!(ScalarOp::Cast.arity(), 1);
    }
}
