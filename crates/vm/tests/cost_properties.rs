//! Cost-model invariants: monotonicity in loop trip counts, platform
//! orderings, and the spill mechanism that drives Figure 5(b).

use hcg_isa::Arch;
use hcg_kernels::CodeLibrary;
use hcg_model::op::ElemOp;
use hcg_model::{DataType, SignalType};
use hcg_vm::{BufferKind, Compiler, CostModel, ElemRef, IndexExpr, Program, ScalarOp, Stmt};
use proptest::prelude::*;

fn scalar_loop(n: usize, op: ElemOp) -> Program {
    let ty = SignalType::vector(DataType::F32, n.max(1));
    let mut p = Program::new("t", "test", Arch::Neon128);
    let a = p.add_buffer("a", ty, BufferKind::Input, None);
    let o = p.add_buffer("o", ty, BufferKind::Output, None);
    let at = |buf| ElemRef {
        buf,
        index: IndexExpr::Loop(0),
    };
    let srcs = if op.arity() == 1 {
        vec![at(a)]
    } else {
        vec![at(a), at(a)]
    };
    p.body.push(Stmt::Loop {
        start: 0,
        end: n,
        step: 1,
        body: vec![Stmt::Scalar {
            op: ScalarOp::Elem(op),
            dst: at(o),
            srcs,
        }],
    });
    p
}

proptest! {
    /// Cost is monotone in the element count.
    #[test]
    fn cost_monotone_in_length(n in 1usize..2000, extra in 1usize..500) {
        let lib = CodeLibrary::new();
        let m = CostModel::new(Arch::Neon128, Compiler::GccLike);
        prop_assert!(m.cycles(&scalar_loop(n, ElemOp::Add), &lib)
            < m.cycles(&scalar_loop(n + extra, ElemOp::Add), &lib));
    }

    /// Expensive operations cost at least as much as cheap ones.
    #[test]
    fn op_cost_ordering(n in 1usize..500) {
        let lib = CodeLibrary::new();
        let m = CostModel::new(Arch::Neon128, Compiler::GccLike);
        let add = m.cycles(&scalar_loop(n, ElemOp::Add), &lib);
        let mul = m.cycles(&scalar_loop(n, ElemOp::Mul), &lib);
        let div = m.cycles(&scalar_loop(n, ElemOp::Div), &lib);
        prop_assert!(add <= mul && mul <= div);
    }

    /// Clang-like scalar code is never slower than GCC-like (the scalar
    /// quality factor).
    #[test]
    fn clang_scalar_quality(n in 1usize..500) {
        let lib = CodeLibrary::new();
        let p = scalar_loop(n, ElemOp::Mul);
        let gcc = CostModel::new(Arch::Neon128, Compiler::GccLike).cycles(&p, &lib);
        let clang = CostModel::new(Arch::Neon128, Compiler::ClangLike).cycles(&p, &lib);
        prop_assert!(clang <= gcc);
    }

    /// Time scales linearly with iterations.
    #[test]
    fn time_linear_in_iterations(n in 1usize..200, iters in 1u64..100_000) {
        let lib = CodeLibrary::new();
        let m = CostModel::new(Arch::Avx256, Compiler::ClangLike);
        let p = scalar_loop(n, ElemOp::Add);
        let t1 = m.time_seconds(&p, &lib, iters);
        let t2 = m.time_seconds(&p, &lib, 2 * iters);
        prop_assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }
}

#[test]
fn spill_penalty_only_for_gcc_temps() {
    let lib = CodeLibrary::new();
    let mk = |kind: BufferKind| {
        let ty = SignalType::vector(DataType::I32, 64);
        let mut p = Program::new("t", "test", Arch::Avx256);
        let a = p.add_buffer("a", ty, BufferKind::Input, None);
        let o = p.add_buffer("o", ty, kind, None);
        let r = p.add_reg(DataType::I32, 8);
        p.body.push(Stmt::Loop {
            start: 0,
            end: 64,
            step: 8,
            body: vec![
                Stmt::VLoad {
                    reg: r,
                    buf: a,
                    index: IndexExpr::Loop(0),
                },
                Stmt::VStore {
                    buf: o,
                    index: IndexExpr::Loop(0),
                    reg: r,
                },
            ],
        });
        p
    };
    let gcc = CostModel::new(Arch::Avx256, Compiler::GccLike);
    let clang = CostModel::new(Arch::Avx256, Compiler::ClangLike);
    let temp = mk(BufferKind::Temp);
    let out = mk(BufferKind::Output);
    // GCC: temps cost extra; outputs don't.
    assert!(gcc.cycles(&temp, &lib) > gcc.cycles(&out, &lib));
    // Clang: nearly flat.
    assert!(clang.cycles(&temp, &lib) <= gcc.cycles(&temp, &lib));
    assert_eq!(clang.cycles(&out, &lib), gcc.cycles(&out, &lib));
}
