//! # hcg-exec — the parallel execution engine
//!
//! A work-stealing thread-pool scheduler for compilation fleets: the
//! evaluation harness fans its model × generator × architecture
//! [`CompileSession`](../hcg_core/struct.CompileSession.html) jobs across N
//! workers. Three properties matter more than raw scheduling cleverness:
//!
//! 1. **Deterministic result ordering** — results come back indexed by
//!    submission order, so a parallel fleet run is byte-identical to the
//!    sequential run no matter how jobs interleave.
//! 2. **Per-job panic isolation** — a panicking job becomes an
//!    `Err(JobPanic)` in its result slot instead of tearing down the whole
//!    fleet.
//! 3. **Borrowed job state** — jobs run on [`std::thread::scope`] threads,
//!    so they can borrow shared state (sessions, instruction sets) without
//!    `Arc`-wrapping the world.
//!
//! The scheduler is a classic work-stealing design built only on `std`:
//! each worker owns a deque seeded round-robin; a worker pops from the
//! *front* of its own deque and, when empty, steals from the *back* of a
//! victim's deque (cyclic scan starting at its right neighbour). Jobs never
//! spawn jobs, so global emptiness is monotonic and workers can exit as
//! soon as a full scan finds nothing.
//!
//! # Examples
//!
//! ```
//! let jobs: Vec<_> = (0..16).map(|i| move || i * i).collect();
//! let results = hcg_exec::run_jobs(4, jobs);
//! let squares: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(squares[5], 25); // submission order, not completion order
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};

/// A job panicked; the payload message is preserved, the fleet continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the job that panicked.
    pub index: usize,
    /// Panic payload rendered as text (`&str`/`String` payloads verbatim,
    /// anything else as a placeholder).
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Per-job outcome: the job's value, or the isolated panic.
pub type JobResult<T> = Result<T, JobPanic>;

/// Counters describing one pool run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Jobs executed by a worker other than the one whose deque they were
    /// seeded into.
    pub steals: u64,
}

impl PoolStats {
    /// These stats as an [`hcg_obs::MetricsSnapshot`] — the shared schema
    /// every JSON report embeds telemetry through.
    pub fn snapshot(&self) -> hcg_obs::MetricsSnapshot {
        let mut s = hcg_obs::MetricsSnapshot::new();
        s.set_counter("exec.pool.workers", self.workers as u64);
        s.set_counter("exec.pool.steals", self.steals);
        s
    }
}

/// Resolve a requested thread count: `0` means "all available cores",
/// anything else is taken as-is (callers cap against job count separately).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Run `jobs` on a work-stealing pool of up to `threads` workers and return
/// one [`JobResult`] per job **in submission order**.
///
/// `threads == 0` uses every available core. The pool never spawns more
/// workers than there are jobs. Jobs may borrow from the caller's stack —
/// workers are scoped threads.
pub fn run_jobs<T, F>(threads: usize, jobs: Vec<F>) -> Vec<JobResult<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_jobs_with_stats(threads, jobs).0
}

/// [`run_jobs`], additionally reporting scheduler statistics.
pub fn run_jobs_with_stats<T, F>(threads: usize, jobs: Vec<F>) -> (Vec<JobResult<T>>, PoolStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n_jobs = jobs.len();
    if n_jobs == 0 {
        return (Vec::new(), PoolStats::default());
    }
    let workers = effective_threads(threads).clamp(1, n_jobs);

    // Seed the per-worker deques round-robin by submission index. Each
    // entry remembers its home worker so steals can be counted.
    let deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, job) in jobs.into_iter().enumerate() {
        deques[index % workers]
            .lock()
            .expect("deque lock poisoned during seeding")
            .push_back((index, job));
    }

    let steals = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobResult<T>)>();
    // Capture the submitter's trace context so spans recorded inside the
    // jobs stitch under the submitting thread's open span — one request's
    // compile fan-out stays one tree even across the pool boundary.
    let submitter_ctx = hcg_obs::current_trace_context();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let steals = &steals;
            let tx = tx.clone();
            scope.spawn(move || {
                let _trace = hcg_obs::trace_scope(submitter_ctx);
                loop {
                    // Own work first: pop the front (submission order).
                    let mine = deques[me].lock().expect("deque lock poisoned").pop_front();
                    let (index, job, stolen) = match mine {
                        Some((index, job)) => (index, job, false),
                        None => {
                            // Steal scan: victims in cyclic order, taking
                            // from the back (the opposite end of the
                            // victim's own pops) to minimise contention.
                            let mut found = None;
                            for off in 1..workers {
                                let victim = (me + off) % workers;
                                if let Some(item) = deques[victim]
                                    .lock()
                                    .expect("deque lock poisoned")
                                    .pop_back()
                                {
                                    found = Some(item);
                                    break;
                                }
                            }
                            match found {
                                Some((index, job)) => (index, job, true),
                                // Jobs never enqueue jobs, so an empty scan
                                // means the fleet is drained.
                                None => break,
                            }
                        }
                    };
                    if stolen {
                        steals.fetch_add(1, Ordering::Relaxed);
                    }
                    let _job_span = hcg_obs::span_with("exec", || {
                        format!("job{index}{}", if stolen { " (stolen)" } else { "" })
                    });
                    let outcome = catch_unwind(AssertUnwindSafe(job)).map_err(|payload| JobPanic {
                        index,
                        message: panic_message(payload.as_ref()),
                    });
                    if tx.send((index, outcome)).is_err() {
                        break; // receiver gone — nothing left to report to
                    }
                }
                // Publish any still-buffered spans before the scope joins
                // this worker: thread-local destructors can run after the
                // join, so without this flush a caller draining events
                // right after `run_jobs` returns could miss worker spans.
                hcg_obs::flush_thread();
            });
        }
        drop(tx);

        // Deterministic ordering: place each result by submission index.
        let mut slots: Vec<Option<JobResult<T>>> = (0..n_jobs).map(|_| None).collect();
        for (index, outcome) in rx {
            slots[index] = Some(outcome);
        }
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.unwrap_or_else(|| {
                    // A worker died between dequeue and send (double panic);
                    // surface it as a job failure rather than losing a slot.
                    Err(JobPanic {
                        index,
                        message: "worker lost before reporting".into(),
                    })
                })
            })
            .collect();
        let stats = PoolStats {
            workers,
            steals: steals.load(Ordering::Relaxed),
        };
        let registry = hcg_obs::MetricsRegistry::global();
        registry.counter_add("exec.pool.runs", 1);
        registry.counter_add("exec.pool.jobs", n_jobs as u64);
        registry.counter_add("exec.pool.steals", stats.steals);
        registry.counter_add("exec.pool.workers_spawned", stats.workers as u64);
        (results, stats)
    })
}

/// Render a panic payload the way the default hook does.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn empty_fleet() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        let (results, stats) = run_jobs_with_stats(4, jobs);
        assert!(results.is_empty());
        assert_eq!(stats.workers, 0);
    }

    #[test]
    fn results_in_submission_order_regardless_of_threads() {
        for threads in [1, 2, 3, 8, 0] {
            let jobs: Vec<_> = (0..37usize).map(|i| move || i * 3).collect();
            let results = run_jobs(threads, jobs);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r.as_ref().unwrap(), i * 3, "threads={threads}");
            }
        }
    }

    #[test]
    fn workers_capped_by_job_count() {
        let jobs: Vec<_> = (0..2usize).map(|i| move || i).collect();
        let (_, stats) = run_jobs_with_stats(16, jobs);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn jobs_can_borrow_caller_state() {
        let data: Vec<u64> = (0..100).collect();
        let slices: Vec<&[u64]> = data.chunks(10).collect();
        let jobs: Vec<_> = slices
            .iter()
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let total: u64 = run_jobs(4, jobs).into_iter().map(|r| r.unwrap()).sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn panic_is_isolated_to_its_slot() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("boom {i}");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = run_jobs(4, jobs);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 3);
                assert!(e.message.contains("boom 3"), "{}", e.message);
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // Worker 0's deque is seeded with the slow job plus a pile of fast
        // ones (round-robin over 2 workers); worker 1 drains its own and
        // must steal worker 0's backlog.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(40));
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let (results, stats) = run_jobs_with_stats(2, jobs);
        assert!(results.iter().all(|r| r.is_ok()));
        assert!(stats.steals > 0, "expected steals, got {stats:?}");
    }

    #[test]
    fn every_job_runs_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..200usize)
            .map(|i| {
                move || {
                    COUNT.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let results = run_jobs(0, jobs);
        assert_eq!(results.len(), 200);
        assert_eq!(COUNT.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn empty_fleet_with_zero_threads() {
        // `threads == 0` resolves to core count, but an empty job list must
        // still spawn nothing at all.
        let jobs: Vec<fn() -> u32> = Vec::new();
        let (results, stats) = run_jobs_with_stats(0, jobs);
        assert!(results.is_empty());
        assert_eq!(stats, PoolStats::default());
    }

    #[test]
    fn single_thread_never_steals() {
        let jobs: Vec<_> = (0..50usize).map(|i| move || i + 1).collect();
        let (results, stats) = run_jobs_with_stats(1, jobs);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0, "one worker has nobody to steal from");
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i + 1);
        }
    }

    #[test]
    fn single_job_with_huge_thread_request() {
        // 10 000 requested threads, one job: exactly one worker spawns.
        let (results, stats) = run_jobs_with_stats(10_000, vec![|| 42u32]);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
        assert_eq!(*results[0].as_ref().unwrap(), 42);
    }

    #[test]
    fn many_more_threads_than_jobs() {
        // Excess workers must park/exit cleanly without stealing phantom
        // work or dropping result slots.
        for threads in [5, 64, 1000] {
            let jobs: Vec<_> = (0..3usize).map(|i| move || i * 7).collect();
            let (results, stats) = run_jobs_with_stats(threads, jobs);
            assert_eq!(stats.workers, 3, "threads={threads}");
            assert_eq!(results.len(), 3);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r.as_ref().unwrap(), i * 7);
            }
        }
    }

    #[test]
    fn all_jobs_panicking_still_returns_every_slot() {
        for threads in [1, 4] {
            let jobs: Vec<_> = (0..6usize)
                .map(|i| move || -> usize { panic!("dead {i}") })
                .collect();
            let results = run_jobs(threads, jobs);
            assert_eq!(results.len(), 6);
            for (i, r) in results.iter().enumerate() {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, i);
                assert!(e.message.contains(&format!("dead {i}")));
            }
        }
    }

    #[test]
    fn string_and_non_string_panic_payloads() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| std::panic::panic_any("static str".to_owned())),
            Box::new(|| std::panic::panic_any(17u32)),
        ];
        let results = run_jobs(2, jobs);
        assert_eq!(results[0].as_ref().unwrap_err().message, "static str");
        assert_eq!(
            results[1].as_ref().unwrap_err().message,
            "non-string panic payload"
        );
    }

    #[test]
    fn panic_display_formats() {
        let p = JobPanic {
            index: 2,
            message: "x".into(),
        };
        assert_eq!(p.to_string(), "job 2 panicked: x");
    }
}
