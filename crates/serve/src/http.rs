//! A hand-rolled HTTP/1.1 subset over `std::io` streams — dependency-free,
//! like everything else in this workspace.
//!
//! The daemon only needs the minimal shape of the protocol: one request per
//! connection (`Connection: close` semantics), a request line, headers, an
//! optional `Content-Length` body, and a response writer. Both sides are
//! plain functions over `Read`/`Write`, so unit tests drive them with
//! in-memory cursors and the server drives them with `TcpStream`s.

use std::io::{self, BufRead, Write};

/// Upper bound on header count (defense against degenerate inputs).
const MAX_HEADERS: usize = 64;
/// Upper bound on a single header line / request line, in bytes.
const MAX_LINE_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (model XML), in bytes.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Raw query string (after `?`, empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `key` in the query string (`k=v` pairs split on `&`).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// A request that could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying transport error.
    Io(io::Error),
    /// Malformed request (the description is safe to echo to the client).
    Malformed(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn malformed(m: impl Into<String>) -> HttpError {
    HttpError::Malformed(m.into())
}

/// Read one `\r\n`- (or `\n`-) terminated line, without the terminator.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte)?;
        if n == 0 {
            break;
        }
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(malformed("header line too long"));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| malformed("non-UTF-8 header line"))
}

/// Read and parse one request from `reader`.
///
/// # Errors
///
/// Returns [`HttpError::Malformed`] on protocol violations (bad request
/// line, oversized body, non-numeric `Content-Length`) and
/// [`HttpError::Io`] when the transport fails mid-request.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    if request_line.is_empty() {
        return Err(malformed("empty request line"));
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| malformed("missing method"))?;
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version {version:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(malformed("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| malformed("non-numeric Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(malformed(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method: method.to_owned(),
        path,
        query,
        headers,
        body,
    })
}

/// A response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Extra headers beyond the always-written `Content-Length`,
    /// `Content-Type` and `Connection: close`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a status and a text body.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// `self` with an extra header appended.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// The standard reason phrase for the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Response",
    }
}

/// Serialize and write `response`, flushing the stream.
///
/// # Errors
///
/// Returns the transport error, if any (the caller usually just drops the
/// connection in that case).
pub fn write_response(writer: &mut impl Write, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nContent-Type: text/plain; charset=utf-8\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(text.as_bytes().to_vec()))
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let r = parse(
            "POST /compile?generator=hcg&arch=neon128 HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/compile");
        assert_eq!(r.query, "generator=hcg&arch=neon128");
        assert_eq!(r.query_param("generator"), Some("hcg"));
        assert_eq!(r.query_param("arch"), Some("neon128"));
        assert_eq!(r.query_param("beam"), None);
        assert_eq!(r.header("host"), Some("localhost"));
        assert_eq!(r.header("HOST"), Some("localhost"));
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert_eq!(r.query, "");
        assert!(r.body.is_empty());
    }

    #[test]
    fn tolerates_bare_newlines() {
        let r = parse("GET /health HTTP/1.1\nAccept: text\n\n").unwrap();
        assert_eq!(r.path, "/health");
        assert_eq!(r.header("accept"), Some("text"));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse(""), Err(HttpError::Malformed(_))));
        assert!(matches!(parse("GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let oversized = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&oversized), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_roundtrips_through_writer() {
        let mut out = Vec::new();
        let resp = Response::text(200, "body text").with_header("X-Cache", "hit");
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 9\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\nbody text"));
    }

    #[test]
    fn status_reasons() {
        for (status, phrase) in [(404, "Not Found"), (422, "Unprocessable Entity")] {
            let mut out = Vec::new();
            write_response(&mut out, &Response::text(status, "x")).unwrap();
            assert!(String::from_utf8(out)
                .unwrap()
                .starts_with(&format!("HTTP/1.1 {status} {phrase}")));
        }
    }
}
