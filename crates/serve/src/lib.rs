//! # hcg-serve — compile-as-a-service
//!
//! A long-running daemon that turns the HCG pipeline into a service: it
//! accepts Simulink-like model XML plus compile options over a hand-rolled
//! HTTP/1.1 front end (plain [`std::net::TcpListener`], no dependencies),
//! keys every artifact by a content hash of `(options, model bytes)`, and
//! answers repeat requests from a sharded LRU cache instead of
//! recompiling.
//!
//! The service composes the rest of the workspace rather than
//! reimplementing it:
//!
//! - compiles run through [`hcg_core::CompileSession`], so every option
//!   combination over one model shares a single parsed/validated front
//!   end (the session cache is itself LRU-capped);
//! - connections fan out over the [`hcg_exec`] work-stealing pool;
//! - cache and request counters mirror into
//!   [`hcg_obs::MetricsRegistry::global`] and compile spans go to the
//!   [`hcg_obs`] tracer; `GET /metrics` serves the live snapshot.
//!
//! Concurrent identical requests are deduplicated in flight
//! (single-flight): the first arrival compiles, the rest block and reuse
//! its outcome. Failures are cached too (negative caching), so a
//! repeatedly-submitted invalid model costs one front-end validation.
//!
//! ## Endpoints
//!
//! | Route | Behavior |
//! |---|---|
//! | `POST /compile?generator=&arch=&beam=` | body = model XML; 200 + C source, or 422 + error text; `X-Cache: hit`/`miss`/`join`, `X-Content-Key` prefix |
//! | `GET /metrics` | counters, gauges and latency histograms as JSON; `?format=prometheus` for scrape text |
//! | `GET /health` | liveness probe |
//! | `GET /debug/requests` | flight recorder: the last N completed requests with stage timings |
//! | `POST /shutdown` | graceful stop |
//!
//! Every response carries an `X-Trace-Id` header (16 hex digits),
//! server-assigned on accept or adopted from an inbound `X-Trace-Id`;
//! with tracing enabled, all of a request's spans — accept thread, queue
//! handoff, worker — stitch into one tree under that id. A
//! `--access-log PATH` (or [`ServeConfig::access_log`]) appends one JSON
//! line per completed request.
//!
//! ## Example
//!
//! ```
//! use hcg_serve::{client, spawn, ServeConfig};
//!
//! let handle = spawn(ServeConfig::default()).unwrap();
//! let xml = hcg_model::parser::model_to_xml(&hcg_model::library::fig2_model());
//! let first = client::compile(handle.addr(), "arch=neon128", xml.as_bytes()).unwrap();
//! let second = client::compile(handle.addr(), "arch=neon128", xml.as_bytes()).unwrap();
//! assert_eq!(first.status, 200);
//! assert_eq!(second.header("x-cache"), Some("hit"));
//! assert_eq!(first.body, second.body);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod key;
pub mod server;
pub mod telemetry;

pub use cache::{
    AdmitReport, ArtifactProvider, ArtifactStore, DiskStore, MemoryStore, Outcome, ShardedCache,
};
pub use key::{BadOptions, CompileOptions, ContentKey};
pub use server::{spawn, ServeConfig, ServeCounters, ServeHandle};
pub use telemetry::{
    format_trace_id, parse_trace_id, FlightRecorder, RequestRecord, ServeHists, TraceIdGen,
};
