//! The sharded, content-addressed artifact cache.
//!
//! The cache is split into N independent shards selected by the key's high
//! hash word; each shard is guarded by its own `RwLock`, so concurrent
//! requests for different keys rarely contend. Lookups take the shard's
//! *read* lock and bump an atomic recency stamp; admissions take the
//! *write* lock and evict least-recently-used entries until the shard fits
//! its byte budget again.
//!
//! Persistence is pluggable behind [`ArtifactStore`]: [`MemoryStore`]
//! keeps artifacts only in the in-memory index, [`DiskStore`] mirrors
//! every admitted artifact to one file per key and preloads the index from
//! those files at startup (warm restart). Callers that do not care which
//! one backs the cache hold it as a `dyn` [`ArtifactProvider`].

use crate::key::ContentKey;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The result of one compile: the generated C source, or the front-end /
/// synthesis error text. Failures are cached too (negative caching), so a
/// repeatedly-submitted bad model costs one validation, not many.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Successful compile: the full generated C translation unit.
    Success(Arc<String>),
    /// Failed compile: the error message shown to the client.
    Failure(Arc<String>),
}

impl Outcome {
    /// The payload text (source or error).
    pub fn text(&self) -> &str {
        match self {
            Outcome::Success(s) | Outcome::Failure(s) => s,
        }
    }

    /// Payload size in bytes, the unit of the shard budget.
    pub fn byte_len(&self) -> usize {
        self.text().len()
    }

    /// `true` for [`Outcome::Failure`].
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Failure(_))
    }

    /// Serialize for the disk store: a one-line tag, then the payload.
    fn to_disk_bytes(&self) -> Vec<u8> {
        let tag: &[u8] = match self {
            Outcome::Success(_) => b"ok\n",
            Outcome::Failure(_) => b"err\n",
        };
        let mut out = Vec::with_capacity(tag.len() + self.byte_len());
        out.extend_from_slice(tag);
        out.extend_from_slice(self.text().as_bytes());
        out
    }

    /// Parse the disk-store form; `None` when the file is not ours.
    fn from_disk_bytes(bytes: &[u8]) -> Option<Self> {
        let text = |rest: &[u8]| String::from_utf8(rest.to_vec()).ok().map(Arc::new);
        if let Some(rest) = bytes.strip_prefix(b"ok\n") {
            return Some(Outcome::Success(text(rest)?));
        }
        if let Some(rest) = bytes.strip_prefix(b"err\n") {
            return Some(Outcome::Failure(text(rest)?));
        }
        None
    }
}

/// Persistence hooks invoked under the owning shard's write lock.
pub trait ArtifactStore: Send + Sync {
    /// Persist `outcome` under `key` (no-op for memory-only stores).
    fn persist(&self, key: ContentKey, outcome: &Outcome);
    /// Drop any persisted copy of `key` (called on eviction).
    fn discard(&self, key: ContentKey);
    /// Every persisted artifact, for index preload at construction.
    fn preload(&self) -> Vec<(ContentKey, Outcome)>;
}

/// In-memory-only persistence: artifacts live solely in the shard index.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryStore;

impl ArtifactStore for MemoryStore {
    fn persist(&self, _key: ContentKey, _outcome: &Outcome) {}
    fn discard(&self, _key: ContentKey) {}
    fn preload(&self) -> Vec<(ContentKey, Outcome)> {
        Vec::new()
    }
}

/// Disk-backed persistence: one `<hex key>.art` file per artifact under a
/// root directory. A cache constructed over a previously-used root starts
/// warm — every artifact still on disk is preloaded into the index.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// A store rooted at `root`, creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStore { root })
    }

    fn path_for(&self, key: ContentKey) -> PathBuf {
        self.root.join(format!("{}.art", key.hex()))
    }

    fn key_from_stem(stem: &str) -> Option<ContentKey> {
        if stem.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&stem[..16], 16).ok()?;
        let lo = u64::from_str_radix(&stem[16..], 16).ok()?;
        Some(ContentKey { hi, lo })
    }
}

impl ArtifactStore for DiskStore {
    fn persist(&self, key: ContentKey, outcome: &Outcome) {
        // Persistence is best-effort: a full disk degrades the cache to
        // memory-only behavior rather than failing the request.
        let _ = std::fs::write(self.path_for(key), outcome.to_disk_bytes());
    }

    fn discard(&self, key: ContentKey) {
        let _ = std::fs::remove_file(self.path_for(key));
    }

    fn preload(&self) -> Vec<(ContentKey, Outcome)> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("art") {
                continue;
            }
            let Some(key) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(Self::key_from_stem)
            else {
                continue;
            };
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if let Some(outcome) = Outcome::from_disk_bytes(&bytes) {
                out.push((key, outcome));
            }
        }
        // Deterministic preload order regardless of directory iteration.
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

/// One cached artifact plus its LRU bookkeeping.
#[derive(Debug)]
struct Entry {
    outcome: Outcome,
    bytes: usize,
    /// Recency stamp from the cache-wide logical clock. Updated with a
    /// relaxed store under the shard *read* lock — stamps order evictions,
    /// they do not synchronize data.
    stamp: AtomicU64,
}

/// One shard: an index plus its current payload byte total.
#[derive(Debug, Default)]
struct Shard {
    index: HashMap<ContentKey, Entry>,
    bytes: usize,
}

/// What [`ArtifactProvider::admit`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmitReport {
    /// Whether the artifact was inserted (false: already present).
    pub admitted: bool,
    /// Entries evicted to make room.
    pub evicted: u64,
    /// Payload bytes those evictions freed.
    pub evicted_bytes: u64,
}

/// The whole-cache interface the server holds, object-safe so memory- and
/// disk-backed caches are interchangeable at runtime.
pub trait ArtifactProvider: Send + Sync {
    /// The cached outcome for `key`, bumping its recency.
    fn fetch(&self, key: ContentKey) -> Option<Outcome>;
    /// Insert `outcome` under `key`, evicting LRU entries as needed.
    /// First writer wins: re-admitting an existing key is a no-op.
    fn admit(&self, key: ContentKey, outcome: Outcome) -> AdmitReport;
    /// Total live entries across all shards.
    fn entries(&self) -> usize;
    /// Total payload bytes across all shards.
    fn bytes(&self) -> usize;
    /// Number of shards.
    fn shard_count(&self) -> usize;
}

/// The sharded LRU cache over a persistence store.
#[derive(Debug)]
pub struct ShardedCache<S: ArtifactStore> {
    shards: Vec<RwLock<Shard>>,
    store: S,
    budget_per_shard: usize,
    clock: AtomicU64,
}

impl<S: ArtifactStore> ShardedCache<S> {
    /// A cache of `shards` shards, each holding at most `budget_per_shard`
    /// payload bytes, preloading any artifacts `store` already persists.
    /// `shards` is clamped to at least 1.
    pub fn new(shards: usize, budget_per_shard: usize, store: S) -> Self {
        let cache = ShardedCache {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
            store,
            budget_per_shard,
            clock: AtomicU64::new(1),
        };
        for (key, outcome) in cache.store.preload() {
            cache.admit(key, outcome);
        }
        cache
    }

    fn shard(&self, key: ContentKey) -> &RwLock<Shard> {
        &self.shards[key.shard(self.shards.len())]
    }

    fn next_stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }
}

impl<S: ArtifactStore> ArtifactProvider for ShardedCache<S> {
    fn fetch(&self, key: ContentKey) -> Option<Outcome> {
        let shard = self.shard(key).read().expect("cache shard poisoned");
        let entry = shard.index.get(&key)?;
        entry.stamp.store(self.next_stamp(), Ordering::Relaxed);
        Some(entry.outcome.clone())
    }

    fn admit(&self, key: ContentKey, outcome: Outcome) -> AdmitReport {
        let bytes = outcome.byte_len();
        let mut shard = self.shard(key).write().expect("cache shard poisoned");
        if shard.index.contains_key(&key) {
            return AdmitReport::default();
        }
        let mut report = AdmitReport {
            admitted: true,
            ..AdmitReport::default()
        };
        // Evict least-recently-used entries until the new artifact fits.
        // An artifact bigger than the whole budget still goes in (over an
        // emptied shard): refusing it would force a recompile on every
        // request, the worst possible cache behavior.
        while shard.bytes + bytes > self.budget_per_shard && !shard.index.is_empty() {
            let victim = *shard
                .index
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k)
                .expect("non-empty index has a minimum");
            let evicted = shard.index.remove(&victim).expect("victim present");
            shard.bytes -= evicted.bytes;
            report.evicted += 1;
            report.evicted_bytes += evicted.bytes as u64;
            self.store.discard(victim);
        }
        self.store.persist(key, &outcome);
        shard.bytes += bytes;
        shard.index.insert(
            key,
            Entry {
                outcome,
                bytes,
                stamp: AtomicU64::new(self.next_stamp()),
            },
        );
        report
    }

    fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").index.len())
            .sum()
    }

    fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").bytes)
            .sum()
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ContentKey {
        // Distinct keys all mapping to shard 0 of a 1-shard cache.
        ContentKey { hi: n, lo: n ^ 7 }
    }

    fn ok(text: &str) -> Outcome {
        Outcome::Success(Arc::new(text.to_owned()))
    }

    #[test]
    fn fetch_returns_admitted_outcome() {
        let cache = ShardedCache::new(4, 1 << 20, MemoryStore);
        assert!(cache.fetch(key(1)).is_none());
        let report = cache.admit(key(1), ok("int main;"));
        assert!(report.admitted);
        assert_eq!(report.evicted, 0);
        assert_eq!(cache.fetch(key(1)).unwrap().text(), "int main;");
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.bytes(), "int main;".len());
        assert_eq!(cache.shard_count(), 4);
    }

    #[test]
    fn first_writer_wins_on_readmission() {
        let cache = ShardedCache::new(1, 1 << 20, MemoryStore);
        cache.admit(key(1), ok("first"));
        let report = cache.admit(key(1), ok("second"));
        assert!(!report.admitted);
        assert_eq!(cache.fetch(key(1)).unwrap().text(), "first");
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn lru_eviction_respects_fetch_recency() {
        // Budget fits exactly two 4-byte entries.
        let cache = ShardedCache::new(1, 8, MemoryStore);
        cache.admit(key(1), ok("aaaa"));
        cache.admit(key(2), ok("bbbb"));
        // Touch key 1 so key 2 becomes the LRU victim.
        cache.fetch(key(1)).unwrap();
        let report = cache.admit(key(3), ok("cccc"));
        assert!(report.admitted);
        assert_eq!(report.evicted, 1);
        assert_eq!(report.evicted_bytes, 4);
        assert!(cache.fetch(key(1)).is_some(), "recently-used survives");
        assert!(cache.fetch(key(2)).is_none(), "LRU evicted");
        assert!(cache.fetch(key(3)).is_some());
        assert_eq!(cache.bytes(), 8);
    }

    #[test]
    fn oversized_artifact_empties_shard_but_is_admitted() {
        let cache = ShardedCache::new(1, 8, MemoryStore);
        cache.admit(key(1), ok("aaaa"));
        cache.admit(key(2), ok("bbbb"));
        let report = cache.admit(key(3), ok("cccccccccccc"));
        assert!(report.admitted);
        assert_eq!(report.evicted, 2);
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.fetch(key(3)).unwrap().text(), "cccccccccccc");
    }

    #[test]
    fn failures_cache_like_successes() {
        let cache = ShardedCache::new(2, 1 << 20, MemoryStore);
        let err = Outcome::Failure(Arc::new("model invalid: cycle".to_owned()));
        cache.admit(key(9), err.clone());
        let fetched = cache.fetch(key(9)).unwrap();
        assert!(fetched.is_failure());
        assert_eq!(fetched.text(), "model invalid: cycle");
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = ShardedCache::new(8, 1 << 20, MemoryStore);
        for n in 0..64 {
            cache.admit(ContentKey::of_parts(&[&n_to_bytes(n)]), ok("x"));
        }
        assert_eq!(cache.entries(), 64);
        let occupied = cache
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().index.is_empty())
            .count();
        assert!(occupied >= 4, "64 hashed keys occupy ≥ half the shards");
    }

    fn n_to_bytes(n: u64) -> [u8; 8] {
        n.to_le_bytes()
    }

    #[test]
    fn disk_store_roundtrips_and_preloads() {
        let dir = std::env::temp_dir().join(format!("hcg-serve-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ShardedCache::new(2, 1 << 20, DiskStore::new(&dir).unwrap());
            cache.admit(key(1), ok("persisted source"));
            cache.admit(key(2), Outcome::Failure(Arc::new("bad model".to_owned())));
        }
        // A fresh cache over the same root starts warm.
        let warm = ShardedCache::new(2, 1 << 20, DiskStore::new(&dir).unwrap());
        assert_eq!(warm.entries(), 2);
        assert_eq!(warm.fetch(key(1)).unwrap().text(), "persisted source");
        assert!(warm.fetch(key(2)).unwrap().is_failure());
        // Eviction removes the on-disk copy too.
        let tiny = ShardedCache::new(1, 4, DiskStore::new(&dir).unwrap());
        let survivors = tiny.entries();
        assert!(survivors <= 1, "4-byte budget keeps at most one artifact");
        let on_disk = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(on_disk, survivors);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provider_is_object_safe_over_both_stores() {
        let providers: Vec<Box<dyn ArtifactProvider>> =
            vec![Box::new(ShardedCache::new(2, 1 << 20, MemoryStore))];
        for p in &providers {
            p.admit(key(5), ok("body"));
            assert_eq!(p.fetch(key(5)).unwrap().text(), "body");
        }
    }
}
