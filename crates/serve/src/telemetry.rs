//! Service telemetry: request trace ids, server-side latency histograms,
//! the structured JSONL access log and the flight recorder.
//!
//! Everything here is deliberately cheap on the hot path — histogram
//! recording is three relaxed atomics, the access log is one buffered
//! write behind a mutex, and the flight recorder is a bounded ring — so
//! the daemon can keep all of it on in production (`repro -- obs-bench`
//! measures each layer against the serve benchmark).

use hcg_obs::{json, Histogram, MetricsRegistry};
use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// SplitMix64: the finalizer-quality mixer used to derive trace ids from
/// a seed + counter (deterministic when the daemon is seeded).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Allocates one trace id per accepted connection. Seeded construction
/// gives a reproducible id sequence (tests, benchmarks); the unseeded
/// daemon derives its seed from wall clock and pid.
#[derive(Debug)]
pub struct TraceIdGen {
    seed: u64,
    next: AtomicU64,
}

impl TraceIdGen {
    /// A generator over `seed` (`None` = derive from time and pid).
    pub fn new(seed: Option<u64>) -> Self {
        let seed = seed.unwrap_or_else(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            nanos ^ (u64::from(std::process::id()) << 32)
        });
        TraceIdGen {
            seed,
            next: AtomicU64::new(0),
        }
    }

    /// The next trace id — never 0 (0 means "no trace" everywhere).
    pub fn next_id(&self) -> u64 {
        loop {
            let n = self.next.fetch_add(1, Ordering::Relaxed);
            let id = splitmix64(self.seed.wrapping_add(n));
            if id != 0 {
                return id;
            }
        }
    }
}

/// Render a trace id the way it travels in `X-Trace-Id`: 16 lowercase
/// hex digits.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse an inbound `X-Trace-Id` header value (16 hex digits, any case).
/// Returns `None` for anything else — a malformed id falls back to the
/// server-assigned one rather than erroring the request.
pub fn parse_trace_id(text: &str) -> Option<u64> {
    let text = text.trim();
    if text.len() != 16 || !text.chars().all(|c| c.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(text, 16).ok().filter(|&id| id != 0)
}

/// The daemon's server-side histograms, all in microseconds except the
/// byte sizes. Each daemon owns its instances (test isolation) and
/// registers them into [`MetricsRegistry::global`] under `serve.*` names
/// so process-wide snapshots include them.
#[derive(Debug, Clone)]
pub struct ServeHists {
    /// Accept-to-response-written latency per request.
    pub request_latency_us: Arc<Histogram>,
    /// Time spent actually compiling (single-flight leaders only).
    pub compile_latency_us: Arc<Histogram>,
    /// Accept-to-worker-pickup wait in the connection queue.
    pub queue_wait_us: Arc<Histogram>,
    /// Time followers block on another request's in-flight compile.
    pub flight_wait_us: Arc<Histogram>,
    /// Request body sizes.
    pub request_bytes: Arc<Histogram>,
    /// Response body sizes.
    pub response_bytes: Arc<Histogram>,
}

impl ServeHists {
    /// Fresh histograms, registered globally.
    pub fn new() -> Self {
        let h = ServeHists {
            request_latency_us: Arc::new(Histogram::new()),
            compile_latency_us: Arc::new(Histogram::new()),
            queue_wait_us: Arc::new(Histogram::new()),
            flight_wait_us: Arc::new(Histogram::new()),
            request_bytes: Arc::new(Histogram::new()),
            response_bytes: Arc::new(Histogram::new()),
        };
        let registry = MetricsRegistry::global();
        for (name, hist) in h.named() {
            registry.register_histogram(name, hist);
        }
        h
    }

    /// `(metric name, histogram)` pairs, in snapshot order.
    pub fn named(&self) -> [(&'static str, &Arc<Histogram>); 6] {
        [
            ("serve.request_latency_us", &self.request_latency_us),
            ("serve.compile_latency_us", &self.compile_latency_us),
            ("serve.queue_wait_us", &self.queue_wait_us),
            ("serve.flight_wait_us", &self.flight_wait_us),
            ("serve.request_bytes", &self.request_bytes),
            ("serve.response_bytes", &self.response_bytes),
        ]
    }
}

impl Default for ServeHists {
    fn default() -> Self {
        ServeHists::new()
    }
}

/// One completed request, as the access log and flight recorder see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// The request's trace id.
    pub trace_id: u64,
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// First 16 hex digits of the artifact key (`-` off the compile path).
    pub key_prefix: String,
    /// Cache outcome: `hit`/`miss`/`join`, or `-` off the compile path.
    pub cache: String,
    /// Response status code.
    pub status: u16,
    /// Accept-to-response latency, microseconds.
    pub latency_us: u64,
    /// Per-stage timings, microseconds: `(stage name, duration)` in
    /// request order (`queue`, `read`, `route`, `write`).
    pub stages: Vec<(&'static str, u64)>,
}

impl RequestRecord {
    /// One stable JSON object (also the access-log line format, minus
    /// the stage breakdown which only the flight recorder keeps).
    pub fn to_json(&self, with_stages: bool) -> String {
        let mut out = format!(
            "{{\"trace_id\": \"{}\", \"method\": \"{}\", \"path\": \"{}\", \
             \"key\": \"{}\", \"cache\": \"{}\", \"status\": {}, \"latency_us\": {}",
            format_trace_id(self.trace_id),
            json::escape(&self.method),
            json::escape(&self.path),
            json::escape(&self.key_prefix),
            json::escape(&self.cache),
            self.status,
            self.latency_us,
        );
        if with_stages {
            let stages: Vec<String> = self
                .stages
                .iter()
                .map(|(name, us)| format!("{{\"stage\": \"{name}\", \"us\": {us}}}"))
                .collect();
            out.push_str(&format!(", \"stages\": [{}]", stages.join(", ")));
        }
        out.push('}');
        out
    }
}

/// The structured access log: one JSON object per completed request,
/// newline-delimited, flushed per line so a crashed daemon's log is
/// complete up to the failure.
#[derive(Debug)]
pub struct AccessLog {
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl AccessLog {
    /// Open (append/create) the log at `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be opened.
    pub fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Append one record as a JSONL line.
    pub fn log(&self, record: &RequestRecord) {
        let line = record.to_json(false);
        let mut w = self.writer.lock().expect("access log poisoned");
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// A bounded ring of the last N completed requests — the daemon's black
/// box. Served at `GET /debug/requests` and dumped to stderr whenever a
/// 5xx goes out, so a failed request in a long-running daemon is
/// diagnosable after the fact with tracing off.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<RequestRecord>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Record one completed request, evicting the oldest beyond capacity.
    pub fn record(&self, record: RequestRecord) {
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn recent(&self) -> Vec<RequestRecord> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The ring as a JSON array of request objects with stage timings.
    pub fn to_json(&self) -> String {
        let records: Vec<String> = self.recent().iter().map(|r| r.to_json(true)).collect();
        format!(
            "{{\"capacity\": {}, \"requests\": [{}]}}",
            self.capacity,
            records.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_trace_ids_are_deterministic_and_nonzero() {
        let a = TraceIdGen::new(Some(42));
        let b = TraceIdGen::new(Some(42));
        let ids_a: Vec<u64> = (0..8).map(|_| a.next_id()).collect();
        let ids_b: Vec<u64> = (0..8).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b, "same seed, same sequence");
        assert!(ids_a.iter().all(|&id| id != 0));
        let distinct: std::collections::BTreeSet<u64> = ids_a.iter().copied().collect();
        assert_eq!(distinct.len(), ids_a.len());
        assert_ne!(TraceIdGen::new(Some(7)).next_id(), ids_a[0]);
    }

    #[test]
    fn trace_ids_roundtrip_through_the_header_format() {
        let id = 0x0123_4567_89ab_cdef;
        let text = format_trace_id(id);
        assert_eq!(text.len(), 16);
        assert_eq!(parse_trace_id(&text), Some(id));
        assert_eq!(parse_trace_id(&text.to_uppercase()), Some(id));
        assert_eq!(parse_trace_id(" 0123456789abcdef "), Some(id));
        assert_eq!(parse_trace_id("0123"), None, "wrong length");
        assert_eq!(parse_trace_id("xyzw456789abcdef"), None, "non-hex");
        assert_eq!(parse_trace_id("0000000000000000"), None, "zero id");
        assert_eq!(format_trace_id(5), "0000000000000005");
    }

    fn record(trace_id: u64, status: u16) -> RequestRecord {
        RequestRecord {
            trace_id,
            method: "POST".to_owned(),
            path: "/compile".to_owned(),
            key_prefix: "00ff00ff00ff00ff".to_owned(),
            cache: "miss".to_owned(),
            status,
            latency_us: 1234,
            stages: vec![("queue", 10), ("read", 20), ("route", 1200), ("write", 4)],
        }
    }

    #[test]
    fn records_render_valid_json_with_and_without_stages() {
        let r = record(9, 200);
        for with_stages in [false, true] {
            let j = r.to_json(with_stages);
            json::validate(&j).unwrap();
            assert_eq!(j.contains("\"stages\""), with_stages);
        }
        assert!(r
            .to_json(false)
            .contains("\"trace_id\": \"0000000000000009\""));
    }

    #[test]
    fn flight_recorder_is_a_bounded_ring() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(record(i + 1, 200));
        }
        let recent = fr.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|r| r.trace_id).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "oldest evicted first"
        );
        json::validate(&fr.to_json()).unwrap();
        assert_eq!(FlightRecorder::new(0).capacity, 1, "capacity floor");
    }

    #[test]
    fn access_log_appends_valid_jsonl() {
        let path = std::env::temp_dir().join(format!("hcg-access-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let log = AccessLog::open(&path).unwrap();
            log.log(&record(1, 200));
            log.log(&record(2, 422));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            json::validate(line).unwrap();
        }
        assert!(lines[1].contains("\"status\": 422"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn histograms_register_globally() {
        let h = ServeHists::new();
        h.request_latency_us.record(500);
        let snap = MetricsRegistry::global().snapshot();
        let latency = snap
            .histogram("serve.request_latency_us")
            .expect("registered globally");
        assert!(latency.count >= 1);
    }
}
